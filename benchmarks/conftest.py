"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure at the budget set by
the ``REPRO_BUDGET`` environment variable (``smoke`` / ``quick`` /
``full``; default ``quick``), checks the qualitative shape against the
paper, and writes the rendered table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def budget() -> str:
    return os.environ.get("REPRO_BUDGET", "quick")


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are long deterministic simulations; repeating them for
    statistical timing would multiply hours for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
