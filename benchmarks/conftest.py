"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure at the budget set by
the ``REPRO_BUDGET`` environment variable (``smoke`` / ``quick`` /
``full``; default ``quick``), checks the qualitative shape against the
paper, and writes the rendered table to ``benchmarks/results/``.

Multi-trial benchmarks route their trials through the execution farm
(:mod:`repro.farm`): ``REPRO_JOBS`` sets the worker count (default 1,
in-process), and ``REPRO_NO_CACHE=1`` disables the content-addressed
result cache under ``.farm-cache/``.  With the cache warm, a re-run
replays stored results instead of re-simulating — set ``REPRO_NO_CACHE``
when wall-clock timings must reflect real execution.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def budget() -> str:
    return os.environ.get("REPRO_BUDGET", "quick")


@pytest.fixture(scope="session")
def farm():
    """A session-wide execution farm honoring REPRO_JOBS / REPRO_NO_CACHE."""
    from repro.farm import Farm, FarmConfig

    return Farm(
        FarmConfig(
            max_workers=int(os.environ.get("REPRO_JOBS", "1")),
            use_cache=not os.environ.get("REPRO_NO_CACHE"),
            cache_dir=Path(__file__).parent.parent / ".farm-cache",
        )
    )


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are long deterministic simulations; repeating them for
    statistical timing would multiply hours for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
