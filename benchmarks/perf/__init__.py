"""Microbenchmarks for the simulation hot paths.

Three benchmarks time the engines this repo's sweeps ride on:

* **chunk_engine** — the trap-driven chunk engine end to end
  (``run_trap_driven``), reporting simulated references per wall second;
* **cache2000** — the trace-driven simulator per associativity, timing
  the grouped-set kernel fast path against the per-address
  ``SetAssociativeCache`` path on the same stream (misses are asserted
  equal; the ratio is the kernel's speedup);
* **tlb** — ``SimulatedTLB.access_chunk`` against the per-reference
  ``access`` loop.

Results are emitted as ``BENCH_PR3.json``: a schema-versioned envelope
whose ``records`` are :class:`repro.telemetry.manifest.RunManifest`
records (kind ``"perf"``), each individually valid under
:func:`repro.telemetry.manifest.validate_record` — so the same tooling
that reads run manifests reads the perf trajectory.  Run it with::

    PYTHONPATH=src python -m benchmarks.perf --budget tiny

``--budget`` scales the streams (``tiny``/``smoke``/``quick``/``full``);
CI runs ``tiny`` and archives the JSON as an artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.caches.config import CacheConfig, TLBConfig
from repro.caches.replacement import make_policy
from repro.caches.tlb import SimulatedTLB
from repro.core.tapeworm import TapewormConfig
from repro.telemetry.manifest import RunManifest, config_hash, validate_record
from repro.tracing.cache2000 import Cache2000

#: bump when the BENCH_PR3.json envelope changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: default output location (next to the rendered table results)
DEFAULT_BENCH_PATH = Path(__file__).parent.parent / "results" / "BENCH_PR3.json"

#: reference-stream lengths per budget tier
BENCH_REFS = {
    "tiny": 50_000,
    "smoke": 150_000,
    "quick": 600_000,
    "full": 2_400_000,
}

ASSOCIATIVITIES = (1, 2, 4, 8)
_CHUNK_REFS = 65_536
_SEED = 1994


def _code_stream(n: int, rng: np.random.Generator) -> np.ndarray:
    """A code-shaped address stream: sequential word runs, loops, jumps.

    Word-granularity sequential runs collapse 4:1 onto 16-byte lines —
    the locality structure both simulator paths see in practice.
    """
    out = np.empty(n, dtype=np.int64)
    pc = 0
    i = 0
    while i < n:
        run = min(int(rng.integers(8, 200)), n - i)
        out[i : i + run] = (pc + np.arange(run)) * 4
        i += run
        pc += run
        if rng.random() < 0.6:
            pc = max(0, pc - int(rng.integers(16, 2048)))  # loop back
        else:
            pc = int(rng.integers(0, 1 << 16))  # call/jump
    return out


def _timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _record(
    name: str,
    configuration: str,
    config: Any,
    wall: float,
    metrics: dict,
    results: dict,
) -> dict:
    record = RunManifest(
        kind="perf",
        name=name,
        configuration=configuration,
        config_hash=config_hash(config),
        seed=_SEED,
        wall_clock_secs=wall,
        metrics=metrics,
        results=results,
    ).record()
    problems = validate_record(record)
    if problems:  # pragma: no cover - schema drift guard
        raise AssertionError(f"invalid perf record {name}: {problems}")
    return record


# ---------------------------------------------------------------------------
# 1. the trap-driven chunk engine
# ---------------------------------------------------------------------------

def bench_chunk_engine(budget: str) -> dict:
    """End-to-end trap-driven throughput (chunk engine + rescan index)."""
    from repro.harness.runner import RunOptions, run_trap_driven
    from repro.workloads import get_workload

    total_refs = BENCH_REFS[budget]
    spec = get_workload("espresso")
    config = TapewormConfig(cache=CacheConfig(size_bytes=4096))
    options = RunOptions(total_refs=total_refs, trial_seed=_SEED)
    report, wall = _timed(lambda: run_trap_driven(spec, config, options))
    return _record(
        name="chunk-engine",
        configuration=f"espresso, {config.cache.describe()}",
        config=config,
        wall=wall,
        metrics={"refs_per_sec": round(report.total_refs / max(wall, 1e-9))},
        results={
            "refs": report.total_refs,
            "traps": report.traps,
            "misses": report.stats.total_misses,
        },
    )


# ---------------------------------------------------------------------------
# 2. Cache2000 per associativity: grouped kernel vs per-address path
# ---------------------------------------------------------------------------

def _drive(sim: Cache2000, stream: np.ndarray) -> int:
    misses = 0
    for start in range(0, len(stream), _CHUNK_REFS):
        misses += sim.simulate_chunk(stream[start : start + _CHUNK_REFS])
    return misses


def bench_cache2000(budget: str) -> list[dict]:
    """Fast vs general path per associativity, on one shared stream."""
    stream = _code_stream(BENCH_REFS[budget], np.random.default_rng(_SEED))
    records = []
    for associativity in ASSOCIATIVITIES:
        config = CacheConfig(
            size_bytes=8192, line_bytes=16, associativity=associativity
        )
        fast = Cache2000(config, policy=make_policy("lru"))
        slow = Cache2000(
            config, policy=make_policy("lru"), force_general_path=True
        )
        fast_misses, fast_secs = _timed(lambda: _drive(fast, stream))
        slow_misses, slow_secs = _timed(lambda: _drive(slow, stream))
        assert fast_misses == slow_misses, (
            f"paths diverged at {associativity}-way: "
            f"{fast_misses} != {slow_misses}"
        )
        assert fast.resident_lines() == slow.resident_lines()
        records.append(
            _record(
                name=f"cache2000-{associativity}way-lru",
                configuration=config.describe(),
                config=config,
                wall=fast_secs + slow_secs,
                metrics={
                    "fast_refs_per_sec": round(len(stream) / max(fast_secs, 1e-9)),
                    "general_refs_per_sec": round(
                        len(stream) / max(slow_secs, 1e-9)
                    ),
                },
                results={
                    "refs": len(stream),
                    "misses": fast_misses,
                    "fast_secs": round(fast_secs, 6),
                    "general_secs": round(slow_secs, 6),
                    "speedup": round(slow_secs / max(fast_secs, 1e-9), 2),
                },
            )
        )
    return records


# ---------------------------------------------------------------------------
# 3. the TLB chunk path
# ---------------------------------------------------------------------------

def bench_tlb(budget: str) -> dict:
    """``access_chunk`` vs the per-reference ``access`` loop."""
    n = BENCH_REFS[budget]
    rng = np.random.default_rng(_SEED)
    # Page-granule view of a real reference stream: each page touched is
    # referenced many consecutive times (spatial locality within the
    # page) before the stream moves on — mostly to a nearby page, with
    # occasional far jumps.
    pages = []
    total = 0
    page = 0
    while total < n:
        repeat = int(rng.integers(8, 96))
        pages.append((page, repeat))
        total += repeat
        if rng.random() < 0.85:
            page = max(0, page + int(rng.integers(-2, 4)))
        else:
            page = int(rng.integers(0, 4096))
    vpns = np.repeat(
        np.array([p for p, _ in pages], dtype=np.int64),
        np.array([r for _, r in pages]),
    )[:n]
    config = TLBConfig(n_entries=64)
    chunked = SimulatedTLB(config, make_policy("lru"))
    per_ref = SimulatedTLB(config, make_policy("lru"))

    def _chunked() -> int:
        misses = 0
        for start in range(0, n, _CHUNK_REFS):
            misses += chunked.access_chunk(0, vpns[start : start + _CHUNK_REFS])
        return misses

    def _looped() -> int:
        misses = 0
        for vpn in vpns.tolist():
            hit, _ = per_ref.access(0, vpn)
            misses += not hit
        return misses

    fast_misses, fast_secs = _timed(_chunked)
    slow_misses, slow_secs = _timed(_looped)
    assert fast_misses == slow_misses
    assert chunked.resident_keys() == per_ref.resident_keys()
    return _record(
        name="tlb-chunk-path",
        configuration=config.describe(),
        config=config,
        wall=fast_secs + slow_secs,
        metrics={
            "chunk_refs_per_sec": round(n / max(fast_secs, 1e-9)),
            "per_ref_refs_per_sec": round(n / max(slow_secs, 1e-9)),
        },
        results={
            "refs": n,
            "misses": fast_misses,
            "chunk_secs": round(fast_secs, 6),
            "per_ref_secs": round(slow_secs, 6),
            "speedup": round(slow_secs / max(fast_secs, 1e-9), 2),
        },
    )


# ---------------------------------------------------------------------------
# the envelope
# ---------------------------------------------------------------------------

def run_all(budget: str = "tiny") -> dict:
    """Run every microbenchmark; returns the BENCH_PR3 payload."""
    if budget not in BENCH_REFS:
        raise ValueError(
            f"unknown budget {budget!r}; choose from {sorted(BENCH_REFS)}"
        )
    records = [bench_chunk_engine(budget)]
    records.extend(bench_cache2000(budget))
    records.append(bench_tlb(budget))
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": "BENCH_PR3",
        "budget": budget,
        "records": records,
    }


def write_bench(
    payload: dict, path: str | Path | None = None, suite: str = "BENCH_PR3"
) -> Path:
    path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    problems = validate_bench(payload, suite=suite)
    if problems:
        raise AssertionError(f"refusing to write invalid payload: {problems}")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def validate_bench(payload: dict, suite: str = "BENCH_PR3") -> list[str]:
    """Schema-check one benchmark payload; empty list = valid.

    ``suite`` names the envelope being checked — ``BENCH_PR3`` (the
    simulation hot paths, the default) or ``BENCH_PR5`` (the stream
    store; see :mod:`benchmarks.perf.streams`).
    """
    problems = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema {payload.get('schema')!r} != {BENCH_SCHEMA_VERSION}"
        )
    if payload.get("suite") != suite:
        problems.append(f"unexpected suite {payload.get('suite')!r}")
    if payload.get("budget") not in BENCH_REFS:
        problems.append(f"unknown budget {payload.get('budget')!r}")
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        problems.append("records must be a non-empty list")
        return problems
    for record in records:
        problems.extend(validate_record(record))
        if record.get("kind") != "perf":
            problems.append(f"record {record.get('name')!r} is not kind=perf")
    names = [record.get("name") for record in records]
    if len(set(names)) != len(names):
        problems.append("duplicate record names")
    return problems


def speedup_of(payload: dict, name: str) -> float:
    """The recorded speedup of one benchmark (e.g. cache2000-2way-lru)."""
    for record in payload["records"]:
        if record["name"] == name:
            return float(record["results"]["speedup"])
    raise KeyError(name)
