"""CLI for the perf microbenchmarks: ``python -m benchmarks.perf``."""

from __future__ import annotations

import argparse
import sys

from benchmarks.perf import (
    BENCH_REFS,
    DEFAULT_BENCH_PATH,
    run_all,
    speedup_of,
    write_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="simulation hot-path microbenchmarks -> BENCH_PR3.json",
    )
    parser.add_argument(
        "--budget", choices=tuple(sorted(BENCH_REFS)), default="tiny"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_BENCH_PATH), help="output JSON path"
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless the 2-way LRU Cache2000 kernel is at "
        "least X times faster than the per-address path",
    )
    args = parser.parse_args(argv)

    payload = run_all(args.budget)
    path = write_bench(payload, args.out)

    print(f"budget={args.budget} -> {path}")
    for record in payload["records"]:
        speedup = record["results"].get("speedup")
        extra = f"  speedup={speedup:g}x" if speedup is not None else ""
        wall = record["wall_clock_secs"]
        print(f"  {record['name']:<24} wall={wall:8.3f}s{extra}")

    if args.check_speedup is not None:
        achieved = speedup_of(payload, "cache2000-2way-lru")
        if achieved < args.check_speedup:
            print(
                f"FAIL: 2-way LRU speedup {achieved:g}x < "
                f"required {args.check_speedup:g}x",
                file=sys.stderr,
            )
            return 1
        print(f"2-way LRU speedup {achieved:g}x >= {args.check_speedup:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
