"""Grid-sweep microbenchmark: ``python -m benchmarks.perf.gridsweep``.

The PR-10 one-pass grid engine simulates an entire ``(set-counts ×
ways)`` LRU design grid in one stack-distance pass per set count per
chunk.  This benchmark times that against the obvious alternative the
grid replaces: one pipeline-compiled per-config ``Cache2000``
simulation per cell, driven over the same chunk sequence (the shape of
a per-config farm loop, minus process overhead — the comparison is
deliberately generous to the per-config side).

* **gridsweep-vs-per-config** — the headline number: a 32-cell grid
  (4 set counts × 8 associativities) over the shared code-shaped
  stream.  Every cell's miss count is asserted bit-equal between the
  two sides, and each set count's distance histogram must partition the
  stream; the ratio is the engine's speedup.  CI gates on 5x at the
  quick budget.
* **gridsweep-dm-column** — the direct-mapped specialization: a
  ways=(1,) grid against per-config DM kernels, pinning the pure-numpy
  column the multi-size ablation rides on.  No speedup is claimed here
  — with one way per cell the grid has no pass economy (passes ==
  configs) and pays the shared cold-mask overhead, so per-config is
  about as fast; the record documents that boundary (see
  docs/INTERNALS.md, "when per-config is cheaper").

Each timed side takes the best of three repetitions with fresh state,
as in :mod:`benchmarks.perf.pipeline`.  Results are emitted as
``BENCH_PR10.json`` — the same schema-versioned envelope as
``BENCH_PR3.json`` — and the trend watchdog (``benchmarks/trend.py``)
gates ``results.speedup`` against the best committed snapshot.  Run
with::

    PYTHONPATH=src python -m benchmarks.perf.gridsweep --budget quick \\
        --check-speedup 5
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from benchmarks.perf import (
    BENCH_REFS,
    _code_stream,
    _record,
    speedup_of,
    write_bench,
)
from repro.caches.config import GridConfig
from repro.caches.gridsweep import GridSweepSimulator
from repro.tracing.cache2000 import Cache2000

#: where the envelope lands (next to BENCH_PR3.json)
DEFAULT_BENCH_PATH = (
    Path(__file__).parent.parent / "results" / "BENCH_PR10.json"
)

#: the headline grid: 4 set counts × 8 associativities = 32 cells
GRID = GridConfig(
    set_counts=(64, 128, 256, 512),
    ways=(1, 2, 4, 8, 16, 32, 64, 128),
)

#: the direct-mapped column (multi-size ablation shape)
DM_GRID = GridConfig(set_counts=(64, 128, 256, 512, 1024), ways=(1,))

_CHUNK_REFS = 65_536
_REPEATS = 3
_SEED = 1994


def _chunked(stream: np.ndarray) -> list[np.ndarray]:
    return [
        stream[start : start + _CHUNK_REFS]
        for start in range(0, len(stream), _CHUNK_REFS)
    ]


def _best_of(make_drive: Callable[[], Callable[[], object]]):
    best = float("inf")
    value = None
    for _ in range(_REPEATS):
        drive = make_drive()
        start = time.perf_counter()
        value = drive()
        best = min(best, time.perf_counter() - start)
    return value, best


def _bench_grid(name: str, grid: GridConfig, budget: str) -> dict:
    stream = _code_stream(BENCH_REFS[budget], np.random.default_rng(_SEED))
    chunks = _chunked(stream)

    def _grid_drive():
        sweep = GridSweepSimulator(grid)

        def drive():
            for chunk in chunks:
                sweep.simulate_chunk(chunk)
            return sweep

        return drive

    def _per_config_drive():
        sims = {cell: Cache2000(grid.config_for(*cell)) for cell in grid.cells()}

        def drive():
            for chunk in chunks:
                for sim in sims.values():
                    sim.simulate_chunk(chunk)
            return {
                cell: sim.stats.total_misses for cell, sim in sims.items()
            }

        return drive

    sweep, grid_secs = _best_of(_grid_drive)
    reference, per_config_secs = _best_of(_per_config_drive)

    # the correctness contract: every cell bit-equal, every histogram a
    # partition of the stream
    misses = sweep.miss_counts()
    for cell in grid.cells():
        assert misses[cell] == reference[cell], (
            f"{name}: cell {cell} diverged "
            f"({misses[cell]} != {reference[cell]})"
        )
    for n_sets, hist in sweep.distance_histograms().items():
        assert hist.total == sweep.refs, (
            f"{name}: histogram for {n_sets} sets does not partition "
            f"the stream ({hist.total} != {sweep.refs})"
        )

    return _record(
        name=name,
        configuration=f"{grid.describe()}, {_CHUNK_REFS}-ref chunks",
        config=grid,
        wall=grid_secs + per_config_secs,
        metrics={
            "grid_refs_per_sec": round(len(stream) / max(grid_secs, 1e-9)),
            "per_config_refs_per_sec": round(
                len(stream) / max(per_config_secs, 1e-9)
            ),
        },
        results={
            "refs": len(stream),
            "configs": grid.n_cells,
            "passes": sweep.passes,
            "grid_secs": round(grid_secs, 6),
            "per_config_secs": round(per_config_secs, 6),
            "speedup": round(per_config_secs / max(grid_secs, 1e-9), 2),
        },
    )


def run_all(budget: str = "tiny") -> dict:
    if budget not in BENCH_REFS:
        raise ValueError(
            f"unknown budget {budget!r}; choose from {sorted(BENCH_REFS)}"
        )
    return {
        "schema": 1,
        "suite": "BENCH_PR10",
        "budget": budget,
        "records": [
            _bench_grid("gridsweep-vs-per-config", GRID, budget),
            _bench_grid("gridsweep-dm-column", DM_GRID, budget),
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.gridsweep",
        description="one-pass grid sweep microbenchmarks -> BENCH_PR10.json",
    )
    parser.add_argument(
        "--budget", choices=tuple(sorted(BENCH_REFS)), default="tiny"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_BENCH_PATH), help="output JSON path"
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless the 32-cell grid benchmark is at "
        "least X times faster than the per-config loop",
    )
    args = parser.parse_args(argv)

    payload = run_all(args.budget)
    path = write_bench(payload, args.out, suite="BENCH_PR10")

    print(f"budget={args.budget} -> {path}")
    for record in payload["records"]:
        results = record["results"]
        print(
            f"  {record['name']:<26} configs={results['configs']:>2} "
            f"grid={results['grid_secs']:8.3f}s "
            f"per-config={results['per_config_secs']:8.3f}s "
            f"speedup={results['speedup']:g}x"
        )

    if args.check_speedup is not None:
        achieved = speedup_of(payload, "gridsweep-vs-per-config")
        if achieved < args.check_speedup:
            print(
                f"FAIL: grid speedup {achieved:g}x < "
                f"required {args.check_speedup:g}x",
                file=sys.stderr,
            )
            return 1
        print(f"grid speedup {achieved:g}x >= {args.check_speedup:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
