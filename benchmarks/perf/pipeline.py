"""Kernel-pipeline microbenchmarks: ``python -m benchmarks.perf.pipeline``.

The PR-8 pass pipeline compiles one specialized chunk kernel per
configuration and hands simulators a closure with zero per-chunk
dispatch.  These benchmarks time that against faithful replicas of the
*old* inline-branching paths (the per-chunk ``_vectorized`` test,
``_space_of`` call, ``phase()`` session probe and modulo indexing the
pipeline compiled away):

* **pipeline-dispatch-dm** — the headline number: a repeated-small-
  chunk stream (48-reference chunks, where per-chunk dispatch is the
  largest cost fraction) through the compiled direct-mapped kernel
  versus the legacy dispatch.  Miss counts are asserted equal; CI
  gates on 1.3x at the quick budget.
* **pipeline-dispatch-2way** — the same stream through the grouped-set
  kernel at 2-way LRU.
* **pipeline-dispatch-tlb** — the compiled TLB chunk path versus the
  legacy inline ``supports_policy`` branch.
* **pipeline-compile-and-lookup** — the registry's two costs: cold
  compiles across a config grid, then pure cache-hit lookups.
* **pipeline-table7-e2e** — one end-to-end Table 7 measurement through
  the rewired trap-driven engine, so the envelope records the absolute
  wall clock the pipeline must not regress.

Each timed comparison takes the best of three interleaved repetitions
(fresh state per repetition), which suppresses scheduler noise without
changing what is measured.  Results are emitted as ``BENCH_PR8.json``
— the same schema-versioned envelope as ``BENCH_PR3.json`` — and the
trend watchdog (``benchmarks/trend.py``) gates every ``results.
speedup`` group against its best committed snapshot.  Run with::

    PYTHONPATH=src python -m benchmarks.perf.pipeline --budget quick \\
        --check-speedup 1.3
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from benchmarks.perf import (
    BENCH_REFS,
    _code_stream,
    _record,
    _timed,
    speedup_of,
    write_bench,
)
from repro._types import Component, Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig, TLBConfig
from repro.caches.kernels import (
    GroupedSetKernel,
    collapse_consecutive,
    grouped_stack_pass,
    supports_policy,
)
from repro.caches.pipeline import KernelRegistry, cache_request, tlb_request
from repro.caches.replacement import LRUPolicy, make_policy
from repro.caches.stats import CacheStats
from repro.caches.tlb import SimulatedTLB
from repro.errors import ConfigError
from repro.telemetry.profile import phase
from repro.tracing.cache2000 import (
    CACHE2000_CYCLES_PER_HIT,
    CACHE2000_MISS_PREMIUM_CYCLES,
    Cache2000,
)

#: where the envelope lands (next to BENCH_PR3.json)
DEFAULT_BENCH_PATH = (
    Path(__file__).parent.parent / "results" / "BENCH_PR8.json"
)

#: the repeated-small-chunk shape: small enough that per-chunk dispatch
#: is a large cost fraction, large enough that the kernels still do
#: real vector work per call
REPEAT_CHUNK_REFS = 48

#: interleaved repetitions per timed side; the best is reported
_REPEATS = 3

_SEED = 1994
_MAX_SPACES = 4096


# ---------------------------------------------------------------------------
# faithful replicas of the pre-pipeline inline dispatch
# ---------------------------------------------------------------------------

class _LegacyCache2000:
    """The old Cache2000 hot path, branch for branch.

    Per chunk: the ``_vectorized`` test, the ``_space_of`` range check
    and indexing-mode branch, the kernel's ``phase()`` session probe
    and modulo set indexing, then the same stats bookkeeping the
    current class performs — everything the pass pipeline now resolves
    at compile time, kept verbatim so the comparison is dispatch
    against dispatch.
    """

    def __init__(self, config, policy=None, force_general_path=False):
        self.config = config
        self.policy = policy or LRUPolicy()
        self.stats = CacheStats()
        self.processing_cycles = 0
        self.fastpath_chunks = 0
        self.general_chunks = 0
        self._vectorized = not force_general_path and (
            config.associativity == 1 or supports_policy(self.policy)
        )
        if self._vectorized:
            policy_name = getattr(self.policy, "name", "lru")
            if config.associativity == 1:
                policy_name = "lru"
            self._kernel = GroupedSetKernel(config, policy_name)
            self._cache = None
        else:
            self._kernel = None
            self._cache = SetAssociativeCache(config, self.policy)

    def _space_of(self, tid: int) -> int:
        if not 0 <= tid < _MAX_SPACES:
            raise ConfigError(
                f"tid {tid} outside the fast path's space range"
            )
        return tid if self.config.indexing is Indexing.VIRTUAL else 0

    def simulate_chunk(self, addresses, tid=0, component=Component.USER):
        n = len(addresses)
        if n == 0:
            return 0
        if self._vectorized:
            misses = self._kernel.simulate_chunk(
                addresses, space=self._space_of(tid)
            )
            self.fastpath_chunks += 1
        else:
            misses = 0
            cache = self._cache
            for addr in np.asarray(addresses, dtype=np.int64).tolist():
                hit, _ = cache.access(tid, addr)
                if not hit:
                    misses += 1
            self.general_chunks += 1
        self.stats.count_refs(component, n)
        self.stats.count_miss(component, misses)
        self.processing_cycles += (
            n * CACHE2000_CYCLES_PER_HIT
            + misses * CACHE2000_MISS_PREMIUM_CYCLES
        )
        return misses


class _LegacyTLB(SimulatedTLB):
    """The old ``access_chunk``: per-chunk policy branch, ``phase()``
    probe, ``//`` and ``%`` indexing."""

    def access_chunk(self, tid: int, vpns) -> int:
        vpns = np.asarray(vpns, dtype=np.int64)
        n = len(vpns)
        if n == 0:
            return 0
        if not supports_policy(self.policy):
            misses = 0
            for vpn in vpns.tolist():
                hit, _ = self.access(tid, int(vpn))
                misses += not hit
            return misses
        with phase("kernels.tlb_chunk"):
            superpages = vpns // self.config.pages_per_entry
            sets = superpages % self.config.n_sets
            order = np.argsort(sets, kind="stable")
            sets_sorted = sets[order]
            superpages_sorted = superpages[order]
            keep = collapse_consecutive(sets_sorted, superpages_sorted)
            misses = grouped_stack_pass(
                self._sets,
                self.config.effective_associativity,
                isinstance(self.policy, LRUPolicy),
                sets_sorted[keep].tolist(),
                [(tid, sp) for sp in superpages_sorted[keep].tolist()],
            )
        self.searches += n
        self.insertions += misses
        return misses


# ---------------------------------------------------------------------------
# timing helpers
# ---------------------------------------------------------------------------

def _best_of(make_drive: Callable[[], Callable[[], int]]) -> tuple[int, float]:
    """Best wall clock over ``_REPEATS`` runs, fresh state each time."""
    best = float("inf")
    value = None
    for _ in range(_REPEATS):
        drive = make_drive()
        start = time.perf_counter()
        value = drive()
        best = min(best, time.perf_counter() - start)
    return value, best


def _chunked(stream: np.ndarray, chunk_refs: int) -> list[np.ndarray]:
    return [
        stream[start : start + chunk_refs]
        for start in range(0, len(stream), chunk_refs)
    ]


def _dispatch_record(
    name: str,
    config,
    configuration: str,
    refs: int,
    chunks: int,
    misses: int,
    new_secs: float,
    old_secs: float,
) -> dict:
    return _record(
        name=name,
        configuration=configuration,
        config=config,
        wall=new_secs + old_secs,
        metrics={
            "pipeline_chunks_per_sec": round(chunks / max(new_secs, 1e-9)),
            "legacy_chunks_per_sec": round(chunks / max(old_secs, 1e-9)),
        },
        results={
            "refs": refs,
            "chunk_refs": REPEAT_CHUNK_REFS,
            "chunks": chunks,
            "misses": misses,
            "pipeline_secs": round(new_secs, 6),
            "legacy_secs": round(old_secs, 6),
            "speedup": round(old_secs / max(new_secs, 1e-9), 2),
        },
    )


# ---------------------------------------------------------------------------
# 1-2. repeated-small-chunk dispatch: compiled kernel vs legacy branch
# ---------------------------------------------------------------------------

def bench_dispatch_cache(budget: str) -> list[dict]:
    stream = _code_stream(BENCH_REFS[budget], np.random.default_rng(_SEED))
    chunks = _chunked(stream, REPEAT_CHUNK_REFS)
    records = []
    for name, associativity in (
        ("pipeline-dispatch-dm", 1),
        ("pipeline-dispatch-2way", 2),
    ):
        config = CacheConfig(
            size_bytes=8192, line_bytes=16, associativity=associativity
        )

        def _pipeline_drive(config=config):
            sim = Cache2000(config, policy=make_policy("lru"))

            def drive() -> int:
                total = 0
                for chunk in chunks:
                    total += sim.simulate_chunk(chunk, tid=1)
                return total

            return drive

        def _legacy_drive(config=config):
            sim = _LegacyCache2000(config, policy=make_policy("lru"))

            def drive() -> int:
                total = 0
                for chunk in chunks:
                    total += sim.simulate_chunk(chunk, tid=1)
                return total

            return drive

        new_misses, new_secs = _best_of(_pipeline_drive)
        old_misses, old_secs = _best_of(_legacy_drive)
        assert new_misses == old_misses, (
            f"{name}: paths diverged ({new_misses} != {old_misses})"
        )
        records.append(
            _dispatch_record(
                name,
                config,
                f"{config.describe()}, {REPEAT_CHUNK_REFS}-ref chunks",
                len(stream),
                len(chunks),
                new_misses,
                new_secs,
                old_secs,
            )
        )
    return records


# ---------------------------------------------------------------------------
# 3. the TLB chunk path
# ---------------------------------------------------------------------------

def bench_dispatch_tlb(budget: str) -> dict:
    n = BENCH_REFS[budget]
    rng = np.random.default_rng(_SEED)
    # page-granule stream with page-level locality (as in bench_tlb)
    pages = []
    total = 0
    page = 0
    while total < n:
        repeat = int(rng.integers(8, 96))
        pages.append((page, repeat))
        total += repeat
        if rng.random() < 0.85:
            page = max(0, page + int(rng.integers(-2, 4)))
        else:
            page = int(rng.integers(0, 4096))
    vpns = np.repeat(
        np.array([p for p, _ in pages], dtype=np.int64),
        np.array([r for _, r in pages]),
    )[:n]
    chunks = _chunked(vpns, REPEAT_CHUNK_REFS)
    config = TLBConfig(n_entries=64)

    def _pipeline_drive():
        tlb = SimulatedTLB(config, make_policy("lru"))

        def drive() -> int:
            total = 0
            for chunk in chunks:
                total += tlb.access_chunk(0, chunk)
            return total

        return drive

    def _legacy_drive():
        tlb = _LegacyTLB(config, make_policy("lru"))

        def drive() -> int:
            total = 0
            for chunk in chunks:
                total += tlb.access_chunk(0, chunk)
            return total

        return drive

    new_misses, new_secs = _best_of(_pipeline_drive)
    old_misses, old_secs = _best_of(_legacy_drive)
    assert new_misses == old_misses
    return _dispatch_record(
        "pipeline-dispatch-tlb",
        config,
        f"{config.describe()}, {REPEAT_CHUNK_REFS}-ref chunks",
        n,
        len(chunks),
        new_misses,
        new_secs,
        old_secs,
    )


# ---------------------------------------------------------------------------
# 4. registry costs: cold compiles vs cache-hit lookups
# ---------------------------------------------------------------------------

def bench_compile_and_lookup(budget: str) -> dict:
    """Compile a config grid cold, then hammer the registry with hits.

    No speedup gate here — compiles and lookups are different
    operations; the record pins both absolute costs so the trend table
    shows either one rotting.
    """
    requests = [
        cache_request(
            CacheConfig(
                size_bytes=size,
                line_bytes=16,
                associativity=associativity,
                indexing=indexing,
            ),
            make_policy(policy),
        )
        for size in (4096, 8192, 16384)
        for associativity in (1, 2, 4)
        for policy in ("lru", "fifo", "random")
        for indexing in (Indexing.PHYSICAL, Indexing.VIRTUAL)
    ] + [tlb_request(TLBConfig(n_entries=entries)) for entries in (16, 64)]

    registry = KernelRegistry()
    _, compile_secs = _timed(
        lambda: [registry.get(request) for request in requests]
    )
    lookups = 20_000
    _, lookup_secs = _timed(
        lambda: [
            registry.get(requests[i % len(requests)])
            for i in range(lookups)
        ]
    )
    counters = registry.counters()
    assert counters["compiles"] == len(requests)
    assert counters["lookup_hits"] == lookups
    return _record(
        name="pipeline-compile-and-lookup",
        configuration=f"{len(requests)}-config grid",
        config={"configs": len(requests), "lookups": lookups},
        wall=compile_secs + lookup_secs,
        metrics={
            "compiles_per_sec": round(
                len(requests) / max(compile_secs, 1e-9)
            ),
            "lookups_per_sec": round(lookups / max(lookup_secs, 1e-9)),
        },
        results={
            "configs": len(requests),
            "compile_secs": round(compile_secs, 6),
            "lookups": lookups,
            "lookup_secs": round(lookup_secs, 6),
            "compile_micros_per_config": round(
                compile_secs / len(requests) * 1e6, 2
            ),
        },
    )


# ---------------------------------------------------------------------------
# 5. end-to-end: Table 7 through the rewired trap-driven engine
# ---------------------------------------------------------------------------

def bench_table7(budget: str) -> dict:
    """One Table 7 measurement end to end (chunk engine, scan kernels,
    TLB/cache structures all running pipeline-compiled programs)."""
    from repro.experiments.table7 import run_table7

    n_trials = 2 if budget in ("tiny", "smoke") else 4
    workloads = ("espresso",) if budget == "tiny" else ("espresso", "xlisp")
    result, wall = _timed(
        lambda: run_table7(
            budget=budget, n_trials=n_trials, workloads=workloads
        )
    )
    means = {
        name: round(stats.mean, 2) for name, stats in result.stats.items()
    }
    return _record(
        name="pipeline-table7-e2e",
        configuration=f"table7 {budget}, {n_trials} trials, "
        f"{len(workloads)} workload(s)",
        config={"budget": budget, "n_trials": n_trials,
                "workloads": list(workloads)},
        wall=wall,
        metrics={"trials_per_sec": round(
            n_trials * len(workloads) / max(wall, 1e-9), 3
        )},
        results={"mean_misses": means, "n_trials": n_trials},
    )


# ---------------------------------------------------------------------------
# the envelope
# ---------------------------------------------------------------------------

def run_all(budget: str = "tiny") -> dict:
    if budget not in BENCH_REFS:
        raise ValueError(
            f"unknown budget {budget!r}; choose from {sorted(BENCH_REFS)}"
        )
    records = list(bench_dispatch_cache(budget))
    records.append(bench_dispatch_tlb(budget))
    records.append(bench_compile_and_lookup(budget))
    records.append(bench_table7(budget))
    return {
        "schema": 1,
        "suite": "BENCH_PR8",
        "budget": budget,
        "records": records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.pipeline",
        description="kernel pass-pipeline microbenchmarks -> BENCH_PR8.json",
    )
    parser.add_argument(
        "--budget", choices=tuple(sorted(BENCH_REFS)), default="tiny"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_BENCH_PATH), help="output JSON path"
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless the repeated-small-chunk DM dispatch "
        "benchmark is at least X times faster than the legacy path",
    )
    args = parser.parse_args(argv)

    payload = run_all(args.budget)
    path = write_bench(payload, args.out, suite="BENCH_PR8")

    print(f"budget={args.budget} -> {path}")
    for record in payload["records"]:
        speedup = record["results"].get("speedup")
        extra = f"  speedup={speedup:g}x" if speedup is not None else ""
        wall = record["wall_clock_secs"]
        print(f"  {record['name']:<28} wall={wall:8.3f}s{extra}")

    if args.check_speedup is not None:
        achieved = speedup_of(payload, "pipeline-dispatch-dm")
        if achieved < args.check_speedup:
            print(
                f"FAIL: dm dispatch speedup {achieved:g}x < "
                f"required {args.check_speedup:g}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"dm dispatch speedup {achieved:g}x >= {args.check_speedup:g}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
