"""Interval-sampling benchmarks: ``python -m benchmarks.perf.sampling``.

The error-vs-speedup frontier for ``repro.sampling``: how many simulated
references interval sampling saves at each per-phase sample budget, and
what estimation error that budget buys.  Five records:

* **sampling-profile-and-plan** — the planning overhead: one profiling
  pass over the reference stream plus clustering and plan construction.
  This is the fixed cost a sampled sweep pays before saving anything;
* **sampling-ground-truth** — the exhaustive sweep: every interval of
  every truth trial measured through the same warm-fork machinery.  Its
  mean is the target the frontier points are scored against (and its
  wall clock is what "just simulate everything" costs);
* **sampling-frontier-per-phase-N** for N in 2, 3, 4 — one sampled
  16-trial experiment per sample budget, each against a fresh stream
  store so every point pays its own warm cost.  Each record reports the
  refs-simulated reduction (``speedup``), the point-estimate error
  against ground truth, and the reported CI half-width.

Results are emitted as ``BENCH_PR6.json`` — the same schema-versioned
envelope as ``BENCH_PR3``/``BENCH_PR5`` (``suite`` differs).  Run with::

    PYTHONPATH=src python -m benchmarks.perf.sampling --budget quick \\
        --check-speedup 5

``--check-speedup X`` exits nonzero unless the per-phase-2 point's
refs-simulated reduction is at least ``X``; CI gates on 5x at the quick
budget.  (The reduction grows with interval count, so tiny budgets with
their handful of intervals sit well below the quick-budget number.)
"""

from __future__ import annotations

import argparse
import shutil
import statistics
import sys
import tempfile
from pathlib import Path
from typing import Any

from benchmarks.perf import (
    BENCH_REFS,
    BENCH_SCHEMA_VERSION,
    _record,
    _timed,
    speedup_of,
    write_bench,
)
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions
from repro.sampling import build_plan, profile_workload, run_sampled_trials
from repro.sampling.runner import measure_interval
from repro.streams import StreamSession, StreamStore
from repro.streams.session import enabled as streams_enabled
from repro.workloads import get_workload

#: default output location (next to BENCH_PR3/PR5)
DEFAULT_BENCH_PATH = Path(__file__).parent.parent / "results" / "BENCH_PR6.json"

_SEED = 100
_WORKLOAD = "espresso"
#: trials per frontier point — a Table 7-sized seed ladder
_N_TRIALS = 16
#: truth trials: the exhaustive sweep simulates everything, so fewer
#: trials buy the same per-interval coverage at a quarter the cost
_N_TRUTH_TRIALS = 4
#: target interval count (floored at one scheduler chunk per interval)
_N_INTERVALS = 64
#: the sample budgets swept; the gate rides on the cheapest point
FRONTIER_PER_PHASE = (2, 3, 4)
_MAX_PHASES = 4


def _config() -> TapewormConfig:
    return TapewormConfig(
        cache=CacheConfig(size_bytes=16 * 1024),
        sampling=8,
        sampling_seed=_SEED,
    )


def _options(total_refs: int) -> RunOptions:
    return RunOptions(total_refs=total_refs, trial_seed=_SEED)


def _interval_refs(total_refs: int, chunk_refs: int) -> int:
    return max(chunk_refs, total_refs // _N_INTERVALS)


# ---------------------------------------------------------------------------
# 1. what planning costs
# ---------------------------------------------------------------------------

def bench_profile_and_plan(budget: str) -> tuple[dict, Any]:
    """One profiling pass plus clustering and plan construction."""
    total_refs = BENCH_REFS[budget]
    spec = get_workload(_WORKLOAD)
    options = _options(total_refs)
    interval_refs = _interval_refs(total_refs, options.chunk_refs)

    profile, profile_secs = _timed(
        lambda: profile_workload(spec, total_refs, interval_refs)
    )
    plan, plan_secs = _timed(lambda: build_plan(profile, seed=_SEED))
    record = _record(
        name="sampling-profile-and-plan",
        configuration=(
            f"{_WORKLOAD}, {total_refs} refs, "
            f"{profile.n_intervals} intervals of {interval_refs}"
        ),
        config={"workload": _WORKLOAD, "refs": total_refs,
                "interval_refs": interval_refs},
        wall=profile_secs + plan_secs,
        metrics={
            "profile_refs_per_sec": round(
                total_refs / max(profile_secs, 1e-9)
            ),
        },
        results={
            "refs": total_refs,
            "interval_refs": interval_refs,
            "n_intervals": profile.n_intervals,
            "n_phases": plan.n_phases,
            "n_samples": len(plan.samples),
            "profile_secs": round(profile_secs, 6),
            "plan_secs": round(plan_secs, 6),
        },
    )
    return record, profile


# ---------------------------------------------------------------------------
# 2. exhaustive ground truth: every interval, warm-forked
# ---------------------------------------------------------------------------

def bench_ground_truth(budget: str, profile, store_dir: Path) -> tuple[dict, float]:
    """The exhaustive sweep the frontier points are scored against."""
    total_refs = BENCH_REFS[budget]
    spec = get_workload(_WORKLOAD)
    config = _config()
    options = _options(total_refs)
    plan = build_plan(profile, seed=_SEED)

    def _sweep() -> list[float]:
        with streams_enabled(StreamSession(store=StreamStore(store_dir))):
            return [
                sum(
                    measure_interval(
                        spec, config, options, plan, interval,
                        trial_seed=_SEED + trial, warm_seed=_SEED,
                    )["misses"]
                    for interval in range(plan.n_intervals)
                )
                for trial in range(_N_TRUTH_TRIALS)
            ]

    per_trial, wall = _timed(_sweep)
    truth = statistics.mean(per_trial)
    record = _record(
        name="sampling-ground-truth",
        configuration=(
            f"{_WORKLOAD}, {config.cache.describe()}, "
            f"{_N_TRUTH_TRIALS} exhaustive trials x {plan.n_intervals} intervals"
        ),
        config=config,
        wall=wall,
        metrics={
            "refs_per_sec": round(
                _N_TRUTH_TRIALS * total_refs / max(wall, 1e-9)
            ),
        },
        results={
            "trials": _N_TRUTH_TRIALS,
            "refs_per_trial": total_refs,
            "misses_mean": round(truth, 2),
            "misses_per_trial": [round(m, 2) for m in per_trial],
        },
    )
    return record, truth


# ---------------------------------------------------------------------------
# 3. the frontier: one sampled experiment per per-phase budget
# ---------------------------------------------------------------------------

def bench_frontier_point(
    budget: str, profile, per_phase: int, truth: float, store_dir: Path
) -> dict:
    """One sampled 16-trial experiment against a fresh stream store.

    A fresh store means the point's warm cost is inside its own
    ``refs_reduction`` — this is what a standalone sampled sweep sees,
    not the marginal cost after someone else warmed the snapshots.
    """
    total_refs = BENCH_REFS[budget]
    spec = get_workload(_WORKLOAD)
    config = _config()
    options = _options(total_refs)
    plan = build_plan(
        profile, max_phases=_MAX_PHASES, per_phase=per_phase, seed=_SEED
    )

    def _run():
        with streams_enabled(StreamSession(store=StreamStore(store_dir))):
            return run_sampled_trials(
                spec, config, options, plan,
                n_trials=_N_TRIALS, base_seed=_SEED, warm_seed=_SEED,
            )

    result, wall = _timed(_run)
    estimate = result.estimates["misses"]
    error_pct = (
        100.0 * abs(estimate.value - truth) / truth if truth else 0.0
    )
    return _record(
        name=f"sampling-frontier-per-phase-{per_phase}",
        configuration=(
            f"{_WORKLOAD}, {config.cache.describe()}, {_N_TRIALS} trials, "
            f"{len(plan.samples)}/{plan.n_intervals} intervals sampled"
        ),
        config=config,
        wall=wall,
        metrics={
            "sampled_refs_per_sec": round(
                result.total_refs_run / max(wall, 1e-9)
            ),
        },
        results={
            "per_phase": per_phase,
            "trials": _N_TRIALS,
            "n_samples": len(plan.samples),
            "n_intervals": plan.n_intervals,
            "refs_simulated": result.refs_simulated,
            "warm_refs": result.warm_refs,
            "exact_refs": result.exact_refs,
            "misses_estimate": round(estimate.value, 2),
            "ci_low": round(estimate.ci_low, 2),
            "ci_high": round(estimate.ci_high, 2),
            "ci_half_width_pct": round(estimate.ci_half_width_pct, 2),
            "error_pct": round(error_pct, 2),
            "ci_brackets_truth": bool(estimate.brackets(truth)),
            # the headline: exact refs over refs actually run (warm included)
            "speedup": round(result.refs_reduction, 2),
        },
    )


# ---------------------------------------------------------------------------
# the envelope
# ---------------------------------------------------------------------------

def run_all(budget: str = "tiny") -> dict:
    """Run every sampling benchmark; returns the BENCH_PR6 payload."""
    if budget not in BENCH_REFS:
        raise ValueError(
            f"unknown budget {budget!r}; choose from {sorted(BENCH_REFS)}"
        )
    tmp = Path(tempfile.mkdtemp(prefix="bench-sampling-"))
    try:
        plan_record, profile = bench_profile_and_plan(budget)
        truth_record, truth = bench_ground_truth(budget, profile, tmp / "truth")
        records: list[dict[str, Any]] = [plan_record, truth_record]
        for per_phase in FRONTIER_PER_PHASE:
            records.append(
                bench_frontier_point(
                    budget, profile, per_phase, truth,
                    tmp / f"frontier-{per_phase}",
                )
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": "BENCH_PR6",
        "budget": budget,
        "records": records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.sampling",
        description="interval-sampling frontier benchmarks -> BENCH_PR6.json",
    )
    parser.add_argument(
        "--budget", choices=tuple(sorted(BENCH_REFS)), default="tiny"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_BENCH_PATH), help="output JSON path"
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit nonzero unless the per-phase-2 refs-simulated "
            "reduction is at least X"
        ),
    )
    args = parser.parse_args(argv)

    payload = run_all(args.budget)
    path = write_bench(payload, args.out, suite="BENCH_PR6")

    print(f"budget={args.budget} -> {path}")
    for record in payload["records"]:
        results = record["results"]
        speedup = results.get("speedup")
        extra = f"  speedup={speedup:g}x" if speedup is not None else ""
        if "error_pct" in results:
            extra += (
                f"  err={results['error_pct']:g}%"
                f"  ci=+/-{results['ci_half_width_pct']:g}%"
            )
        wall = record["wall_clock_secs"]
        print(f"  {record['name']:<30} wall={wall:8.3f}s{extra}")

    if args.check_speedup is not None:
        achieved = speedup_of(payload, "sampling-frontier-per-phase-2")
        if achieved < args.check_speedup:
            print(
                f"FAIL: per-phase-2 refs reduction {achieved:g}x < "
                f"required {args.check_speedup:g}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"per-phase-2 refs reduction {achieved:g}x >= "
            f"{args.check_speedup:g}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
