"""Stream-store microbenchmarks: ``python -m benchmarks.perf.streams``.

Three benchmarks time the PR-5 machinery end to end:

* **stream-compile-vs-mmap** — materializing one workload reference
  stream from the live generators versus memory-mapping the persisted
  blob back out of the content-addressed store (including the one-time
  CRC verification a fresh process pays);
* **warm-snapshot-fork** — one trap-driven measurement window forked
  from a warm-state snapshot versus the same window reached by a full
  boot-and-replay of the warmup prefix;
* **streams-trials-fanout** — the headline number: N measurement trials
  sharing one warmed prefix, run cold (every trial boots and replays
  the warmup live) versus warm (streams compiled once, snapshot created
  once, trials forked).  The warm timing *includes* the compile and
  snapshot cost, so the speedup is what a sweep actually sees.  Miss
  counts are asserted bit-identical between the two paths.

Results are emitted as ``BENCH_PR5.json`` — same schema-versioned
envelope as ``BENCH_PR3.json`` (``suite`` differs) so the same tooling
reads both trajectories.  Run with::

    PYTHONPATH=src python -m benchmarks.perf.streams --budget quick \\
        --check-speedup 3

``--check-speedup X`` exits nonzero unless the trials-fanout speedup is
at least ``X``; CI gates on 3x at the quick budget.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Any

from benchmarks.perf import (
    BENCH_REFS,
    BENCH_SCHEMA_VERSION,
    _record,
    _timed,
    speedup_of,
    write_bench,
)
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven, run_warm_trials
from repro.streams import (
    StreamSession,
    StreamStore,
    WarmupPlan,
    activate,
    build_live_stream,
    compile_refs_for,
    compile_stream,
    deactivate,
    stream_fingerprint,
)
from repro.workloads import get_workload

#: default output location (next to BENCH_PR3.json)
DEFAULT_BENCH_PATH = Path(__file__).parent.parent / "results" / "BENCH_PR5.json"

_SEED = 1994
_WORKLOAD = "espresso"
#: trials sharing one warmed prefix; the warmup covers 15/16 of the
#: run, so the fan-out replays 8T refs cold against ~1.4T refs warm
_FANOUT_TRIALS = 8


def _config() -> TapewormConfig:
    return TapewormConfig(cache=CacheConfig(size_bytes=4096))


def _options(total_refs: int) -> RunOptions:
    return RunOptions(total_refs=total_refs, trial_seed=_SEED)


def _warmup(total_refs: int) -> WarmupPlan:
    return WarmupPlan(warmup_refs=(total_refs * 15) // 16, warmup_seed=_SEED)


# ---------------------------------------------------------------------------
# 1. compiling a stream vs memory-mapping it back
# ---------------------------------------------------------------------------

def bench_compile_vs_mmap(budget: str, store_dir: Path) -> dict:
    """Live generation vs a cold-process mmap of the persisted blob."""
    spec = get_workload(_WORKLOAD)
    task = spec.primary_task
    refs = compile_refs_for(BENCH_REFS[budget])
    key = stream_fingerprint(spec, task, refs)

    compiled, compile_secs = _timed(
        lambda: compile_stream(
            build_live_stream(spec.name, spec.task(task), False), refs
        )
    )
    store = StreamStore(store_dir)
    store.put(key, compiled)
    # a fresh instance re-verifies the CRC, as a new process would
    mapped, mmap_secs = _timed(lambda: StreamStore(store_dir).get(key))
    assert mapped is not None and len(mapped) == refs

    return _record(
        name="stream-compile-vs-mmap",
        configuration=f"{_WORKLOAD}/{task}, {refs} refs",
        config={"workload": _WORKLOAD, "task": task, "refs": refs},
        wall=compile_secs + mmap_secs,
        metrics={
            "compile_refs_per_sec": round(refs / max(compile_secs, 1e-9)),
            "mmap_refs_per_sec": round(refs / max(mmap_secs, 1e-9)),
        },
        results={
            "refs": refs,
            "blob_bytes": int(store.stats()["blob_bytes"]),
            "compile_secs": round(compile_secs, 6),
            "mmap_secs": round(mmap_secs, 6),
            "speedup": round(compile_secs / max(mmap_secs, 1e-9), 2),
        },
    )


# ---------------------------------------------------------------------------
# 2. forking a warm snapshot vs replaying the warmup prefix
# ---------------------------------------------------------------------------

def bench_snapshot_fork(budget: str, store_dir: Path) -> dict:
    """One measurement window: snapshot fork vs full warmup replay."""
    total_refs = BENCH_REFS[budget]
    spec = get_workload(_WORKLOAD)
    config = _config()
    options = _options(total_refs)
    warmup = _warmup(total_refs)

    full_report, full_secs = _timed(
        lambda: run_trap_driven(spec, config, options, warmup=warmup)
    )
    session = StreamSession(store=StreamStore(store_dir))
    activate(session)
    try:
        # untimed priming run compiles the streams and stores the snapshot
        run_trap_driven(spec, config, options, warmup=warmup)
        fork_report, fork_secs = _timed(
            lambda: run_trap_driven(spec, config, options, warmup=warmup)
        )
    finally:
        deactivate()
    assert fork_report.stats.total_misses == full_report.stats.total_misses, (
        "snapshot fork diverged from full replay"
    )

    return _record(
        name="warm-snapshot-fork",
        configuration=f"{_WORKLOAD}, {config.cache.describe()}, "
        f"warmup {warmup.warmup_refs}/{total_refs}",
        config=config,
        wall=full_secs + fork_secs,
        metrics={
            "full_refs_per_sec": round(total_refs / max(full_secs, 1e-9)),
            "fork_refs_per_sec": round(total_refs / max(fork_secs, 1e-9)),
        },
        results={
            "refs": total_refs,
            "warmup_refs": warmup.warmup_refs,
            "misses": full_report.stats.total_misses,
            "full_secs": round(full_secs, 6),
            "fork_secs": round(fork_secs, 6),
            "speedup": round(full_secs / max(fork_secs, 1e-9), 2),
        },
    )


# ---------------------------------------------------------------------------
# 3. the gated fan-out: N warm trials, cold path vs stream session
# ---------------------------------------------------------------------------

def bench_trials_fanout(budget: str, store_dir: Path) -> dict:
    """N trials off one warmed prefix, with and without the session.

    The warm timing starts from an empty store and session, so compile,
    persist, and snapshot-create costs are all inside the measured
    window — this is the first-sweep speedup, not the best case.
    """
    total_refs = BENCH_REFS[budget]
    spec = get_workload(_WORKLOAD)
    config = _config()
    options = _options(total_refs)
    warmup = _warmup(total_refs)

    cold_reports, cold_secs = _timed(
        lambda: run_warm_trials(
            spec, config, options, warmup, _FANOUT_TRIALS, base_seed=0
        )
    )
    session = StreamSession(store=StreamStore(store_dir / "fanout"))
    activate(session)
    try:
        warm_reports, warm_secs = _timed(
            lambda: run_warm_trials(
                spec, config, options, warmup, _FANOUT_TRIALS, base_seed=0
            )
        )
    finally:
        deactivate()
    cold_misses = [report.stats.total_misses for report in cold_reports]
    warm_misses = [report.stats.total_misses for report in warm_reports]
    assert cold_misses == warm_misses, (
        f"fan-out diverged: {cold_misses} != {warm_misses}"
    )

    return _record(
        name="streams-trials-fanout",
        configuration=f"{_WORKLOAD}, {config.cache.describe()}, "
        f"{_FANOUT_TRIALS} trials, warmup {warmup.warmup_refs}/{total_refs}",
        config=config,
        wall=cold_secs + warm_secs,
        metrics={
            "cold_trials_per_sec": round(
                _FANOUT_TRIALS / max(cold_secs, 1e-9), 3
            ),
            "warm_trials_per_sec": round(
                _FANOUT_TRIALS / max(warm_secs, 1e-9), 3
            ),
        },
        results={
            "trials": _FANOUT_TRIALS,
            "refs": total_refs,
            "warmup_refs": warmup.warmup_refs,
            "misses": cold_misses,
            "cold_secs": round(cold_secs, 6),
            "warm_secs": round(warm_secs, 6),
            "speedup": round(cold_secs / max(warm_secs, 1e-9), 2),
        },
    )


# ---------------------------------------------------------------------------
# the envelope
# ---------------------------------------------------------------------------

def run_all(budget: str = "tiny") -> dict:
    """Run every stream benchmark; returns the BENCH_PR5 payload."""
    if budget not in BENCH_REFS:
        raise ValueError(
            f"unknown budget {budget!r}; choose from {sorted(BENCH_REFS)}"
        )
    tmp = Path(tempfile.mkdtemp(prefix="bench-streams-"))
    try:
        records: list[dict[str, Any]] = [
            bench_compile_vs_mmap(budget, tmp / "store"),
            bench_snapshot_fork(budget, tmp / "snap"),
            bench_trials_fanout(budget, tmp),
        ]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": "BENCH_PR5",
        "budget": budget,
        "records": records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.streams",
        description="stream store + snapshot microbenchmarks -> BENCH_PR5.json",
    )
    parser.add_argument(
        "--budget", choices=tuple(sorted(BENCH_REFS)), default="tiny"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_BENCH_PATH), help="output JSON path"
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless the trials-fanout speedup is at least X",
    )
    args = parser.parse_args(argv)

    payload = run_all(args.budget)
    path = write_bench(payload, args.out, suite="BENCH_PR5")

    print(f"budget={args.budget} -> {path}")
    for record in payload["records"]:
        speedup = record["results"].get("speedup")
        extra = f"  speedup={speedup:g}x" if speedup is not None else ""
        wall = record["wall_clock_secs"]
        print(f"  {record['name']:<24} wall={wall:8.3f}s{extra}")

    if args.check_speedup is not None:
        achieved = speedup_of(payload, "streams-trials-fanout")
        if achieved < args.check_speedup:
            print(
                f"FAIL: trials-fanout speedup {achieved:g}x < "
                f"required {args.check_speedup:g}x",
                file=sys.stderr,
            )
            return 1
        print(f"trials-fanout speedup {achieved:g}x >= {args.check_speedup:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
