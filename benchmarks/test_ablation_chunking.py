"""Ablation: chunked vectorized trap filtering (a wall-clock measurement).

The simulated hardware filters cache hits over numpy chunks, entering
Python only for trapped references — the same structural bet the real
Tapeworm makes on hardware hit-filtering.  This ablation measures
actual Python wall-clock for the same simulation at different chunk
sizes; tiny chunks approximate reference-at-a-time simulation and the
vectorization win disappears.  Miss counts must be identical across
chunk sizes (the in-order rescan machinery guarantees exactness).
"""

import time

from benchmarks.conftest import run_once
from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

CHUNK_SIZES = (64, 512, 4096)
TOTAL_REFS = 120_000  # fixed: this is a wall-clock experiment


def _sweep(_budget):
    spec = get_workload("espresso")
    results = {}
    for chunk_refs in CHUNK_SIZES:
        options = RunOptions(
            total_refs=TOTAL_REFS,
            trial_seed=3,
            chunk_refs=chunk_refs,
            simulate=frozenset({Component.USER}),
        )
        config = TapewormConfig(cache=CacheConfig(size_bytes=4096))
        start = time.perf_counter()
        report = run_trap_driven(spec, config, options)
        elapsed = time.perf_counter() - start
        results[chunk_refs] = (elapsed, report.stats.total_misses)
    return results


def test_ablation_chunking(benchmark, budget, save_result):
    results = run_once(benchmark, _sweep, budget)
    rows = [
        [chunk, f"{elapsed:.3f}s", misses]
        for chunk, (elapsed, misses) in results.items()
    ]
    save_result(
        "ablation_chunking",
        format_table(
            ["Chunk refs", "Wall clock", "Misses"],
            rows,
            title=(
                "Ablation: vectorized trap filtering "
                f"(espresso user, 4 KB, {TOTAL_REFS:,} refs)"
            ),
        ),
    )
    # exactness: identical misses at every chunk size
    assert len({misses for _, misses in results.values()}) == 1
    # the vectorization win: big chunks are much faster than near-scalar
    assert results[4096][0] < results[64][0] / 2
