"""Ablation: the miss handler's engineering matters.

The original all-C handler cost ~2,000 cycles (the Wisconsin Wind
Tunnel's comparable path: ~2,500); rewriting it in assembly and
bypassing kernel entry/exit brought it to 246; the paper projects ~50
with a cleaner memory-ASIC interface.  Slowdown scales accordingly —
the 8x optimization is what makes Tapeworm's slowdowns "imperceptible".
The three variants are independent farm jobs.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import budget_refs
from repro.farm import Job
from repro.harness.tables import format_table

VARIANTS = ("unoptimized", "optimized", "hardware_assisted")


def _sweep(budget, farm):
    jobs = [
        Job(
            "trap.measure",
            {
                "workload": "mpeg_play",
                "total_refs": budget_refs(budget),
                "cache": {"size_bytes": 4096},
                "handler_variant": variant,
                "components": ("user",),
                "metric": "all",
            },
            seed=3,
        )
        for variant in VARIANTS
    ]
    return dict(zip(VARIANTS, farm.run_jobs(jobs)))


def test_ablation_handler_variants(benchmark, budget, save_result, farm):
    results = run_once(benchmark, _sweep, budget, farm)
    rows = [
        [variant, results[variant]["slowdown"], int(results[variant]["total_misses"])]
        for variant in VARIANTS
    ]
    save_result(
        "ablation_handler_variants",
        format_table(
            ["Handler", "Slowdown", "Misses"],
            rows,
            title="Ablation: handler implementation (mpeg_play user, 4 KB)",
        ),
    )
    # same misses, very different slowdowns
    misses = {r["total_misses"] for r in results.values()}
    assert len(misses) == 1
    unopt, opt, hw = (results[v]["slowdown"] for v in VARIANTS)
    assert unopt / opt == pytest.approx(2000 / 246, rel=0.05)
    assert opt / hw == pytest.approx(246 / 50, rel=0.10)
