"""Ablation: the miss handler's engineering matters.

The original all-C handler cost ~2,000 cycles (the Wisconsin Wind
Tunnel's comparable path: ~2,500); rewriting it in assembly and
bypassing kernel entry/exit brought it to 246; the paper projects ~50
with a cleaner memory-ASIC interface.  Slowdown scales accordingly —
the 8x optimization is what makes Tapeworm's slowdowns "imperceptible".
"""

import pytest

from benchmarks.conftest import run_once
from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

VARIANTS = ("unoptimized", "optimized", "hardware_assisted")


def _sweep(budget):
    spec = get_workload("mpeg_play")
    options = RunOptions(
        total_refs=budget_refs(budget),
        trial_seed=3,
        simulate=frozenset({Component.USER}),
    )
    results = {}
    for variant in VARIANTS:
        config = TapewormConfig(
            cache=CacheConfig(size_bytes=4096), handler_variant=variant
        )
        results[variant] = run_trap_driven(spec, config, options)
    return results


def test_ablation_handler_variants(benchmark, budget, save_result):
    results = run_once(benchmark, _sweep, budget)
    rows = [
        [variant, results[variant].slowdown, results[variant].stats.total_misses]
        for variant in VARIANTS
    ]
    save_result(
        "ablation_handler_variants",
        format_table(
            ["Handler", "Slowdown", "Misses"],
            rows,
            title="Ablation: handler implementation (mpeg_play user, 4 KB)",
        ),
    )
    # same misses, very different slowdowns
    misses = {r.stats.total_misses for r in results.values()}
    assert len(misses) == 1
    unopt, opt, hw = (results[v].slowdown for v in VARIANTS)
    assert unopt / opt == pytest.approx(2000 / 246, rel=0.05)
    assert opt / hw == pytest.approx(246 / 50, rel=0.10)
