"""Ablation: code layout decides whether associativity pays.

Figure 3's associativity claim ("these structures typically experience
fewer misses overall, and thus actually lead to faster simulation")
does not reproduce on the calibrated *contiguous* procedure layouts —
packed code cannot alias below its footprint, and cyclic loops are
LRU-adversarial.  Real binaries scatter hot routines across the text
segment, creating exactly the direct-mapped aliasing associativity
absorbs.  This ablation runs the same procedures both ways and shows
the paper's behavior appear with the scattered layout.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.caches.config import CacheConfig
from repro.harness.tables import format_table
from repro.tracing.cache2000 import Cache2000
from repro.workloads.locality import (
    BlockLoopStream,
    lay_out_procedures,
    scatter_procedures,
)

SHAPES = [(1792, 8, 256, 2), (4096, 5, 256, 2), (16384, 0.3, 512, 1)]
CACHE_BYTES = 8192
REFS = 150_000


def _misses(procedures, associativity):
    stream = BlockLoopStream(procedures, seed=11)
    simulator = Cache2000(
        CacheConfig(size_bytes=CACHE_BYTES, associativity=associativity),
        force_general_path=associativity > 1,
    )
    done = 0
    while done < REFS:
        simulator.simulate_chunk(stream.next_chunk(50_000))
        done += 50_000
    return simulator.stats.total_misses


def _sweep(_budget):
    layouts = {
        "contiguous": lay_out_procedures(0x10000, SHAPES),
        "scattered": scatter_procedures(
            0x10000, SHAPES, span_bytes=256 * 1024, seed=5
        ),
    }
    return {
        (name, assoc): _misses(procedures, assoc)
        for name, procedures in layouts.items()
        for assoc in (1, 2, 4)
    }


def test_ablation_layout_associativity(benchmark, budget, save_result):
    results = run_once(benchmark, _sweep, budget)
    rows = [
        [name] + [results[(name, assoc)] for assoc in (1, 2, 4)]
        for name in ("contiguous", "scattered")
    ]
    save_result(
        "ablation_layout_associativity",
        format_table(
            ["Layout", "1-way", "2-way", "4-way"],
            rows,
            title=(
                f"Ablation: layout vs associativity "
                f"(mpeg_play shapes, {CACHE_BYTES // 1024} KB cache misses)"
            ),
        ),
    )
    # contiguous: associativity cannot help (no aliasing below footprint)
    assert results[("contiguous", 4)] >= results[("contiguous", 1)] * 0.8
    # scattered: the paper's behavior — a large associativity win
    assert results[("scattered", 2)] < results[("scattered", 1)] / 3
