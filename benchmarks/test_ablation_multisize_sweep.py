"""Ablation: one-pass multi-configuration DM sweep vs per-size runs.

The Sugumar-style economics from Figure 1's caption: trace generation
dominates trace-driven cost, so answering a whole cache-size sweep from
one annotated execution beats re-running Cache2000 per size — and,
unlike the fully-associative stack shortcut, the DM sweep is *exact*.
"""

from benchmarks.conftest import run_once
from repro.caches.config import CacheConfig
from repro.experiments import budget_refs
from repro.harness.runner import run_trace_driven
from repro.harness.tables import format_table
from repro.tracing.multisize import run_multisize_sweep
from repro.workloads.registry import get_workload

SIZES_KB = (1, 2, 4, 8, 16, 32)


def _sweep(budget):
    user_refs = budget_refs(budget) // 2
    spec = get_workload("mpeg_play")
    sweep = run_multisize_sweep(
        spec, user_refs, tuple(kb * 1024 for kb in SIZES_KB)
    )
    separate = {
        kb: run_trace_driven(spec, CacheConfig(size_bytes=kb * 1024), user_refs)
        for kb in SIZES_KB
    }
    return sweep, separate


def test_ablation_multisize_sweep(benchmark, budget, save_result):
    sweep, separate = run_once(benchmark, _sweep, budget)
    rows = [
        [
            f"{kb}K",
            sweep.miss_counts[kb * 1024],
            separate[kb].misses,
        ]
        for kb in SIZES_KB
    ]
    total_separate = sum(r.overhead_cycles for r in separate.values())
    table = format_table(
        ["Size", "Sweep misses", "Per-size misses"],
        rows,
        title="Ablation: one-pass multi-size DM sweep (mpeg_play user trace)",
    )
    table += (
        f"\nmodeled cost: sweep {sweep.overhead_cycles:,} cycles vs "
        f"{total_separate:,} for {len(SIZES_KB)} separate runs "
        f"({total_separate / sweep.overhead_cycles:.1f}x)"
    )
    save_result("ablation_multisize_sweep", table)

    # exact agreement at every size, at a fraction of the cost
    for kb in SIZES_KB:
        assert sweep.miss_counts[kb * 1024] == separate[kb].misses
    assert sweep.overhead_cycles < total_separate / 2
