"""Ablation: the VM allocation policy drives Table 9's variance.

Swapping the random allocator for a sequential first-fit one removes
run-to-run page-placement differences entirely — physically-indexed
variance collapses to zero, demonstrating that the allocator (not the
trap machinery) is the variance source.  The measured variance peak is
also checked against Kessler's analytic model.  Trials run on the
execution farm via the generic ``trap.measure``.
"""

from benchmarks.conftest import run_once
from repro.analysis.kessler import conflict_peak_cache_pages
from repro.experiments import budget_refs
from repro.harness.experiment import run_trials_farm
from repro.harness.tables import format_table, pct
from repro.workloads.registry import get_workload


def _sweep(budget, farm):
    total_refs = budget_refs(budget)
    return {
        policy: run_trials_farm(
            "trap.measure",
            {
                "workload": "mpeg_play",
                "total_refs": total_refs,
                "cache": {"size_bytes": 16 * 1024},
                "alloc_policy": policy,
                "components": ("user",),
                "metric": "total_misses",
            },
            4,
            base_seed=500,
            farm=farm,
        )
        for policy in ("random", "sequential")
    }


def test_ablation_page_allocation(benchmark, budget, save_result, farm):
    stats = run_once(benchmark, _sweep, budget, farm)
    rows = [
        [policy, s.mean, f"{s.stdev:.0f} {pct(s.stdev_pct)}"]
        for policy, s in stats.items()
    ]
    table = format_table(
        ["Allocator", "Misses (mean)", "s"],
        rows,
        title="Ablation: page allocation policy (mpeg_play user, 16 KB phys)",
    )
    # Kessler cross-check: the variance peak should sit near the text
    # footprint (~8 pages), i.e. within the 8-64 KB band
    spec = get_workload("mpeg_play")
    stream = spec.task("mpeg_play").build_stream("mpeg_play")
    footprint_pages = -(-stream.footprint_bytes() // 4096)
    peak_pages = conflict_peak_cache_pages(footprint_pages)
    table += (
        f"\nKessler model: footprint {footprint_pages} pages -> variance "
        f"peak at ~{peak_pages * 4} KB caches"
    )
    save_result("ablation_page_allocation", table)

    assert stats["sequential"].stdev == 0.0
    assert stats["random"].stdev > 0.0
    assert footprint_pages / 2 <= peak_pages <= footprint_pages * 4
