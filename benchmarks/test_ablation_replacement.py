"""Ablation: replacement policy in tw_replace.

tw_replace is pure software, so any policy is simulable.  This sweeps
LRU / FIFO / random on a 4-way cache where the policy actually has
choices to make.
"""

from benchmarks.conftest import run_once
from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

POLICIES = ("lru", "fifo", "random")


def _sweep(budget):
    spec = get_workload("mpeg_play")
    options = RunOptions(
        total_refs=budget_refs(budget),
        trial_seed=3,
        simulate=frozenset({Component.USER}),
    )
    results = {}
    for policy in POLICIES:
        config = TapewormConfig(
            cache=CacheConfig(size_bytes=4096, associativity=4),
            replacement=policy,
        )
        results[policy] = run_trap_driven(spec, config, options)
    return results


def test_ablation_replacement(benchmark, budget, save_result):
    results = run_once(benchmark, _sweep, budget)
    rows = [
        [policy, results[policy].stats.total_misses, results[policy].slowdown]
        for policy in POLICIES
    ]
    save_result(
        "ablation_replacement",
        format_table(
            ["Policy", "Misses", "Slowdown"],
            rows,
            title="Ablation: tw_replace policy (mpeg_play user, 4 KB 4-way)",
        ),
    )
    counts = {p: r.stats.total_misses for p, r in results.items()}
    # policies genuinely differ on this looping workload; random breaks
    # LRU's cyclic-eviction pathology
    assert len(set(counts.values())) >= 2
    assert counts["random"] < counts["lru"]
