"""Ablation: replacement policy in tw_replace.

tw_replace is pure software, so any policy is simulable.  This sweeps
LRU / FIFO / random on a 4-way cache where the policy actually has
choices to make.  The three configurations are independent, so they run
as farm jobs — parallel under ``REPRO_JOBS``, cached across reruns.
"""

from benchmarks.conftest import run_once
from repro.experiments import budget_refs
from repro.farm import Job
from repro.harness.tables import format_table

POLICIES = ("lru", "fifo", "random")


def _sweep(budget, farm):
    jobs = [
        Job(
            "trap.measure",
            {
                "workload": "mpeg_play",
                "total_refs": budget_refs(budget),
                "cache": {"size_bytes": 4096, "associativity": 4},
                "replacement": policy,
                "components": ("user",),
                "metric": "all",
            },
            seed=3,
        )
        for policy in POLICIES
    ]
    return dict(zip(POLICIES, farm.run_jobs(jobs)))


def test_ablation_replacement(benchmark, budget, save_result, farm):
    results = run_once(benchmark, _sweep, budget, farm)
    rows = [
        [policy, int(results[policy]["total_misses"]), results[policy]["slowdown"]]
        for policy in POLICIES
    ]
    save_result(
        "ablation_replacement",
        format_table(
            ["Policy", "Misses", "Slowdown"],
            rows,
            title="Ablation: tw_replace policy (mpeg_play user, 4 KB 4-way)",
        ),
    )
    counts = {p: r["total_misses"] for p, r in results.items()}
    # policies genuinely differ on this looping workload; random breaks
    # LRU's cyclic-eviction pathology
    assert len(set(counts.values())) >= 2
    assert counts["random"] < counts["lru"]
