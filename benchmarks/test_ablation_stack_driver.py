"""Ablation: the third simulation style — single-pass stack algorithms.

One Mattson pass answers a whole cache-size sweep, where Cache2000
re-processes the trace per size.  Modeled cycle costs quantify the
trade; the accuracy gap (fully-associative vs direct-mapped) is
reported alongside.
"""

from benchmarks.conftest import run_once
from repro.caches.config import CacheConfig
from repro.experiments import budget_refs
from repro.harness.runner import run_trace_driven
from repro.harness.tables import format_table
from repro.tracing.stackdriver import StackDriver
from repro.workloads.registry import get_workload

SIZES_KB = (1, 4, 16, 64)


def _sweep(budget):
    user_refs = min(budget_refs(budget) // 4, 150_000)  # stack pass is O(depth)
    spec = get_workload("mpeg_play")
    stack = StackDriver(spec).sweep(
        user_refs, tuple(kb * 1024 for kb in SIZES_KB)
    )
    trace_runs = {
        kb: run_trace_driven(spec, CacheConfig(size_bytes=kb * 1024), user_refs)
        for kb in SIZES_KB
    }
    return stack, trace_runs


def test_ablation_stack_driver(benchmark, budget, save_result):
    stack, trace_runs = run_once(benchmark, _sweep, budget)
    rows = []
    for kb in SIZES_KB:
        rows.append(
            [
                f"{kb}K",
                f"{stack.miss_ratios[kb * 1024]:.4f}",
                f"{trace_runs[kb].miss_ratio:.4f}",
            ]
        )
    table = format_table(
        ["Size", "Stack (fully-assoc)", "Cache2000 (direct-mapped)"],
        rows,
        title="Ablation: single-pass stack sweep vs per-size trace runs",
    )
    total_trace_cycles = sum(r.overhead_cycles for r in trace_runs.values())
    table += (
        f"\nmodeled cost: stack one-pass {stack.overhead_cycles:,} cycles "
        f"vs {total_trace_cycles:,} for {len(SIZES_KB)} Cache2000 runs"
    )
    save_result("ablation_stack_driver", table)

    # one pass beats N>2 per-size runs on modeled cost
    assert stack.overhead_cycles < total_trace_cycles
    # accuracy: agrees at large caches, underestimates conflicts at
    # small ones (fully-assoc has no conflict misses)
    assert abs(
        stack.miss_ratios[64 * 1024] - trace_runs[64].miss_ratio
    ) < 0.01
    assert stack.miss_ratios[1024] <= trace_runs[1].miss_ratio + 0.02
