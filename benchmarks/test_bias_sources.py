"""Sources of measurement bias (section 4.2), beyond Figure 4.

The paper names three ways Tapeworm's presence perturbs what it
measures.  Time dilation has its own figure (Figure 4); this bench
exercises the other two:

* **boot-time memory reservation** — Tapeworm claims 64 pages at boot,
  shrinking the free pool; on a memory-constrained machine that alone
  induces paging ("we minimize this problem by adding enough additional
  physical memory so that paging is avoided altogether");
* **interrupt masking** — kernel code running with interrupts disabled
  cannot take ECC traps, so a small fraction of kernel misses goes
  uncounted.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro._types import PAGE_SIZE, Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload


def _paging_activity(reserved_frames: int) -> int:
    """Evictions suffered by a fixed workload on a 48-frame machine."""
    machine = Machine(
        MachineConfig(memory_bytes=48 * PAGE_SIZE, n_vpages=128)
    )
    kernel = Kernel(
        machine=machine,
        alloc_policy="sequential",
        reserved_frames=reserved_frames,
    )
    task = kernel.spawn("tenant", Component.USER)
    rng = np.random.default_rng(3)
    for _ in range(40):
        vpns = rng.integers(0, 44, size=16)
        kernel.run_chunk(
            task, np.sort(vpns.astype(np.int64) * PAGE_SIZE)
        )
    return kernel.vm.evictions


def _masking_bias(budget: str):
    report = run_trap_driven(
        get_workload("ousterhout"),  # the most kernel-heavy workload
        TapewormConfig(cache=CacheConfig(size_bytes=4096)),
        RunOptions(total_refs=budget_refs(budget), trial_seed=4),
    )
    return report


def _sweep(budget):
    paging = {
        reserved: _paging_activity(reserved) for reserved in (2, 16, 32)
    }
    report = _masking_bias(budget)
    return paging, report


def test_bias_sources(benchmark, budget, save_result):
    paging, report = run_once(benchmark, _sweep, budget)
    kernel_misses = report.stats.misses[Component.KERNEL]
    masked_share = report.masked_traps / max(
        report.masked_traps + kernel_misses, 1
    )
    rows = [
        [f"{reserved} frames reserved", evictions]
        for reserved, evictions in paging.items()
    ]
    table = format_table(
        ["Boot reservation", "Page-outs induced"],
        rows,
        title="Bias source: Tapeworm's boot-time memory claim (48-frame machine)",
    )
    table += (
        f"\n\nBias source: interrupt masking (ousterhout, all activity)"
        f"\n  kernel misses counted : {kernel_misses}"
        f"\n  trap attempts masked  : {report.masked_traps}"
        f"\n  masked share of kernel misses: {masked_share:.1%}"
    )
    save_result("bias_sources", table)

    # a bigger reservation induces (weakly) more paging
    assert paging[32] >= paging[16] >= paging[2]
    assert paging[32] > paging[2]
    # masking loses only a small slice of kernel misses ("only a very
    # small fraction of kernel code is affected")
    assert report.masked_traps > 0
    assert masked_share < 0.25
