"""Regenerates Figure 1: the two core loops, observed event by event."""

from benchmarks.conftest import run_once
from repro.experiments.figure1 import DEMO_ADDRESSES, render, run_figure1


def test_figure1(benchmark, budget, save_result):
    result = run_once(benchmark, run_figure1)
    save_result("figure1", render(result))
    # identical results from both algorithms
    assert result.trace_misses == result.trap_misses
    # the structural difference: trace-driven works per reference,
    # trap-driven per miss
    assert result.trace_work == len(DEMO_ADDRESSES)
    assert result.trap_work == result.trap_misses
    assert result.trap_work < result.trace_work
