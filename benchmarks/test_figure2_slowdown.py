"""Regenerates Figure 2: Tapeworm vs Cache2000 slowdowns by cache size.

Paper shape: Cache2000 sits at ~20-30x across all sizes; Tapeworm starts
several times cheaper at 1 KB (6.27 vs 30.2) and approaches zero for
large caches.
"""

from benchmarks.conftest import run_once
from repro.experiments.figure2 import render, run_figure2


def test_figure2(benchmark, budget, save_result):
    result = run_once(benchmark, run_figure2, budget)
    save_result("figure2", render(result))

    rows = {row.size_kb: row for row in result.rows}
    # who wins: Tapeworm everywhere
    for row in result.rows:
        assert row.tapeworm_slowdown < row.cache2000_slowdown
    # by what factor: >=3x at 1 KB (paper: 4.8x), growing with size
    assert rows[1].cache2000_slowdown / rows[1].tapeworm_slowdown > 3
    assert (
        rows[64].cache2000_slowdown / max(rows[64].tapeworm_slowdown, 1e-9)
        > 20
    )
    # Tapeworm under 10x for miss ratios below 10% (the abstract's claim)
    for row in result.rows:
        if row.miss_ratio < 0.10:
            assert row.tapeworm_slowdown < 10
    # the ~20x trace-driven floor
    assert min(r.cache2000_slowdown for r in result.rows) > 15
