"""Regenerates Figure 3: slowdowns across simulation configurations.

Paper shapes: set sampling cuts slowdown in direct proportion to the
sampled fraction; larger caches are cheaper to simulate in every panel.
(Associativity's miss-count benefit does not transfer to our synthetic
loop streams — see EXPERIMENTS.md — so the associativity panel is
asserted only for the cost-side shape.)
"""

from benchmarks.conftest import run_once
from repro.experiments.figure3 import SIZES_KB, render, run_figure3


def test_figure3(benchmark, budget, save_result):
    result = run_once(benchmark, run_figure3, budget)
    save_result("figure3", render(result))

    # sampling: proportional slowdown reduction at every size
    for size_kb in SIZES_KB:
        full = result.point("sampling", 1, size_kb).slowdown
        for denominator in (2, 4, 8):
            sampled = result.point("sampling", denominator, size_kb).slowdown
            assert sampled < full / denominator * 1.6
    # larger caches simulate faster in every panel
    for dimension, value in (
        ("associativity", 1),
        ("line_bytes", 16),
        ("sampling", 1),
    ):
        series = sorted(
            result.series(dimension, value), key=lambda p: p.size_kb
        )
        slowdowns = [p.slowdown for p in series]
        assert all(a >= b for a, b in zip(slowdowns, slowdowns[1:]))
    # longer lines -> fewer traps -> faster simulation
    for size_kb in SIZES_KB:
        assert (
            result.point("line_bytes", 64, size_kb).slowdown
            < result.point("line_bytes", 16, size_kb).slowdown
        )
