"""Regenerates Figure 4: measurement error due to time dilation.

Paper shape: measured misses grow with dilation, steepest at low
slowdowns, leveling off toward +10-15% near slowdown 10.
"""

from benchmarks.conftest import run_once
from repro.experiments.figure4 import render, run_figure4


def test_figure4(benchmark, budget, save_result):
    result = run_once(benchmark, run_figure4, budget)
    save_result("figure4", render(result))

    points = sorted(result.points, key=lambda p: p.slowdown)
    # dilation spans the paper's range (sub-1x to ~10x slowdowns)
    assert points[0].slowdown < 1.5
    assert points[-1].slowdown > 4.0
    # error grows with dilation and lands in the paper's band
    assert points[-1].increase_pct > 3.0
    assert points[-1].increase_pct < 40.0
    # more ticks at higher dilation: the mechanism itself
    assert points[-1].ticks > points[0].ticks
