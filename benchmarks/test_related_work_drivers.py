"""Beyond the paper's own tables: a three-driver comparison.

Section 2 positions Tapeworm against two trace-driven lineages:
single-task annotation (Pixie) and system-wide trace buffers
(Mogul/Borg, Chen).  This benchmark runs all three on the same workload
and structure, comparing completeness (which components each sees) and
cost (slowdown).  Expected shape: system tracing matches Tapeworm's
completeness but keeps trace-driven's per-reference cost; Pixie is
cheapest of the tracers but sees only one task.
"""

from benchmarks.conftest import run_once
from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import (
    RunOptions,
    run_system_trace_driven,
    run_trace_driven,
    run_trap_driven,
)
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

CACHE = CacheConfig(size_bytes=16 * 1024, indexing=Indexing.VIRTUAL)


def _sweep(budget):
    spec = get_workload("mpeg_play")
    # dilation off: this is a structural cost comparison, and Tapeworm's
    # extra clock ticks would otherwise change what the drivers measure
    # (that bias is Figure 4's own experiment)
    options = RunOptions(
        total_refs=budget_refs(budget), trial_seed=2, tick_cycles=10**12
    )
    trap = run_trap_driven(spec, TapewormConfig(cache=CACHE), options)
    systrace = run_system_trace_driven(spec, CACHE, options)
    pixie = run_trace_driven(
        spec, CACHE, int(options.total_refs * spec.meta.frac_user)
    )
    return trap, systrace, pixie


def test_related_work_drivers(benchmark, budget, save_result):
    trap, systrace, pixie = run_once(benchmark, _sweep, budget)
    components_seen = {
        "Tapeworm (trap-driven)": sum(
            1 for c in Component if trap.stats.misses[c] > 0
        ),
        "System tracing [Mogul91/Chen93b]": sum(
            1 for c in Component if systrace.misses[c] > 0
        ),
        "Pixie+Cache2000": 1,
    }
    rows = [
        ["Tapeworm (trap-driven)", components_seen["Tapeworm (trap-driven)"],
         trap.stats.total_misses, f"{trap.slowdown:.2f}x"],
        ["System tracing [Mogul91/Chen93b]",
         components_seen["System tracing [Mogul91/Chen93b]"],
         systrace.total_misses, f"{systrace.slowdown:.2f}x"],
        ["Pixie+Cache2000", 1, pixie.misses, f"{pixie.slowdown:.2f}x"],
    ]
    save_result(
        "related_work_drivers",
        format_table(
            ["Driver", "Components seen", "Misses", "Slowdown"],
            rows,
            title=(
                "Related-work comparison: mpeg_play, 16 KB "
                "virtually-indexed I-cache, all three drivers"
            ),
        ),
    )
    # completeness: both OS-capable drivers see all four components,
    # and with dilation disabled they count identical misses
    assert components_seen["Tapeworm (trap-driven)"] == 4
    assert components_seen["System tracing [Mogul91/Chen93b]"] == 4
    assert trap.stats.total_misses == systrace.total_misses
    # cost: Tapeworm is far cheaper than either tracer, and system
    # tracing costs at least Pixie-class
    assert trap.slowdown < systrace.slowdown / 3
    assert systrace.slowdown > 10
