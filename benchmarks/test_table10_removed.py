"""Regenerates Table 10: measurement variation removed.

Paper shape: configuring virtual indexing and no sampling collapses the
Table 7 standard deviations (7-76%) to a few percent at most.
"""

from benchmarks.conftest import run_once
from repro.experiments.table10 import render, run_table10


def test_table10(benchmark, budget, save_result, farm):
    result = run_once(benchmark, run_table10, budget, farm=farm)
    save_result("table10", render(result))

    for name, stats in result.stats.items():
        assert stats.stdev_pct < 8.0, name  # paper: 0-4%
