"""Regenerates Table 11: Tapeworm code distribution."""

from benchmarks.conftest import run_once
from repro.experiments.table11 import render, run_table11


def test_table11(benchmark, budget, save_result):
    result = run_once(benchmark, run_table11)
    save_result("table11", render(result))
    # the portability claim: machine-dependent code is a sliver
    assert result.percent("machine-dependent kernel") < 10  # paper: 5%
    assert result.percent("machine-independent user") > 50  # paper: 82%
