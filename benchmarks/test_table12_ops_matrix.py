"""Regenerates Table 12: privileged operations across microprocessors."""

from benchmarks.conftest import run_once
from repro.experiments.table12 import render, run_table12
from repro.machine.ops import PROCESSORS


def test_table12(benchmark, budget, save_result):
    result = run_once(benchmark, run_table12)
    save_result("table12", render(result))
    assert len(result.assessments) == len(PROCESSORS)
    # the paper's two actual ports
    assert result.assessment("MIPS R3000").can_simulate_caches
    assert not result.assessment("Intel i486").can_simulate_caches
    assert result.assessment("Intel i486").can_simulate_tlbs
