"""Regenerates Tables 3 and 4: the workload and OS summary."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table34 import render, run_table34


def test_table3_4(benchmark, budget, save_result):
    result = run_once(benchmark, run_table34, budget)
    save_result("table3_4", render(result))
    # shape: system-heavy workloads measure system-heavy, task counts exact
    by_name = {row.meta.name: row for row in result.rows}
    assert by_name["kenbus"].measured.frac_kernel > 0.35
    assert by_name["eqntott"].measured.frac_user > 0.90
    for row in result.rows:
        assert row.measured.user_task_count == row.meta.user_task_count
        assert row.measured.frac_kernel == pytest.approx(
            row.meta.frac_kernel, abs=0.08
        )
