"""Regenerates Table 5: miss-handler cycle breakdown and break-even."""

from benchmarks.conftest import run_once
from repro.experiments.table5 import render, run_table5


def test_table5(benchmark, budget, save_result):
    result = run_once(benchmark, run_table5, budget)
    save_result("table5", render(result))
    assert result.tapeworm_cycles_per_miss == 246
    assert 2.5 < result.break_even_hits_per_miss < 6  # paper: ~4
    # the five routines of Table 5, summing to the total
    rows = result.breakdown.rows()
    assert len(rows) == 5
    assert abs(sum(c for _, c in rows) - 246) <= 3
