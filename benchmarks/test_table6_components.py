"""Regenerates Table 6: per-component miss contributions.

Paper shapes: the servers and kernel dominate total misses for every
workload except xlisp; SPEC's eqntott/espresso barely miss at all;
interference makes the shared-cache total exceed the dedicated sum; the
trace column matches the user column for single-task workloads and is
blank for the multi-task ones.
"""

from benchmarks.conftest import run_once
from repro.experiments.table6 import SINGLE_TASK, render, run_table6


def test_table6(benchmark, budget, save_result):
    result = run_once(benchmark, run_table6, budget)
    save_result("table6", render(result))

    by_name = {row.workload: row for row in result.rows}

    # interference: shared total exceeds the dedicated sum
    for row in result.rows:
        assert row.interference >= 0, row.workload

    # system components dominate except for xlisp (and sdet/kenbus whose
    # cold fork trees push user misses up, as in the paper's Table 6)
    for name in ("eqntott", "espresso", "jpeg_play", "ousterhout"):
        row = by_name[name]
        assert row.servers + row.kernel > row.user, name
    assert by_name["xlisp"].user > by_name["xlisp"].servers + by_name["xlisp"].kernel

    # SPEC92 workloads miss least overall
    spec_total = by_name["eqntott"].all_activity + by_name["espresso"].all_activity
    assert spec_total < by_name["mpeg_play"].all_activity

    # trace validation column: present and near the user column for
    # single-task workloads, absent for multi-task ones
    for name in SINGLE_TASK:
        row = by_name[name]
        assert row.from_traces is not None
        if row.user > 500:  # enough signal to compare
            assert abs(row.from_traces - row.user) / row.user < 0.8
    for name in ("ousterhout", "sdet", "kenbus"):
        assert by_name[name].from_traces is None
