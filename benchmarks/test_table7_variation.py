"""Regenerates Table 7: total measurement variation.

Paper shape: with a physically-indexed 16 KB cache and 1/8 sampling,
trial-to-trial standard deviations are large — 7% to 76% of the mean.
"""

from benchmarks.conftest import run_once
from repro.experiments.table7 import render, run_table7


def test_table7(benchmark, budget, save_result, farm):
    result = run_once(benchmark, run_table7, budget, farm=farm)
    save_result("table7", render(result))

    pcts = {name: stats.stdev_pct for name, stats in result.stats.items()}
    # every workload varies; some vary a lot
    assert all(pct > 0 for pct in pcts.values())
    assert max(pcts.values()) > 10
    # spread spans an order of magnitude across workloads, as in the paper
    assert max(pcts.values()) > 3 * min(pcts.values())
