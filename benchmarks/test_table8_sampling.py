"""Regenerates Table 8: sampling-only variation (espresso).

Paper shape: with page allocation removed (virtual indexing), unsampled
runs have exactly zero variance while 1/8-sampled runs scatter around
the unsampled value.
"""

from benchmarks.conftest import run_once
from repro.experiments.table8 import render, run_table8


def test_table8(benchmark, budget, save_result, farm):
    result = run_once(benchmark, run_table8, budget, farm=farm)
    save_result("table8", render(result))

    for size_kb, stats in result.unsampled.items():
        assert stats.stdev == 0.0, f"unsampled variance at {size_kb}K"
    assert any(stats.stdev > 0 for stats in result.sampled.values())
    # sampled estimates track the unsampled truth
    for size_kb in result.sampled:
        truth = result.unsampled[size_kb].mean
        if truth > 200:
            assert abs(result.sampled[size_kb].mean - truth) / truth < 0.5
