"""Regenerates Table 8: sampling-only variation (espresso).

Paper shape: with page allocation removed (virtual indexing), unsampled
runs have exactly zero variance while 1/8-sampled runs scatter around
the unsampled value.

Also validates the interval-sampling path at the same budget: the
sampled estimate's 95% CI must bracket the exhaustive full-stream value
at default sampling parameters.
"""

import statistics

from benchmarks.conftest import run_once
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.experiments.table7 import default_interval_refs
from repro.experiments.table8 import render, run_table8
from repro.harness.runner import RunOptions
from repro.sampling import build_plan, profile_workload, run_sampled_trials
from repro.sampling.runner import measure_interval
from repro.streams import StreamSession, StreamStore
from repro.streams.session import enabled as streams_enabled
from repro.workloads.registry import get_workload


def test_table8(benchmark, budget, save_result, farm):
    result = run_once(benchmark, run_table8, budget, farm=farm)
    save_result("table8", render(result))

    for size_kb, stats in result.unsampled.items():
        assert stats.stdev == 0.0, f"unsampled variance at {size_kb}K"
    assert any(stats.stdev > 0 for stats in result.sampled.values())
    # sampled estimates track the unsampled truth
    for size_kb in result.sampled:
        truth = result.unsampled[size_kb].mean
        if truth > 200:
            assert abs(result.sampled[size_kb].mean - truth) / truth < 0.5


def test_interval_sampled_ci_brackets_exact(benchmark, budget, tmp_path):
    """Interval sampling at defaults: the reported CI contains the
    exhaustive (every interval simulated) full-stream mean."""
    seed = 100
    n_trials = 3
    total_refs = budget_refs(budget)
    spec = get_workload("espresso")
    tw_config = TapewormConfig(
        cache=CacheConfig(size_bytes=16 * 1024), sampling=8,
        sampling_seed=seed,
    )
    options = RunOptions(total_refs=total_refs, trial_seed=seed)
    interval_refs = default_interval_refs(total_refs, options.chunk_refs)

    def _run():
        with streams_enabled(
            StreamSession(store=StreamStore(tmp_path / "streams"))
        ):
            profile = profile_workload(spec, total_refs, interval_refs)
            plan = build_plan(profile, seed=seed)  # default phase knobs
            result = run_sampled_trials(
                spec, tw_config, options, plan,
                n_trials=n_trials, base_seed=seed, warm_seed=seed,
            )
            truth = statistics.mean(
                sum(
                    measure_interval(
                        spec, tw_config, options, plan, interval,
                        trial_seed=seed + trial, warm_seed=seed,
                    )["misses"]
                    for interval in range(plan.n_intervals)
                )
                for trial in range(n_trials)
            )
            return result, truth

    result, truth = run_once(benchmark, _run)
    estimate = result.estimates["misses"]
    assert estimate.brackets(truth), (
        f"exact {truth:.1f} outside "
        f"[{estimate.ci_low:.1f}, {estimate.ci_high:.1f}]"
    )
    assert not estimate.exact
    assert result.refs_simulated < result.exact_refs
