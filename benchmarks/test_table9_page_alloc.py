"""Regenerates Table 9: page-allocation variation (mpeg_play).

Paper shape: virtual indexing shows zero variance at every size;
physical indexing shows zero at 4 KB (pages overlap) and nonzero above,
with relative variance peaking near the workload's text size.
"""

from benchmarks.conftest import run_once
from repro.experiments.table9 import render, run_table9


def test_table9(benchmark, budget, save_result, farm):
    result = run_once(benchmark, run_table9, budget, farm=farm)
    save_result("table9", render(result))

    for size_kb, stats in result.virtual.items():
        assert stats.stdev == 0.0, f"virtual variance at {size_kb}K"
    assert result.physical[4].stdev == 0.0  # all pages overlap at 4 KB
    above_page = [
        result.physical[size].stdev for size in result.physical if size > 4
    ]
    assert any(s > 0 for s in above_page)
