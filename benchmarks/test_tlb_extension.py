"""Extension bench: software-managed TLB studies ([Nagle93] flavor).

Shapes: misses fall (weakly) with TLB size; superpages trade page-size
coverage for entries; the fork-heavy OS workload (sdet) takes more TLB
misses than the single-task one at equal geometry.
"""

from benchmarks.conftest import run_once
from repro.experiments.tlb_extension import (
    PAGE_KB,
    TLB_SIZES,
    render,
    run_tlb_extension,
)


def test_tlb_extension(benchmark, budget, save_result):
    result = run_once(benchmark, run_tlb_extension, budget)
    save_result("tlb_extension", render(result))

    for workload in ("xlisp", "sdet"):
        # monotone (weakly) in entries at the base page size
        series = [
            result.point(workload, n, 4).misses for n in TLB_SIZES
        ]
        assert all(a >= b for a, b in zip(series, series[1:]))
        # superpages reduce misses at fixed entries
        small_pages = result.point(workload, 32, 4).misses
        big_pages = result.point(workload, 32, 64).misses
        assert big_pages < small_pages * 0.6
    # fork/exec churn keeps the OS-intensive workload missing even at
    # large TLBs (its tasks never live long enough to warm one)
    assert result.point("sdet", 128, 4).misses > 100
