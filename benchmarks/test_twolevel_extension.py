"""Extension bench: trap-driven two-level cache simulation.

Section 3.2 claims tw_replace extends to "split, unified or multi-level
caches."  The two-level driver traps on L1 absence and probes L2 in
software, so both levels' miss counts come from traps alone.  Shapes:
the hierarchy's L1 misses equal a lone L1's misses (same front end);
L2 filters most of them; global (L2) miss ratio beats either single
cache of equal L1 size.
"""

from benchmarks.conftest import run_once
from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload


def _sweep(budget):
    spec = get_workload("mpeg_play")
    options = RunOptions(
        total_refs=budget_refs(budget),
        trial_seed=3,
        simulate=frozenset({Component.USER}),
        tick_cycles=10**12,  # isolate the structures from dilation
    )
    l1 = CacheConfig(size_bytes=2048)
    single = run_trap_driven(spec, TapewormConfig(cache=l1), options)
    two_level = run_trap_driven(
        spec,
        TapewormConfig(
            structure="two_level",
            cache=l1,
            l2=CacheConfig(size_bytes=32 * 1024),
        ),
        options,
    )
    return single, two_level


def test_twolevel_extension(benchmark, budget, save_result):
    single, two_level = run_once(benchmark, _sweep, budget)
    l1_misses = two_level.stats.total_misses
    l2_misses = two_level.stats.l2_misses
    rows = [
        ["single 2K", single.stats.total_misses, "-"],
        ["2K + 32K L2", l1_misses, l2_misses],
    ]
    save_result(
        "twolevel_extension",
        format_table(
            ["Structure", "L1 misses", "L2 misses"],
            rows,
            title=(
                "Extension: trap-driven two-level simulation "
                "(mpeg_play user task)"
            ),
        ),
    )
    # identical front end: the hierarchy's L1 misses match the lone L1's
    assert l1_misses == single.stats.total_misses
    # the L2 filters the bulk of them
    assert 0 < l2_misses < l1_misses / 2
