#!/usr/bin/env python
"""The perf-trend watchdog: keep the benchmark story from rotting.

``benchmarks/results/BENCH_*.json`` holds the perf envelopes committed
by past PRs (the PR 3 kernel speedups, the PR 5/6 stream and sampling
frontiers, the PR 8 pass-pipeline dispatch envelope).  Those numbers back claims in the docs — and nothing until
now re-read them.  This script:

* loads every ``BENCH_*.json`` under the results directory (plus any
  extra files passed on the command line, e.g. a fresh CI run),
* normalizes each record to one flat schema —
  ``(suite, record, budget, metric) -> [snapshots...]`` — tolerating
  both the schema-1 envelope and bare record lists,
* renders a per-metric trajectory table (first, best, latest), and
* with ``--check-regressions`` exits non-zero if any *gated* metric's
  latest snapshot has regressed more than ``--threshold`` percent below
  the best value ever recorded for its group.

Gated metrics are the machine-relative ratios (``results.speedup`` and
friends, selected by ``--gate`` glob patterns): absolute throughputs
vary with the host, but a kernel that used to beat its baseline 30x and
now manages 10x has rotted no matter the machine.  Groups are keyed by
budget too, so a tiny-budget CI run is never compared against a
committed quick-budget record.

Run it::

    python benchmarks/trend.py                         # table
    python benchmarks/trend.py --check-regressions     # CI gate
    python benchmarks/trend.py --json                  # machine output

Stdlib-only on purpose — CI can invoke it before the package
under ``src/`` is importable.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path

#: default location of the committed benchmark envelopes
DEFAULT_RESULTS_DIR = Path(__file__).parent / "results"

#: metric-name patterns gated by --check-regressions: machine-relative
#: ratios only, never absolute throughput
DEFAULT_GATES = ("results.speedup",)

#: allowed regression of a gated metric vs its best snapshot, percent
DEFAULT_THRESHOLD_PCT = 25.0


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_envelope(path: Path) -> dict:
    """One BENCH file as ``{suite, budget, records}``, schema-checked
    loosely: unknown layouts raise ValueError with the reason."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path.name}: unreadable ({exc})") from exc
    if isinstance(payload, list):  # bare record list: normalize up
        payload = {"suite": path.stem, "budget": "unknown", "records": payload}
    if not isinstance(payload, dict):
        raise ValueError(f"{path.name}: not a JSON object")
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise ValueError(f"{path.name}: no records array")
    for record in records:
        if not isinstance(record, dict) or "name" not in record:
            raise ValueError(f"{path.name}: malformed record {record!r}")
    return {
        "suite": str(payload.get("suite", path.stem)),
        "budget": str(payload.get("budget", "unknown")),
        "records": records,
    }


def flatten_record(record: dict) -> dict[str, float]:
    """Numeric leaves of one record as ``section.metric`` -> value."""
    flat: dict[str, float] = {}
    for section in ("results", "metrics"):
        values = record.get(section)
        if not isinstance(values, dict):
            continue
        for name, value in values.items():
            if _is_number(value):
                flat[f"{section}.{name}"] = float(value)
    if _is_number(record.get("wall_clock_secs")):
        flat["wall_clock_secs"] = float(record["wall_clock_secs"])
    return flat


def collect(paths: list[Path]) -> tuple[dict, list[str]]:
    """All snapshots, grouped: ``(suite, record, budget, metric) ->
    [{value, created_unix, source}, ...]`` plus any load problems."""
    groups: dict[tuple[str, str, str, str], list[dict]] = {}
    problems: list[str] = []
    for path in paths:
        try:
            envelope = load_envelope(path)
        except ValueError as exc:
            problems.append(str(exc))
            continue
        for record in envelope["records"]:
            created = record.get("created_unix")
            created = float(created) if _is_number(created) else 0.0
            for metric, value in flatten_record(record).items():
                key = (
                    envelope["suite"],
                    str(record["name"]),
                    envelope["budget"],
                    metric,
                )
                groups.setdefault(key, []).append(
                    {
                        "value": value,
                        "created_unix": created,
                        "source": path.name,
                    }
                )
    for snapshots in groups.values():
        snapshots.sort(key=lambda s: (s["created_unix"], s["source"]))
    return groups, problems


def is_gated(metric: str, gates: tuple[str, ...]) -> bool:
    return any(fnmatch.fnmatch(metric, pattern) for pattern in gates)


def check_regressions(
    groups: dict, gates: tuple[str, ...], threshold_pct: float
) -> list[dict]:
    """Gated groups whose latest snapshot sits more than
    ``threshold_pct`` percent below the group's best value."""
    failures = []
    for (suite, name, budget, metric), snapshots in sorted(groups.items()):
        if not is_gated(metric, gates):
            continue
        best = max(s["value"] for s in snapshots)
        latest = snapshots[-1]["value"]
        if best <= 0:
            continue
        regression_pct = (best - latest) / best * 100.0
        if regression_pct > threshold_pct:
            failures.append(
                {
                    "suite": suite,
                    "record": name,
                    "budget": budget,
                    "metric": metric,
                    "best": best,
                    "latest": latest,
                    "regression_pct": round(regression_pct, 2),
                    "source": snapshots[-1]["source"],
                }
            )
    return failures


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_table(
    groups: dict, gates: tuple[str, ...], only_gated: bool = False
) -> str:
    """The trajectory table, one row per (suite, record, budget, metric)."""
    header = ("suite", "record", "budget", "metric", "n", "first", "best",
              "latest", "gated")
    rows = [header]
    for (suite, name, budget, metric), snapshots in sorted(groups.items()):
        gated = is_gated(metric, gates)
        if only_gated and not gated:
            continue
        values = [s["value"] for s in snapshots]
        rows.append(
            (
                suite, name, budget, metric, str(len(values)),
                _format(values[0]), _format(max(values)),
                _format(values[-1]), "yes" if gated else "",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="perf-trend watchdog over benchmarks/results/BENCH_*.json"
    )
    parser.add_argument(
        "extra", nargs="*", type=Path,
        help="additional BENCH envelope files (e.g. a fresh CI run)",
    )
    parser.add_argument(
        "--results-dir", type=Path, default=DEFAULT_RESULTS_DIR,
        help="directory scanned for BENCH_*.json (default: %(default)s)",
    )
    parser.add_argument(
        "--check-regressions", action="store_true",
        help="exit 1 if any gated metric regressed past the threshold",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
        metavar="PCT",
        help="allowed regression vs the best snapshot, percent "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--gate", action="append", default=None, metavar="PATTERN",
        help="glob pattern of gated metric names "
        f"(repeatable; default: {', '.join(DEFAULT_GATES)})",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the normalized groups and verdict as JSON",
    )
    args = parser.parse_args(argv)

    paths = sorted(args.results_dir.glob("BENCH_*.json")) + list(args.extra)
    if not paths:
        print(f"no BENCH_*.json under {args.results_dir}", file=sys.stderr)
        return 2
    gates = tuple(args.gate) if args.gate else DEFAULT_GATES
    groups, problems = collect(paths)
    # a missing or partially-written envelope (e.g. CI killed mid-dump)
    # must not take the watchdog down with it: warn, skip the file, and
    # keep judging whatever did load
    for problem in problems:
        print(f"warning: {problem} — skipped", file=sys.stderr)
    if not groups:
        print(
            "error: no numeric metrics found in any readable file",
            file=sys.stderr,
        )
        return 2

    failures = check_regressions(groups, gates, args.threshold)

    if args.as_json:
        print(
            json.dumps(
                {
                    "files": [path.name for path in paths],
                    "groups": [
                        {
                            "suite": suite, "record": name,
                            "budget": budget, "metric": metric,
                            "gated": is_gated(metric, gates),
                            "snapshots": snapshots,
                        }
                        for (suite, name, budget, metric), snapshots
                        in sorted(groups.items())
                    ],
                    "threshold_pct": args.threshold,
                    "skipped": problems,
                    "failures": failures,
                },
                indent=2,
            )
        )
    else:
        print(render_table(groups, gates))
        print()
        gated_count = sum(1 for key in groups if is_gated(key[3], gates))
        print(
            f"{len(groups)} metric group(s) across {len(paths)} file(s); "
            f"{gated_count} gated (threshold {args.threshold:g}%)"
            + (f"; {len(problems)} file(s) skipped" if problems else "")
        )
        for failure in failures:
            print(
                f"REGRESSION: {failure['suite']}/{failure['record']} "
                f"[{failure['budget']}] {failure['metric']}: "
                f"best {_format(failure['best'])} -> latest "
                f"{_format(failure['latest'])} "
                f"({failure['regression_pct']:g}% worse, "
                f"from {failure['source']})"
            )
        if not failures:
            print("no gated regressions")

    if args.check_regressions and failures:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
