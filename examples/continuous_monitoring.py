"""Continuous monitoring of a live session (the paper's future work).

Section 5: because Tapeworm slowdowns "can be made imperceptible to the
user", simulations can run over an actual user's session, watching for
interesting cases batch simulations would miss, and even feeding
"real-time hardware and software tuning."

This example approximates a user session by running three workloads
back-to-back on ONE booted system — an editor-ish task (ousterhout),
then video (mpeg_play), then a compile burst (sdet) — with Tapeworm
sampling 1/32 of a 32 KB cache so the monitoring overhead stays near
zero.  A sliding window reports the evolving miss ratio, and a toy
"tuner" flags the moments a larger cache would have paid off.

Run:  python examples/continuous_monitoring.py
"""

from repro import CacheConfig, Component, RunOptions, TapewormConfig, get_workload
from repro.core.tapeworm import Tapeworm
from repro.harness.runner import RunOptions, _WorkloadExecution, _boot_kernel

SESSION = ("ousterhout", "mpeg_play", "sdet")
WINDOW_REFS = 60_000
SAMPLING = 32


def main() -> None:
    print(
        f"monitoring a session of {', '.join(SESSION)} with 1/{SAMPLING} "
        "sampling...\n"
    )
    header = f"{'window':<10}{'workload':<12}{'miss ratio':<12}{'advice'}"
    print(header)
    print("-" * len(header))

    window = 0
    for name in SESSION:
        spec = get_workload(name)
        options = RunOptions(
            total_refs=WINDOW_REFS * 3, trial_seed=7, quantum_refs=4096
        )
        kernel = _boot_kernel(options)
        tapeworm = Tapeworm(
            kernel,
            TapewormConfig(
                cache=CacheConfig(size_bytes=32 * 1024),
                sampling=SAMPLING,
                sampling_seed=7,
            ),
        )
        tapeworm.install()
        execution = _WorkloadExecution(spec, kernel, options)
        execution.apply_attributes()

        last_misses = 0
        refs_seen = 0

        def report_window() -> None:
            nonlocal last_misses, window
            cpu = kernel.machine.cpu
            total_refs = sum(cpu.refs_by_component.values())
            misses = tapeworm.estimated_total_misses()
            delta_refs = total_refs - report_window.last_refs
            delta_misses = misses - last_misses
            ratio = delta_misses / delta_refs if delta_refs else 0.0
            advice = "cache is comfortable"
            if ratio > 0.10:
                advice = "HOT: a larger/assoc cache would pay off here"
            elif ratio > 0.05:
                advice = "warm"
            window += 1
            print(f"{window:<10}{name:<12}{ratio:<12.4f}{advice}")
            last_misses = misses
            report_window.last_refs = total_refs

        report_window.last_refs = 0

        # run the workload, reporting once per window of references
        original_tap = execution.chunk_tap

        def tap(tid, component, vas):
            nonlocal refs_seen
            refs_seen += len(vas)
            if refs_seen >= WINDOW_REFS:
                refs_seen = 0
                report_window()

        execution.chunk_tap = tap
        execution.run()
        report_window()
        overhead = tapeworm.overhead_cycles
        base = sum(kernel.machine.cpu.cycles_by_component.values())
        print(
            f"{'':<10}{name:<12}(monitoring slowdown this segment: "
            f"{overhead / base:.3f}x)"
        )

    print(
        "\nSampling keeps the monitoring overhead well below an "
        "unsampled run's —\nincrease the degree further (1/64, 1/128) "
        "to reach the regime the paper\ncalls 'imperceptible to the "
        "user', at the variance cost of Table 8."
    )


if __name__ == "__main__":
    main()
