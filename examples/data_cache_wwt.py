"""Data-cache simulation: blocked on the DECstation, fine on a WWT-class host.

Section 4.4's subtlest limitation, demonstrated end to end.  On the
DECstation 5000/200 the D-cache does not allocate on write: a store to
a location Tapeworm trapped simply *overwrites* it, regenerating good
ECC — the trap evaporates without the miss handler ever running, and
the simulation silently loses misses.  On an allocate-on-write host
(like the Wisconsin Wind Tunnel's CM-5 nodes [Reinhardt93]) stores trap
like loads and data caches simulate correctly.

This script runs the same load/store stream on both machine models and
prints what each simulation *thinks* happened, plus the install-time
guard that stops you from trying on the wrong machine.

Run:  python examples/data_cache_wwt.py
"""

import numpy as np

from repro import CacheConfig, Component, TapewormConfig
from repro.core.flexibility import StructureKind
from repro.core.tapeworm import Tapeworm
from repro.errors import UnsupportedStructure
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig

LOADS = np.arange(0, 2048, 16, dtype=np.int64)
STORES = np.arange(2048, 4096, 16, dtype=np.int64)


def run_on(allocate_on_write: bool) -> None:
    label = "WWT-class (allocate-on-write)" if allocate_on_write else "DECstation 5000/200"
    machine = Machine(
        MachineConfig(
            memory_bytes=8 * 1024 * 1024,
            n_vpages=512,
            allocate_on_write=allocate_on_write,
        )
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    config = TapewormConfig(
        cache=CacheConfig(size_bytes=8192),
        kind=StructureKind.DATA_CACHE,
    )
    tapeworm = Tapeworm(kernel, config)
    try:
        tapeworm.install()
    except UnsupportedStructure as exc:
        print(f"{label}:\n  install refused: {exc}\n")
        print("  ...forcing an instruction-cache install to show the damage:")
        tapeworm = Tapeworm(
            kernel,
            TapewormConfig(cache=CacheConfig(size_bytes=8192)),
        )
        tapeworm.install()

    task = kernel.spawn("db_engine", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)

    vas = np.concatenate([LOADS, STORES])
    writes = np.array([False] * len(LOADS) + [True] * len(STORES))
    result = kernel.run_chunk(task, vas, writes=writes)

    true_misses = len(LOADS) + len(STORES)  # every line is cold
    print(f"{label}:")
    print(f"  true cold misses        : {true_misses}")
    print(f"  misses Tapeworm counted : {tapeworm.stats.total_misses}")
    print(f"  traps silently erased   : {result.silent_clears}")
    lost = true_misses - tapeworm.stats.total_misses
    if lost:
        print(f"  -> {lost} store misses vanished: D-cache results would be garbage\n")
    else:
        print("  -> exact: data caches are simulable on this host\n")


def main() -> None:
    run_on(allocate_on_write=False)
    run_on(allocate_on_write=True)


if __name__ == "__main__":
    main()
