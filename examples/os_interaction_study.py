"""Where do the misses come from? An OS-interaction study.

The paper's motivation: memory systems tuned on SPEC-style, single-task
workloads mispredict badly for OS-intensive ones, because trace tools
like Pixie see only a single user task.  This example measures sdet —
281 forked tasks, ~80% of time in the kernel and BSD server — in
dedicated caches per component and in one shared cache, then shows what
a user-only (Pixie-style) view would have concluded.

Run:  python examples/os_interaction_study.py
"""

from repro import (
    CacheConfig,
    Component,
    RunOptions,
    TapewormConfig,
    get_workload,
    run_trap_driven,
)

WORKLOAD = "sdet"
CACHE_KB = 4
TOTAL_REFS = 250_000


def measure(simulate: frozenset[Component]) -> tuple[int, int]:
    """Run sdet with only ``simulate`` components registered."""
    spec = get_workload(WORKLOAD)
    report = run_trap_driven(
        spec,
        TapewormConfig(cache=CacheConfig(size_bytes=CACHE_KB * 1024)),
        RunOptions(total_refs=TOTAL_REFS, trial_seed=2, simulate=simulate),
    )
    return report.stats.total_misses, report.total_refs


def main() -> None:
    print(f"{WORKLOAD} in a dedicated {CACHE_KB} KB I-cache per component:\n")
    dedicated = {}
    for label, components in (
        ("user tasks", {Component.USER}),
        ("servers", {Component.BSD_SERVER, Component.X_SERVER}),
        ("kernel", {Component.KERNEL}),
    ):
        misses, total_refs = measure(frozenset(components))
        dedicated[label] = misses
        print(f"  {label:<12} {misses:>8,} misses")

    all_misses, total_refs = measure(frozenset(Component))
    interference = all_misses - sum(dedicated.values())
    print(f"\n  all activity {all_misses:>8,} misses (shared cache)")
    print(f"  interference {interference:>8,} misses (sharing penalty)")

    user_only_ratio = dedicated["user tasks"] / total_refs
    true_ratio = all_misses / total_refs
    print(
        f"\nA Pixie-style user-only simulation would estimate a miss "
        f"ratio of {user_only_ratio:.3f};\nthe complete system actually "
        f"misses at {true_ratio:.3f} — "
        f"{true_ratio / max(user_only_ratio, 1e-9):.1f}x higher."
    )


if __name__ == "__main__":
    main()
