"""Could Tapeworm run on your machine?  The Table 12 assessment.

Tapeworm's machine-dependent layer needs only a privileged operation
that traps on references to chosen memory locations.  This example
applies the paper's feasibility reasoning to the 1994 survey matrix and
to a hypothetical processor you can edit, and shows how the line-size
restriction follows from the trap granularity.

Run:  python examples/port_feasibility.py
"""

from repro import CacheConfig, TapewormConfig, format_table
from repro.errors import UnsupportedStructure
from repro.machine.machine import Machine
from repro.machine.ops import PROCESSORS, assess_port
from repro._types import TrapMechanism
from repro.core.primitives import TrapPrimitives


def main() -> None:
    rows = []
    for cpu in PROCESSORS:
        assessment = assess_port(cpu)
        rows.append(
            [
                cpu,
                ", ".join(m.value for m in assessment.mechanisms) or "-",
                "yes" if assessment.can_simulate_caches else "no",
                "yes" if assessment.can_simulate_tlbs else "no",
            ]
        )
    print(
        format_table(
            ["Processor", "Usable mechanisms", "Cache sim", "TLB sim"],
            rows,
            title="Port feasibility across the Table 12 survey",
        )
    )

    # the DECstation's granularity restriction, demonstrated live
    machine = Machine()
    primitives = TrapPrimitives(machine, TrapMechanism.ECC)
    print("\nECC granularity on the DECstation model:")
    primitives.tw_set_trap(0x1000, 16)
    print("  tw_set_trap(0x1000, 16)  -> ok (one 4-word granule)")
    try:
        primitives.tw_set_trap(0x2000, 8)
    except UnsupportedStructure as exc:
        print(f"  tw_set_trap(0x2000, 8)   -> rejected: {exc}")
    print(
        "\n...which is why simulated line sizes must be multiples of 4 "
        "words\non this machine (paper section 4.4)."
    )


if __name__ == "__main__":
    main()
