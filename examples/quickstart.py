"""Quickstart: simulate an I-cache under a workload, trap-driven.

Boots the simulated DECstation, installs Tapeworm for a 4 KB
direct-mapped instruction cache, runs the mpeg_play workload model with
every component included (user task, X and BSD servers, kernel), and
prints the miss breakdown and the slowdown Tapeworm imposed.

Run:  python examples/quickstart.py
"""

from repro import (
    CacheConfig,
    Component,
    RunOptions,
    TapewormConfig,
    get_workload,
    run_trap_driven,
)


def main() -> None:
    spec = get_workload("mpeg_play")
    config = TapewormConfig(cache=CacheConfig(size_bytes=4096))
    options = RunOptions(total_refs=300_000, trial_seed=1)

    print(f"Simulating {config.cache.describe()} I-cache under {spec.name}...")
    report = run_trap_driven(spec, config, options)

    print(f"\nreferences executed : {report.total_refs:,}")
    print(f"simulated misses    : {report.stats.total_misses:,}")
    for component in Component:
        misses = report.stats.misses[component]
        refs = report.refs[component]
        print(
            f"  {component.value:<12} {misses:>8,} misses over "
            f"{refs:>9,} refs (local ratio "
            f"{report.local_miss_ratio(component):.4f})"
        )
    print(f"\nkernel traps taken  : {report.traps:,}")
    print(f"overhead cycles     : {report.overhead_cycles:,}")
    print(f"slowdown            : {report.slowdown:.2f}x")
    print(
        f"\nextrapolated to the paper's full-length run: "
        f"{report.misses_paper_scale() / 1e6:.1f}M misses"
    )


if __name__ == "__main__":
    main()
