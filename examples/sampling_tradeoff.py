"""Set sampling: trading measurement variance for simulation speed.

Tapeworm implements set sampling *in hardware for free*: registration
simply skips traps outside the sampled sets, so slowdown falls in direct
proportion to the sampling fraction (Figure 3) while run-to-run variance
grows (Tables 7/8).  This example sweeps the sampling degree on
mpeg_play and reports both sides of the trade, plus what the same
sampling costs a trace-driven simulator (a software filtering pass over
every address).

Run:  python examples/sampling_tradeoff.py
"""

import statistics

from repro import (
    CacheConfig,
    RunOptions,
    TapewormConfig,
    format_table,
    get_workload,
    run_trace_driven,
    run_trap_driven,
)

WORKLOAD = "mpeg_play"
CACHE = CacheConfig(size_bytes=4096)
TOTAL_REFS = 200_000
TRIALS = 4


def main() -> None:
    spec = get_workload(WORKLOAD)
    rows = []
    for denominator in (1, 2, 4, 8, 16):
        slowdowns, estimates = [], []
        for trial in range(TRIALS):
            report = run_trap_driven(
                spec,
                TapewormConfig(
                    cache=CACHE,
                    sampling=denominator,
                    sampling_seed=trial,
                ),
                RunOptions(total_refs=TOTAL_REFS, trial_seed=trial),
            )
            slowdowns.append(report.slowdown)
            estimates.append(report.estimated_misses)
        mean = statistics.mean(estimates)
        spread = (
            100 * statistics.stdev(estimates) / mean if TRIALS > 1 else 0.0
        )
        rows.append(
            [
                "none" if denominator == 1 else f"1/{denominator}",
                f"{statistics.mean(slowdowns):.2f}x",
                f"{mean:,.0f}",
                f"{spread:.1f}%",
            ]
        )
    print(
        format_table(
            ["Sampling", "Slowdown", "Est. misses", "Stdev"],
            rows,
            title=f"{WORKLOAD}: Tapeworm sampling, {TRIALS} trials each",
        )
    )

    # contrast: trace-driven sampling still pays per-address costs
    full = run_trace_driven(spec, CACHE, 100_000)
    sampled = run_trace_driven(spec, CACHE, 100_000, sampling=8)
    print(
        f"\nTrace-driven comparison: Cache2000 slows the system "
        f"{full.slowdown:.1f}x unsampled and still {sampled.slowdown:.1f}x "
        f"with 1/8 sampling —\ntrace generation and filtering touch every "
        f"address, so sampling buys little there."
    )


if __name__ == "__main__":
    main()
