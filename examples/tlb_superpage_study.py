"""TLB simulation with variable page sizes (the Tapeworm I lineage).

The first-generation Tapeworm simulated software-managed TLBs by
intercepting the R2000's TLB refill traps; Tapeworm II keeps that
capability through page-valid-bit traps.  Because the simulated TLB is a
software structure, it can model configurations the hardware lacks —
including the superpages Talluri's companion ASPLOS'94 paper studies.

This example runs xlisp (whose interpreter heap spans many data pages)
with instruction+data reference streams, sweeping simulated TLB sizes
and page sizes.

Run:  python examples/tlb_superpage_study.py
"""

from repro import (
    Component,
    RunOptions,
    TapewormConfig,
    TLBConfig,
    format_table,
    get_workload,
    run_trap_driven,
)

WORKLOAD = "xlisp"
TOTAL_REFS = 150_000


def measure(n_entries: int, page_kb: int) -> tuple[int, float]:
    spec = get_workload(WORKLOAD)
    config = TapewormConfig(
        structure="tlb",
        tlb=TLBConfig(n_entries=n_entries, page_bytes=page_kb * 1024),
    )
    options = RunOptions(
        total_refs=TOTAL_REFS,
        trial_seed=4,
        include_data_refs=True,  # TLB misses are mostly data-side
    )
    report = run_trap_driven(spec, config, options)
    return report.stats.total_misses, report.slowdown


def main() -> None:
    rows = []
    for n_entries in (16, 32, 64, 128):
        row = [str(n_entries)]
        for page_kb in (4, 16, 64):
            misses, _ = measure(n_entries, page_kb)
            row.append(f"{misses:,}")
        rows.append(row)
    print(
        format_table(
            ["TLB entries", "4K pages", "16K pages", "64K pages"],
            rows,
            title=f"{WORKLOAD}: simulated TLB misses "
            f"({TOTAL_REFS:,} mixed I+D references)",
        )
    )
    print(
        "\nSuperpages substitute for entries: a small TLB with 64 KB\n"
        "pages covers as much address space as a much larger 4 KB-page\n"
        "TLB — the trade Talluri & Hill quantify in this same "
        "proceedings."
    )


if __name__ == "__main__":
    main()
