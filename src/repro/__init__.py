"""repro — a reproduction of "Trap-driven Simulation with Tapeworm II"
(Uhlig, Nagle, Mudge & Sechrest, ASPLOS 1994).

Tapeworm II evaluates caches and TLBs by *trapping* instead of tracing:
it lives in the OS kernel, marks every memory location absent from a
simulated structure with a hardware trap (ECC check bits or page valid
bits), and lets the machine run at full speed between simulated misses.
This package reproduces the system and its entire evaluation on a
simulated DECstation 5000/200 substrate (see DESIGN.md for the
substitution argument).

Quick start::

    from repro import (
        CacheConfig, TapewormConfig, RunOptions,
        get_workload, run_trap_driven,
    )

    spec = get_workload("mpeg_play")
    config = TapewormConfig(cache=CacheConfig(size_bytes=4096))
    report = run_trap_driven(spec, config, RunOptions(total_refs=500_000))
    print(report.stats.total_misses, report.slowdown)
"""

from repro._types import Component, Indexing, TrapMechanism
from repro.caches import (
    CacheConfig,
    CacheStats,
    GridConfig,
    GridSweepReport,
    GridSweepSimulator,
    SetAssociativeCache,
    SimulatedTLB,
    StackSimulator,
    TLBConfig,
    TwoLevelCache,
    run_grid_sweep,
)
from repro.core import (
    HandlerCostModel,
    SetSampler,
    Tapeworm,
    TapewormConfig,
    TrapRunReport,
)
from repro.harness import (
    Monster,
    RunOptions,
    TraceRunReport,
    TrialStats,
    format_table,
    normal_run_cycles,
    run_trace_driven,
    run_trap_driven,
    run_trials,
    run_trials_farm,
    run_warm_trials,
)
from repro.farm import Farm, FarmConfig, Job
from repro.kernel import Kernel, SyscallInterface
from repro.machine import Machine, MachineConfig
from repro.streams import (
    CompiledStream,
    StreamSession,
    StreamStore,
    StreamTransport,
    WarmupPlan,
)
from repro.telemetry import (
    EventTracer,
    MetricsRegistry,
    RunManifest,
    TelemetrySession,
)
from repro.tracing import Cache2000, PixieTracer
from repro.workloads import WORKLOAD_NAMES, get_workload

__version__ = "1.0.0"

__all__ = [
    "Component",
    "Indexing",
    "TrapMechanism",
    "CacheConfig",
    "TLBConfig",
    "CacheStats",
    "SetAssociativeCache",
    "SimulatedTLB",
    "TwoLevelCache",
    "GridConfig",
    "GridSweepReport",
    "GridSweepSimulator",
    "StackSimulator",
    "run_grid_sweep",
    "HandlerCostModel",
    "SetSampler",
    "Tapeworm",
    "TapewormConfig",
    "TrapRunReport",
    "Monster",
    "RunOptions",
    "TraceRunReport",
    "TrialStats",
    "format_table",
    "normal_run_cycles",
    "run_trap_driven",
    "run_trace_driven",
    "run_trials",
    "run_trials_farm",
    "Farm",
    "FarmConfig",
    "Job",
    "Kernel",
    "SyscallInterface",
    "Machine",
    "MachineConfig",
    "TelemetrySession",
    "MetricsRegistry",
    "EventTracer",
    "RunManifest",
    "Cache2000",
    "PixieTracer",
    "CompiledStream",
    "StreamSession",
    "StreamStore",
    "StreamTransport",
    "WarmupPlan",
    "run_warm_trials",
    "get_workload",
    "WORKLOAD_NAMES",
    "__version__",
]
