"""Shared primitive types, enums and constants used across the library.

The simulated host machine is modeled on the paper's DECstation 5000/200:
a 25 MHz MIPS R3000 with 4 KB pages, ECC-protected memory checked on
4-word (16-byte) cache-line refills, and a software-managed TLB.
"""

from __future__ import annotations

import enum

# ---------------------------------------------------------------------------
# Host machine constants (DECstation 5000/200 model)
# ---------------------------------------------------------------------------

#: Host CPU clock rate, cycles per second (25 MHz R3000).
HOST_CLOCK_HZ = 25_000_000

#: Host page size in bytes (R3000 / Ultrix / Mach 3.0 use 4 KB pages).
PAGE_SIZE = 4096

#: Bytes per machine word.
WORD_SIZE = 4

#: ECC granularity: check bits cover one 32-bit word, but the memory
#: controller only *checks* them on 4-word cache-line refills, which limits
#: trap granularity (paper section 4.4).
ECC_CHECK_GRANULE_WORDS = 4

#: Number of ECC check bits per 32-bit word (SEC-DED over 32 data bits).
ECC_CHECK_BITS = 7

#: Clock interrupt period in seconds (Ultrix/Mach tick of 100 Hz).
CLOCK_TICK_SECONDS = 0.01

#: Clock interrupt period in host cycles.
CLOCK_TICK_CYCLES = int(HOST_CLOCK_HZ * CLOCK_TICK_SECONDS)


class Component(enum.Enum):
    """Workload component, as broken out in Tables 4 and 6 of the paper.

    ``USER`` covers every task forked beneath the workload's shell;
    ``BSD_SERVER`` and ``X_SERVER`` are the system server tasks that exist
    before the workload starts; ``KERNEL`` is the Mach kernel itself.
    """

    USER = "user"
    BSD_SERVER = "bsd_server"
    X_SERVER = "x_server"
    KERNEL = "kernel"

    @property
    def is_system(self) -> bool:
        """True for the components the paper calls *system* components."""
        return self is not Component.USER


class Indexing(enum.Enum):
    """How a simulated cache indexes its sets (paper section 3.2)."""

    PHYSICAL = "physical"
    VIRTUAL = "virtual"


class WritePolicy(enum.Enum):
    """Write policies.  Trap-driven simulation is restricted to write-back
    (paper section 4.4): a write buffer cannot be modeled with traps."""

    WRITE_BACK = "write_back"


class TrapMechanism(enum.Enum):
    """Privileged operation used to implement ``tw_set_trap`` (Table 2)."""

    ECC = "ecc"
    PAGE_VALID = "page_valid"
    BREAKPOINT = "breakpoint"


#: Task id reserved for the OS kernel in ``tw_attributes`` calls (Table 1:
#: "A tid of zero signifies the kernel").
KERNEL_TID = 0
