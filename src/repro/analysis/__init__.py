"""Analytic companions to the measurements.

The paper explains Table 9's variance structure with Kessler's
probabilistic model of cache page conflicts; this package provides that
model so measured variance can be checked against theory.
"""

from repro.analysis.kessler import (
    expected_occupied_bins,
    expected_conflicting_pages,
    stdev_occupied_bins,
    relative_conflict_stdev,
    conflict_peak_cache_pages,
)

__all__ = [
    "expected_occupied_bins",
    "expected_conflicting_pages",
    "stdev_occupied_bins",
    "relative_conflict_stdev",
    "conflict_peak_cache_pages",
]
