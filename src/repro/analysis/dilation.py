"""Correcting measurements for time-dilation bias (future work, realized).

Section 4.2: "We are collecting time dilation curves for a larger set
of workloads to determine if their shape and magnitude are the same as
in Figure 4.  If so, it should be possible to adjust simulation results
to factor away this form of systematic error."

This module does that adjustment.  A dilation curve — (slowdown,
measured misses) points from runs at different sampling degrees — is
fit with the saturating-error form the paper's Figure 4 exhibits::

    misses(s) = m0 * (1 + e_max * (1 - exp(-s / s0)))

where ``m0`` is the undilated truth, ``e_max`` the saturation error,
and ``s0`` the slowdown scale of the initial rise.  Fitting is a
coarse-to-fine grid search (no scipy dependency needed), and
:func:`correct` then maps any measurement back to its zero-dilation
estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class DilationCurve:
    """A fitted dilation-error model."""

    m0: float
    e_max: float
    s0: float
    residual: float

    def predicted_misses(self, slowdown: float) -> float:
        return self.m0 * (1.0 + self.error_fraction(slowdown))

    def error_fraction(self, slowdown: float) -> float:
        """The systematic error at a given dilation, as a fraction."""
        if slowdown <= 0:
            return 0.0
        return self.e_max * (1.0 - math.exp(-slowdown / self.s0))


def fit_dilation_curve(
    points: Sequence[tuple[float, float]],
    e_max_grid: Sequence[float] = tuple(i / 100 for i in range(0, 61, 2)),
    s0_grid: Sequence[float] = (0.5, 1, 2, 3, 4, 6, 8, 12, 16, 24),
) -> DilationCurve:
    """Least-squares fit of the saturating form over a parameter grid.

    ``points`` are (slowdown, measured_misses) pairs, at least three of
    them spanning different dilations.
    """
    if len(points) < 3:
        raise ConfigError(
            f"need at least 3 (slowdown, misses) points, got {len(points)}"
        )
    best: DilationCurve | None = None
    for e_max in e_max_grid:
        for s0 in s0_grid:
            # with (e_max, s0) fixed the optimal m0 is a linear fit
            weights = [
                1.0 + e_max * (1.0 - math.exp(-s / s0)) for s, _ in points
            ]
            numerator = sum(w * m for w, (_, m) in zip(weights, points))
            denominator = sum(w * w for w in weights)
            m0 = numerator / denominator
            residual = sum(
                (m - m0 * w) ** 2 for w, (_, m) in zip(weights, points)
            )
            if best is None or residual < best.residual:
                best = DilationCurve(
                    m0=m0, e_max=e_max, s0=s0, residual=residual
                )
    assert best is not None
    return best


def correct(
    measured_misses: float, slowdown: float, curve: DilationCurve
) -> float:
    """Undilated miss estimate for one measurement.

    Divides out the fitted systematic error; measurements taken at
    different dilations then agree, which is the test of the method.
    """
    return measured_misses / (1.0 + curve.error_fraction(slowdown))
