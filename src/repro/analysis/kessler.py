"""Kessler's probabilistic model of cache page conflicts [Kessler91].

A physically-indexed cache of ``c`` page-sized bins receives a
workload's ``n`` pages at frame addresses the OS chose effectively at
random.  Pages landing in the same bin conflict.  The paper uses this
model to explain Table 9: "with random page allocation, the probability
of cache conflicts peaks when the size of the cache roughly equals the
address space size of the workload, and decreases for larger and
smaller caches."

With placement uniform and independent (the balls-in-bins model), the
number of *occupied* bins K has closed-form mean and variance via
indicator variables (see :func:`stdev_occupied_bins`), and the
*conflicting* pages are the overflow ``n - K``: every page beyond the
first in a bin must share.  Since ``n`` is fixed, the run-to-run
variance of the conflict count equals Var[K].
"""

from __future__ import annotations

import math


def _check(n_pages: int, cache_pages: int) -> None:
    if n_pages < 0:
        raise ValueError(f"n_pages must be non-negative, got {n_pages}")
    if cache_pages < 1:
        raise ValueError(f"cache_pages must be positive, got {cache_pages}")


def expected_occupied_bins(n_pages: int, cache_pages: int) -> float:
    """E[number of cache bins holding at least one page]."""
    _check(n_pages, cache_pages)
    c = cache_pages
    return c * (1.0 - (1.0 - 1.0 / c) ** n_pages)


def expected_conflicting_pages(n_pages: int, cache_pages: int) -> float:
    """E[pages that overflow their bin] = n - E[occupied bins]."""
    return n_pages - expected_occupied_bins(n_pages, cache_pages)


def stdev_occupied_bins(n_pages: int, cache_pages: int) -> float:
    """Standard deviation of the occupied-bin count.

    From the indicator decomposition K = sum_i 1[bin i occupied]:

        P(bin empty)            p1 = (1 - 1/c)^n
        P(two given bins empty) p2 = (1 - 2/c)^n
        Var[K] = c p1 (1 - p1) + c (c-1) (p2 - p1^2)
    """
    _check(n_pages, cache_pages)
    c = cache_pages
    if c == 1:
        return 0.0
    p1 = (1.0 - 1.0 / c) ** n_pages
    p2 = (1.0 - 2.0 / c) ** n_pages
    variance = c * p1 * (1.0 - p1) + c * (c - 1) * (p2 - p1 * p1)
    return math.sqrt(max(variance, 0.0))


def relative_conflict_stdev(n_pages: int, cache_pages: int) -> float:
    """Stdev of the conflict count relative to its mean (a diagnostic;
    grows without bound as conflicts become rare)."""
    mean = expected_conflicting_pages(n_pages, cache_pages)
    if mean <= 0:
        return 0.0
    # Var[conflicts] = Var[n - K] = Var[K]
    return stdev_occupied_bins(n_pages, cache_pages) / mean


def conflict_peak_cache_pages(
    n_pages: int, max_cache_pages: int = 4096
) -> int:
    """Cache size (in pages) at which conflict variance peaks.

    Run-to-run miss variance tracks the *absolute* spread of the
    conflict count: tiny caches conflict in every run (low spread),
    huge caches almost never conflict (low spread), and the spread
    peaks when the cache roughly equals the footprint — the paper's
    reading of Kessler's model against Table 9.
    """
    _check(n_pages, 1)
    best_c, best_value = 1, -1.0
    c = 1
    while c <= max_cache_pages:
        value = stdev_occupied_bins(n_pages, c)
        if value > best_value:
            best_c, best_value = c, value
        c *= 2
    return best_c
