"""Crash-consistent file writes: temp file + ``os.replace``.

The farm result cache, its stats file, and the telemetry manifest log
are all small append-only (or rewrite-on-update) stores owned by one
master process.  A plain ``open(..., "a").write(line)`` can be torn by
a crash or kill mid-write, leaving a half-line that poisons naive
readers.  These helpers make every durable write atomic at the
filesystem level: the new contents are staged in a temporary file *in
the same directory* (so the rename cannot cross filesystems), fsynced,
and swapped in with ``os.replace`` — readers observe either the old
complete file or the new complete file, never a torn tail.
"""

from __future__ import annotations

import logging
import os
import tempfile
from pathlib import Path

logger = logging.getLogger(__name__)


def _replace_with(path: Path, data: bytes) -> None:
    """Stage ``data`` next to ``path`` and atomically swap it in."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text``."""
    path = Path(path)
    _replace_with(path, text.encode("utf-8"))
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data`` (binary blobs)."""
    path = Path(path)
    _replace_with(path, data)
    return path


def atomic_append_line(path: str | Path, line: str) -> Path:
    """Atomically append one line to ``path``.

    Implemented as read + rewrite + replace, so a kill at any instant
    leaves either the previous complete log or the new complete log on
    disk — never a torn record.  O(file size) per append, which is fine
    for the small JSONL stores this library keeps (hundreds of records).
    """
    path = Path(path)
    existing = path.read_bytes() if path.exists() else b""
    if existing and not existing.endswith(b"\n"):
        # a pre-hardening torn tail: seal it so the new record starts clean
        existing += b"\n"
    _replace_with(path, existing + line.encode("utf-8") + b"\n")
    return path


def atomic_append_lines(path: str | Path, lines: list[str]) -> Path:
    """Atomically append several lines in one rewrite (one fsync)."""
    path = Path(path)
    if not lines:
        return path
    existing = path.read_bytes() if path.exists() else b""
    if existing and not existing.endswith(b"\n"):
        existing += b"\n"
    blob = "".join(line + "\n" for line in lines).encode("utf-8")
    _replace_with(path, existing + blob)
    return path


#: default size budget of a rotating ledger before it rolls over
DEFAULT_LEDGER_BUDGET_BYTES = 1_000_000


class RotatingLedger:
    """A size-budgeted append-only JSONL file that rotates instead of
    growing without bound.

    Quarantine files and incident ledgers exist to absorb *storms* —
    thousands of corrupt records or poisoned jobs arriving faster than
    anyone reads them.  Left uncapped, the storm that corrupted the
    cache also fills the disk.  When an append would push the file past
    ``max_bytes``, the current file is renamed to ``<name>.1``
    (replacing any previous generation — one generation of history is
    kept, the rest is sacrificed) and the append starts a fresh file.
    The first rotation per instance logs a warning; later ones are
    counted silently in :attr:`rotations`.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = DEFAULT_LEDGER_BUDGET_BYTES,
    ) -> None:
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.rotations = 0
        self._rotation_logged = False

    @property
    def rotated_path(self) -> Path:
        return self.path.with_name(self.path.name + ".1")

    def append(self, line: str) -> None:
        """Append one line, rotating first if the budget would burst."""
        try:
            size = self.path.stat().st_size if self.path.exists() else 0
            if size and size + len(line) + 1 > self.max_bytes:
                os.replace(self.path, self.rotated_path)
                self.rotations += 1
                if not self._rotation_logged:
                    self._rotation_logged = True
                    logger.warning(
                        "ledger %s exceeded its %d-byte budget; rotated to "
                        "%s — further rotations are counted silently",
                        self.path, self.max_bytes, self.rotated_path,
                    )
            atomic_append_line(self.path, line)
        except OSError:
            pass  # ledgers are best-effort; never crash the caller
