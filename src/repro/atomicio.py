"""Crash-consistent file writes: temp file + ``os.replace``.

The farm result cache, its stats file, and the telemetry manifest log
are all small append-only (or rewrite-on-update) stores owned by one
master process.  A plain ``open(..., "a").write(line)`` can be torn by
a crash or kill mid-write, leaving a half-line that poisons naive
readers.  These helpers make every durable write atomic at the
filesystem level: the new contents are staged in a temporary file *in
the same directory* (so the rename cannot cross filesystems), fsynced,
and swapped in with ``os.replace`` — readers observe either the old
complete file or the new complete file, never a torn tail.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def _replace_with(path: Path, data: bytes) -> None:
    """Stage ``data`` next to ``path`` and atomically swap it in."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text``."""
    path = Path(path)
    _replace_with(path, text.encode("utf-8"))
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data`` (binary blobs)."""
    path = Path(path)
    _replace_with(path, data)
    return path


def atomic_append_line(path: str | Path, line: str) -> Path:
    """Atomically append one line to ``path``.

    Implemented as read + rewrite + replace, so a kill at any instant
    leaves either the previous complete log or the new complete log on
    disk — never a torn record.  O(file size) per append, which is fine
    for the small JSONL stores this library keeps (hundreds of records).
    """
    path = Path(path)
    existing = path.read_bytes() if path.exists() else b""
    if existing and not existing.endswith(b"\n"):
        # a pre-hardening torn tail: seal it so the new record starts clean
        existing += b"\n"
    _replace_with(path, existing + line.encode("utf-8") + b"\n")
    return path
