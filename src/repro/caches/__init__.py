"""Simulated memory structures: caches, TLBs, hierarchies.

These are the *software data structures* both simulation styles maintain:
``tw_replace()`` inserts into them on every trap, and the Cache2000
analogue searches them on every trace address.  They are deliberately
independent of the driving style — the integration tests rely on the two
drivers producing identical miss counts over the same structure.
"""

from repro.caches.config import CacheConfig, GridConfig, TLBConfig
from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.caches.cache import SetAssociativeCache, MissOutcome
from repro.caches.kernels import GroupedSetKernel, supports_policy
from repro.caches.gridsweep import (
    DistanceHistogram,
    GridSweepReport,
    GridSweepSimulator,
    grid_rows,
    grid_supported,
    run_grid_sweep,
)
from repro.caches.pipeline import (
    KernelProgram,
    KernelRegistry,
    KernelRequest,
    cache_request,
    compile_kernel,
    default_registry,
    grid_request,
    scan_request,
    sweep_request,
    tlb_request,
)
from repro.caches.tlb import SimulatedTLB
from repro.caches.multilevel import SplitCache, TwoLevelCache
from repro.caches.stack import StackSimulator
from repro.caches.stats import CacheStats

__all__ = [
    "CacheConfig",
    "GridConfig",
    "TLBConfig",
    "DistanceHistogram",
    "GridSweepReport",
    "GridSweepSimulator",
    "grid_request",
    "grid_rows",
    "grid_supported",
    "run_grid_sweep",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_policy",
    "SetAssociativeCache",
    "MissOutcome",
    "GroupedSetKernel",
    "supports_policy",
    "KernelProgram",
    "KernelRegistry",
    "KernelRequest",
    "cache_request",
    "compile_kernel",
    "default_registry",
    "scan_request",
    "sweep_request",
    "tlb_request",
    "SimulatedTLB",
    "SplitCache",
    "TwoLevelCache",
    "StackSimulator",
    "CacheStats",
]
