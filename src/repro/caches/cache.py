"""The set-associative cache model.

One class serves both drivers:

* the trace-driven simulator calls :meth:`SetAssociativeCache.access` on
  every address — search, then replace on a miss (Figure 1, left);
* Tapeworm calls :meth:`SetAssociativeCache.miss_insert` only on traps —
  the address is *known* to be missing, no search happens, and the
  displaced entry is returned so a trap can be set on it (Figure 1, right).

Keys are ``(space, line_addr)`` pairs: ``space`` is 0 for a
physically-indexed cache and the owning task id for a virtually-indexed
one (the paper: "the tid is used to form part of the cache (or TLB) tag").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Tuple

from repro._types import Indexing
from repro.caches.config import CacheConfig
from repro.caches.replacement import LRUPolicy, ReplacementPolicy

Key = Tuple[int, int]  # (space, line_addr)


@dataclass
class MissOutcome:
    """What ``tw_replace`` must know after inserting a missing line.

    ``displaced`` lists the keys evicted to make room — Tapeworm sets a
    trap on each.  ``levels_missed`` names the hierarchy levels that
    missed (a single cache always reports ``("l1",)``; a two-level
    hierarchy may add ``"l2"``).
    """

    displaced: List[Key] = field(default_factory=list)
    levels_missed: Tuple[str, ...] = ("l1",)


class SetAssociativeCache:
    """A simulated cache: ``n_sets`` sets of ``associativity`` lines."""

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        self.config = config
        self.policy = policy or LRUPolicy()
        self._sets: list[list[Key]] = [[] for _ in range(config.n_sets)]
        self.searches = 0
        self.insertions = 0

    # -- indexing helpers

    def space_of(self, tid: int) -> int:
        """The tag-space for a task: tid when virtually indexed, else 0."""
        return tid if self.config.indexing is Indexing.VIRTUAL else 0

    def _locate(self, key: Key) -> tuple[list[Key], int]:
        """Return (set_entries, way_index_or_-1) for a line key."""
        entries = self._sets[self.config.set_of(key[1])]
        try:
            return entries, entries.index(key)
        except ValueError:
            return entries, -1

    # -- trace-driven path: search every address

    def access(self, tid: int, addr: int) -> tuple[bool, Key | None]:
        """Search for ``addr``; replace on miss.

        Returns ``(hit, displaced_key)``.  This is the trace-driven inner
        loop: the search happens whether the reference hits or misses.
        """
        key = (self.space_of(tid), self.config.line_of(addr))
        entries, way = self._locate(key)
        self.searches += 1
        if way >= 0:
            self.policy.touch(entries, way)
            return True, None
        displaced = self._insert(entries, key)
        return False, displaced

    # -- trap-driven path: insert a known-missing line

    def miss_insert(self, tid: int, addr: int) -> MissOutcome:
        """Insert a line that trapped (so is known absent); no search.

        This is what makes the trap-driven handler cheap: "because all
        such traps represent simulated cache misses, there is no need to
        search a data structure representing the simulated cache."
        """
        key = (self.space_of(tid), self.config.line_of(addr))
        entries = self._sets[self.config.set_of(key[1])]
        displaced = self._insert(entries, key)
        outcome = MissOutcome()
        if displaced is not None:
            outcome.displaced.append(displaced)
        return outcome

    def _insert(self, entries: list[Key], key: Key) -> Key | None:
        self.insertions += 1
        displaced = None
        if len(entries) >= self.config.associativity:
            victim = self.policy.victim_index(entries)
            displaced = entries.pop(victim)
        self.policy.insert(entries, key)
        return displaced

    # -- maintenance

    def contains(self, tid: int, addr: int) -> bool:
        """Presence test without touching replacement state."""
        key = (self.space_of(tid), self.config.line_of(addr))
        _, way = self._locate(key)
        return way >= 0

    def evict(self, tid: int, addr: int) -> bool:
        """Remove one line if present; True when something was removed."""
        key = (self.space_of(tid), self.config.line_of(addr))
        entries, way = self._locate(key)
        if way < 0:
            return False
        entries.pop(way)
        return True

    def flush_page(self, tid: int, page_addr: int, page_bytes: int) -> list[Key]:
        """Remove every line of one page; returns the removed keys.

        Used by ``tw_remove_page`` — "the page is removed by flushing it
        from the simulated cache and clearing all traps."
        """
        space = self.space_of(tid)
        removed = []
        for line_addr in range(
            page_addr, page_addr + page_bytes, self.config.line_bytes
        ):
            key = (space, line_addr)
            entries, way = self._locate(key)
            if way >= 0:
                entries.pop(way)
                removed.append(key)
        return removed

    def flush_space(self, tid: int) -> list[Key]:
        """Remove every line tagged with one task's space."""
        space = self.space_of(tid)
        removed = []
        for entries in self._sets:
            kept = [key for key in entries if key[0] != space]
            if len(kept) != len(entries):
                removed.extend(key for key in entries if key[0] == space)
                entries[:] = kept
        return removed

    def flush_all(self) -> None:
        self._sets = [[] for _ in range(self.config.n_sets)]

    def resident_keys(self) -> set[Key]:
        """Every key currently cached (for invariant checks)."""
        return {key for entries in self._sets for key in entries}

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def __len__(self) -> int:
        return self.occupancy()
