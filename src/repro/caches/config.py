"""Validated configurations for simulated caches and TLBs."""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import PAGE_SIZE, WORD_SIZE, Indexing, WritePolicy
from repro.errors import ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one simulated cache.

    The paper's canonical configuration is a direct-mapped cache with
    4-word (16-byte) lines; Figures 2/3 sweep ``size_bytes`` from 1 KB to
    1 MB, associativity 1–4, and line size 4–16 words.
    """

    size_bytes: int
    line_bytes: int = 4 * WORD_SIZE
    associativity: int = 1
    indexing: Indexing = Indexing.PHYSICAL
    write_policy: WritePolicy = WritePolicy.WRITE_BACK

    def __post_init__(self) -> None:
        for name in ("size_bytes", "line_bytes", "associativity"):
            value = getattr(self, name)
            if not _is_power_of_two(value):
                raise ConfigError(f"{name} must be a power of two, got {value}")
        if self.line_bytes < WORD_SIZE:
            raise ConfigError(
                f"line_bytes must be at least one word, got {self.line_bytes}"
            )
        if self.size_bytes < self.line_bytes * self.associativity:
            raise ConfigError(
                f"cache of {self.size_bytes} bytes cannot hold one "
                f"{self.associativity}-way set of {self.line_bytes}-byte lines"
            )

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1

    def set_of(self, addr: int) -> int:
        """Set index of an address (virtual or physical per ``indexing``)."""
        return (addr >> self.line_shift) % self.n_sets

    def line_of(self, addr: int) -> int:
        """Line-aligned base address."""
        return addr & ~(self.line_bytes - 1)

    def describe(self) -> str:
        kb = self.size_bytes / 1024
        return (
            f"{kb:g}K {self.associativity}-way "
            f"{self.line_bytes}B-line {self.indexing.value}-indexed"
        )


@dataclass(frozen=True)
class GridConfig:
    """Geometry of one all-associativity ``(sets × ways)`` sweep grid.

    Every cell ``(S, A)`` names the LRU cache ``CacheConfig(size=S *
    A * line_bytes, associativity=A)`` — the one-pass grid engine
    (:mod:`repro.caches.gridsweep`) prices all of them from one stack-
    distance pass per set count.  Axes are normalized to sorted,
    ascending tuples so equal grids compare (and fingerprint) equal
    regardless of the order a caller listed them in.
    """

    set_counts: tuple[int, ...]
    ways: tuple[int, ...]
    line_bytes: int = 4 * WORD_SIZE
    indexing: Indexing = Indexing.PHYSICAL

    def __post_init__(self) -> None:
        for name in ("set_counts", "ways"):
            values = tuple(getattr(self, name))
            if not values:
                raise ConfigError(f"grid {name} must be non-empty")
            if len(set(values)) != len(values):
                raise ConfigError(f"duplicate grid {name}: {values}")
            for value in values:
                if not _is_power_of_two(value):
                    raise ConfigError(
                        f"grid {name} must be powers of two, got {value}"
                    )
            object.__setattr__(self, name, tuple(sorted(values)))
        if not _is_power_of_two(self.line_bytes):
            raise ConfigError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )
        if self.line_bytes < WORD_SIZE:
            raise ConfigError(
                f"line_bytes must be at least one word, got {self.line_bytes}"
            )

    @property
    def max_ways(self) -> int:
        return self.ways[-1]

    @property
    def n_cells(self) -> int:
        return len(self.set_counts) * len(self.ways)

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1

    def cells(self) -> tuple[tuple[int, int], ...]:
        """Every ``(set_count, ways)`` grid point, row-major."""
        return tuple(
            (n_sets, ways) for n_sets in self.set_counts for ways in self.ways
        )

    def config_for(self, n_sets: int, ways: int) -> CacheConfig:
        """The per-config :class:`CacheConfig` behind one grid cell."""
        return CacheConfig(
            size_bytes=n_sets * ways * self.line_bytes,
            line_bytes=self.line_bytes,
            associativity=ways,
            indexing=self.indexing,
        )

    def describe(self) -> str:
        return (
            f"{len(self.set_counts)}x{len(self.ways)} grid "
            f"(sets {','.join(map(str, self.set_counts))} × "
            f"ways {','.join(map(str, self.ways))}), "
            f"{self.line_bytes}B lines, {self.indexing.value}-indexed"
        )


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of one simulated TLB.

    ``page_bytes`` may exceed the machine page size (variable page size /
    superpage support, Table 2); Tapeworm then traps at the machine-page
    granularity but tags simulated entries by superpage number.
    """

    n_entries: int
    associativity: int = 0  # 0 means fully associative
    page_bytes: int = PAGE_SIZE

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.n_entries):
            raise ConfigError(
                f"n_entries must be a power of two, got {self.n_entries}"
            )
        if not _is_power_of_two(self.page_bytes) or self.page_bytes < PAGE_SIZE:
            raise ConfigError(
                f"page_bytes must be a power-of-two multiple of the "
                f"{PAGE_SIZE}-byte machine page, got {self.page_bytes}"
            )
        effective = self.effective_associativity
        if not _is_power_of_two(effective) or effective > self.n_entries:
            raise ConfigError(
                f"associativity {self.associativity} invalid for "
                f"{self.n_entries} entries"
            )

    @property
    def effective_associativity(self) -> int:
        return self.associativity or self.n_entries

    @property
    def n_sets(self) -> int:
        return self.n_entries // self.effective_associativity

    @property
    def pages_per_entry(self) -> int:
        return self.page_bytes // PAGE_SIZE

    def describe(self) -> str:
        assoc = (
            "fully-assoc"
            if self.effective_associativity == self.n_entries
            else f"{self.effective_associativity}-way"
        )
        return f"{self.n_entries}-entry {assoc} TLB, {self.page_bytes}B pages"
