"""One-pass all-associativity grid sweeps (Mattson / Sugumar style).

Figure 1's caption names single-pass stack simulators as the classic
answer to trace-driven repetition cost; this module generalizes the two
narrow corners the repo already had (``MultiSizeDMSweep``'s power-of-two
DM sizes, ``StackSimulator``'s fully-associative LRU) to the *whole*
``(set-counts × ways)`` LRU grid: for each set count the compiled grid
kernel (:func:`repro.caches.pipeline.compose.compose_grid`) extracts
per-set LRU stack distances in one pass over the chunk, and a recorded
distance ``d`` means a hit at every associativity ``A > d`` — so a 4×8
grid of 32 configurations costs ~4 distance passes instead of 32
simulations, and is bit-equal to running ``Cache2000`` per cell.

Exactness conditions: LRU only (stack inclusion is what lets one pass
price every ways column; FIFO is not a stack algorithm, and seeded
random consumes its RNG in global miss order).  :func:`grid_supported`
is the dispatch predicate — unsupported policies route to per-config
kernels.

Farm integration submits *one* content-addressed job per (workload,
grid) — ``grid_measure`` below, registered as ``"grid.sweep"`` — whose
payload carries every cell's miss count plus the per-set-count
``stack_distance_hist`` (the raw material for the learned-surrogate
roadmap item); :func:`grid_rows` flattens it back into per-config
manifest rows.  ``repro sweep grid`` drives it from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._types import Indexing
from repro.caches.config import GridConfig
from repro.caches.pipeline import compile_kernel, grid_request
from repro.caches.replacement import LRUPolicy, ReplacementPolicy
from repro.errors import ConfigError
from repro.telemetry import session as telemetry_session
from repro.telemetry.profile import PROFILE_BUCKET_SECS

#: modeled per-address, per-set-count processing share of the distance
#: pass — dearer than the DM sweep's table probe (bounded stack search)
#: but far below a full Cache2000 visit per *configuration*
GRIDSWEEP_CYCLES_PER_ADDRESS_PER_PASS = 40


def grid_supported(policy: ReplacementPolicy | str | None) -> bool:
    """Can the one-pass grid engine price this policy exactly?

    Only LRU has the stack-inclusion property (an A-way LRU set holds
    exactly the top A entries of the unbounded per-set LRU stack) that
    lets one distance pass answer every associativity.  FIFO is not a
    stack algorithm, and seeded random draws victims in global miss
    order — both must run per-config.
    """
    if policy is None or isinstance(policy, LRUPolicy):
        return True
    name = policy if isinstance(policy, str) else getattr(policy, "name", "")
    return name == "lru"


@dataclass(frozen=True)
class DistanceHistogram:
    """Capped LRU stack-distance histogram for one set count.

    ``counts[d]`` is the number of references found at depth ``d`` for
    ``d < max ways``; deeper references split into ``overflow``
    (resident somewhere, just beyond every priced associativity) and
    ``cold`` (first-ever touch of the key — compulsory, geometry
    independent).  ``counts + overflow + cold`` partitions the
    reference stream, and every grid cell's exact miss count is a tail
    sum: ``misses(A) = total - sum(counts[:A])``.
    """

    counts: tuple[int, ...]
    overflow: int
    cold: int

    @property
    def total(self) -> int:
        return sum(self.counts) + self.overflow + self.cold

    def hits_at(self, ways: int) -> int:
        return sum(self.counts[:ways])

    def misses_at(self, ways: int) -> int:
        return self.total - self.hits_at(ways)

    def to_dict(self) -> dict:
        return {
            "counts": list(self.counts),
            "overflow": self.overflow,
            "cold": self.cold,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DistanceHistogram":
        return cls(
            counts=tuple(int(c) for c in payload["counts"]),
            overflow=int(payload["overflow"]),
            cold=int(payload["cold"]),
        )


class GridSweepSimulator:
    """Chunk-driven all-associativity sweep over one compiled kernel.

    The same shape as ``Cache2000``: construction compiles (or fetches)
    the grid kernel through the keyed registry, ``simulate_chunk``
    folds address chunks in, and the results — every cell's exact miss
    count plus per-set-count distance histograms — are extracted on
    demand.  Consumes PR 5 compiled streams transparently (the *driver*
    resolves streams; the simulator only sees address arrays).
    """

    def __init__(
        self,
        grid: GridConfig,
        policy: ReplacementPolicy | None = None,
        profile: bool | None = None,
    ) -> None:
        if not grid_supported(policy):
            raise ConfigError(
                f"the one-pass grid engine is exact for LRU only; "
                f"{getattr(policy, 'name', policy)!r} configurations "
                f"must be simulated per-config"
            )
        self.grid = grid
        program = compile_kernel(grid_request(grid, policy, profile))
        #: the pipeline's capability report (always the grid kernel)
        self.capabilities = program.capabilities
        self._run = program.run
        self._extract = program.extract
        self._state = program.make_state()
        self.refs = 0
        self.processing_cycles = 0
        self._cycles_per_ref = (
            GRIDSWEEP_CYCLES_PER_ADDRESS_PER_PASS * len(grid.set_counts)
        )

    def simulate_chunk(self, addresses: np.ndarray, tid: int = 0) -> None:
        """Fold one chunk of byte addresses into every grid cell."""
        n = len(addresses)
        if n == 0:
            return
        self._run(self._state, addresses, tid)
        self.refs += n
        self.processing_cycles += n * self._cycles_per_ref

    # ------------------------------------------------------------------
    # extraction

    @property
    def passes(self) -> int:
        """Distance passes run so far (chunks × set counts)."""
        return self._state.passes

    @property
    def distance_secs(self) -> float:
        """Wall-clock seconds spent inside the distance kernel."""
        return self._state.distance_secs

    def miss_counts(self) -> dict[tuple[int, int], int]:
        """Exact misses for every ``(set_count, ways)`` cell."""
        return dict(self._extract(self._state)["miss_counts"])

    def distance_histograms(self) -> dict[int, DistanceHistogram]:
        """Per-set-count capped distance histograms."""
        return {
            n_sets: DistanceHistogram.from_dict(payload)
            for n_sets, payload in self._extract(self._state)["hists"].items()
        }

    def publish_metrics(self, metrics) -> None:
        """Copy sweep counters into a metrics registry (one-shot,
        called at end of run like ``Cache2000.publish_metrics``)."""
        if self._state.passes:
            metrics.counter("sweep.grid.passes").inc(self._state.passes)
        metrics.counter("sweep.grid.configs").inc(self.grid.n_cells)
        metrics.histogram(
            "sweep.grid.distance_secs", bounds=PROFILE_BUCKET_SECS
        ).observe(self._state.distance_secs)


# ---------------------------------------------------------------------------
# the trace-driven sweep driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GridSweepReport:
    """One grid sweep's complete result, per-config rows extractable."""

    workload: str
    grid: GridConfig
    refs: int
    miss_counts: dict[tuple[int, int], int]
    hists: dict[int, DistanceHistogram]
    passes: int
    distance_secs: float
    generation_cycles: int
    processing_cycles: int

    @property
    def overhead_cycles(self) -> int:
        return self.generation_cycles + self.processing_cycles

    def miss_ratio(self, n_sets: int, ways: int) -> float:
        if self.refs == 0:
            return 0.0
        return self.miss_counts[(n_sets, ways)] / self.refs

    def to_payload(self) -> dict:
        """JSON-encodable form (the farm measure's return value)."""
        return {
            "workload": self.workload,
            "set_counts": list(self.grid.set_counts),
            "ways": list(self.grid.ways),
            "line_bytes": self.grid.line_bytes,
            "indexing": self.grid.indexing.value,
            "refs": self.refs,
            "passes": self.passes,
            "distance_secs": round(self.distance_secs, 6),
            "generation_cycles": self.generation_cycles,
            "processing_cycles": self.processing_cycles,
            "miss_counts": {
                f"{n_sets}x{ways}": misses
                for (n_sets, ways), misses in sorted(self.miss_counts.items())
            },
            "stack_distance_hist": {
                str(n_sets): hist.to_dict()
                for n_sets, hist in sorted(self.hists.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GridSweepReport":
        grid = GridConfig(
            set_counts=tuple(payload["set_counts"]),
            ways=tuple(payload["ways"]),
            line_bytes=int(payload["line_bytes"]),
            indexing=Indexing(payload["indexing"]),
        )
        miss_counts = {}
        for cell, misses in payload["miss_counts"].items():
            n_sets, _, ways = cell.partition("x")
            miss_counts[(int(n_sets), int(ways))] = int(misses)
        return cls(
            workload=payload["workload"],
            grid=grid,
            refs=int(payload["refs"]),
            miss_counts=miss_counts,
            hists={
                int(n_sets): DistanceHistogram.from_dict(hist)
                for n_sets, hist in payload["stack_distance_hist"].items()
            },
            passes=int(payload["passes"]),
            distance_secs=float(payload["distance_secs"]),
            generation_cycles=int(payload["generation_cycles"]),
            processing_cycles=int(payload["processing_cycles"]),
        )


def run_grid_sweep(
    spec,
    user_refs: int,
    grid: GridConfig,
    policy: ReplacementPolicy | None = None,
) -> GridSweepReport:
    """One annotated execution, every grid cell's exact miss count.

    Drives the primary user task's Pixie trace (compiled-stream backed
    when a stream session is active) through one
    :class:`GridSweepSimulator`.  Telemetry is pure observation: a
    ``sweep.grid`` span plus the ``sweep.grid.*`` counters when a
    session is active, bit-identical results either way.
    """
    from contextlib import nullcontext

    from repro.tracing.pixie import PixieTracer

    session = telemetry_session.active()
    span = (
        session.spans.span(
            "sweep.grid",
            workload=spec.name,
            cells=grid.n_cells,
            sets=",".join(map(str, grid.set_counts)),
            ways=",".join(map(str, grid.ways)),
        )
        if session is not None
        else nullcontext()
    )
    with span:
        tracer = PixieTracer(spec)
        sweep = GridSweepSimulator(grid, policy)
        for chunk in tracer.trace_chunks(user_refs):
            sweep.simulate_chunk(chunk.addresses, tid=chunk.tid)
        if session is not None:
            sweep.publish_metrics(session.metrics)
        return GridSweepReport(
            workload=spec.name,
            grid=grid,
            refs=sweep.refs,
            miss_counts=sweep.miss_counts(),
            hists=sweep.distance_histograms(),
            passes=sweep.passes,
            distance_secs=sweep.distance_secs,
            generation_cycles=tracer.generation_cycles,
            processing_cycles=sweep.processing_cycles,
        )


# ---------------------------------------------------------------------------
# farm integration: one cached job per (workload, grid)
# ---------------------------------------------------------------------------

def grid_measure(
    seed: int,
    workload: str,
    total_refs: int,
    set_counts: list[int],
    ways: list[int],
    line_bytes: int = 16,
    indexing: str = "physical",
) -> dict:
    """Farm measure: one whole grid in one content-addressed job.

    Registered as ``"grid.sweep"``.  The trace is deterministic per
    workload (``seed`` participates only in the cache key, matching the
    other trace-driven measures), so equal grids are served from the
    result cache regardless of how many per-config rows callers later
    extract from them.
    """
    del seed  # deterministic trace; seed only keys the cache entry
    from repro.workloads import get_workload

    grid = GridConfig(
        set_counts=tuple(int(s) for s in set_counts),
        ways=tuple(int(w) for w in ways),
        line_bytes=int(line_bytes),
        indexing=Indexing(indexing),
    )
    report = run_grid_sweep(get_workload(workload), int(total_refs), grid)
    return report.to_payload()


def grid_job(
    workload: str, total_refs: int, grid: GridConfig, seed: int = 0
):
    """The one farm job a whole (workload, grid) sweep costs."""
    from repro.farm import Job

    return Job(
        "grid.sweep",
        {
            "workload": workload,
            "total_refs": int(total_refs),
            "set_counts": list(grid.set_counts),
            "ways": list(grid.ways),
            "line_bytes": grid.line_bytes,
            "indexing": grid.indexing.value,
        },
        seed=seed,
    )


def run_grid_farm(
    farm, workloads, total_refs: int, grid: GridConfig, seed: int = 0
) -> dict[str, dict]:
    """Submit one cached grid job per workload; payloads by name."""
    names = list(workloads)
    jobs = [grid_job(name, total_refs, grid, seed) for name in names]
    return dict(zip(names, farm.run_jobs(jobs)))


def grid_rows(payload: dict) -> list[dict]:
    """Flatten one grid payload into per-config manifest rows."""
    refs = int(payload["refs"])
    line_bytes = int(payload["line_bytes"])
    rows = []
    for cell, misses in sorted(
        payload["miss_counts"].items(),
        key=lambda item: tuple(map(int, item[0].split("x"))),
    ):
        n_sets, _, ways = cell.partition("x")
        n_sets, ways = int(n_sets), int(ways)
        rows.append(
            {
                "workload": payload["workload"],
                "n_sets": n_sets,
                "ways": ways,
                "size_bytes": n_sets * ways * line_bytes,
                "line_bytes": line_bytes,
                "indexing": payload["indexing"],
                "refs": refs,
                "misses": int(misses),
                "miss_ratio": (int(misses) / refs) if refs else 0.0,
            }
        )
    return rows
