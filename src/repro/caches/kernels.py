"""Vectorized simulation kernels for set-indexed structures.

The per-reference :class:`~repro.caches.cache.SetAssociativeCache` loop
is exact but interpreter-bound: every address pays a method call, a
tuple key, a list search over tuples and a policy dispatch.  This module
provides the grouped-set alternative the trace-driven drivers run on —
one vectorized pass per chunk instead of one Python call per address —
while staying *bit-identical* to the per-reference path.

Why grouping is exact
---------------------

LRU and FIFO state is independent across sets: the outcome of a
reference depends only on the sequence of prior references *to its own
set*.  A stable argsort by set index therefore preserves, within each
set, the original reference order — so replaying the chunk set-by-set
over contiguous runs produces exactly the per-reference result (the
generalization of Mattson's observation that stack algorithms may be
evaluated per congruence class).  Two further exact reductions apply:

* **direct-mapped** sets hold exactly the last key that touched them, so
  a whole chunk reduces to pure numpy (compare each sorted reference
  with its predecessor; write each set's final key back);
* **consecutive duplicates** within a set's run are guaranteed hits that
  do not disturb LRU/FIFO state (the key is already resident — and, for
  LRU, already most-recently-used), so the sequential stack update only
  visits the run's *collapsed* key sequence.  Sequential code streams
  collapse by a factor of line_bytes/word_size.

What cannot be grouped: a shared-RNG random replacement policy consumes
its stream in global miss order, which grouping reorders.  Such configs
must stay on the per-reference path — :func:`supports_policy` is the
dispatch predicate the drivers use.
"""

from __future__ import annotations

import numpy as np

from repro.caches.config import CacheConfig
from repro.caches.replacement import FIFOPolicy, LRUPolicy, ReplacementPolicy
from repro.errors import ConfigError
from repro.telemetry.profile import phase

#: space id range mixed into packed keys (tids must stay below this)
MAX_SPACES = 4096

#: replacement policies the grouped kernel can replay exactly
GROUPABLE_POLICIES = ("lru", "fifo")


def supports_policy(policy: ReplacementPolicy | None) -> bool:
    """Can the grouped kernel replay this policy bit-identically?

    LRU and FIFO qualify (per-set state, no cross-set coupling).  A
    seeded random policy draws victims from one RNG stream in global
    miss order, which grouping would permute — so it does not.
    """
    return isinstance(policy, (LRUPolicy, FIFOPolicy))


def dm_grouped_pass(
    state: np.ndarray,
    sets: np.ndarray,
    keys: np.ndarray,
    order: np.ndarray | None = None,
) -> int:
    """One exact direct-mapped pass: update ``state``, return misses.

    ``state`` maps set index -> resident key (-1 = empty).  A
    direct-mapped set always holds the last key that touched it, so a
    reference misses iff its key differs from its set's previous key;
    the per-set *last* key is written back.  ``order`` may carry a
    precomputed stable argsort of ``sets`` (the multi-size sweep shares
    one across sizes with equal set counts).
    """
    n = len(sets)
    if n == 0:
        return 0
    if order is None:
        order = np.argsort(sets, kind="stable")
    sets_sorted = sets[order]
    keys_sorted = keys[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(sets_sorted[1:], sets_sorted[:-1], out=first[1:])
    previous = np.empty_like(keys_sorted)
    previous[1:] = keys_sorted[:-1]
    previous[first] = state[sets_sorted[first]]
    misses = int(np.count_nonzero(keys_sorted != previous))
    last = np.empty(n, dtype=bool)
    last[-1] = True
    np.not_equal(sets_sorted[1:], sets_sorted[:-1], out=last[:-1])
    state[sets_sorted[last]] = keys_sorted[last]
    return misses


def grouped_stack_pass(
    sets_store: list[list],
    associativity: int,
    lru: bool,
    set_list: list[int],
    key_list: list,
) -> int:
    """Sequential per-set stack update over contiguous runs.

    ``set_list``/``key_list`` must already be sorted by set (stable) and
    collapsed of consecutive duplicates; ``sets_store`` holds each set's
    entries in policy order (index 0 most protected, last the victim —
    the :mod:`repro.caches.replacement` convention for LRU and FIFO).
    Returns the miss count; mutates ``sets_store`` in place.
    """
    misses = 0
    n = len(set_list)
    i = 0
    while i < n:
        s = set_list[i]
        entries = sets_store[s]
        while i < n and set_list[i] == s:
            key = key_list[i]
            try:
                way = entries.index(key)
            except ValueError:
                misses += 1
                if len(entries) >= associativity:
                    entries.pop()
                entries.insert(0, key)
            else:
                if lru and way:
                    entries.insert(0, entries.pop(way))
            i += 1
    return misses


def first_touch_mask(keys: np.ndarray, seen: set) -> np.ndarray:
    """Boolean mask of compulsory references: True where a chunk
    position is its key's first occurrence in the *whole* stream.

    ``seen`` is the caller's cross-chunk set of every key ever
    referenced; it is updated in place with this chunk's keys.  The mask
    is set-count independent (a key's first touch is a property of the
    stream, not of any geometry), so the all-associativity sweep
    computes it once per chunk and shares it across every set-count
    pass.
    """
    unique, first_index = np.unique(keys, return_index=True)
    mask = np.zeros(len(keys), dtype=bool)
    fresh = [
        index
        for key, index in zip(unique.tolist(), first_index.tolist())
        if key not in seen
    ]
    if fresh:
        mask[fresh] = True
        seen.update(keys[fresh].tolist())
    return mask


def grouped_distance_pass(
    stacks: list[list[int]],
    max_depth: int | None,
    set_list: list[int],
    key_list: list,
    cold_list: list[bool],
    distances: list[int],
) -> tuple[int, int]:
    """Per-set LRU stack-*distance* extraction over contiguous runs.

    The all-associativity generalization of :func:`grouped_stack_pass`:
    instead of replaying one fixed associativity, record each found
    reference's LRU depth ``d`` — by stack inclusion the reference then
    hits in *every* associativity ``A > d`` at this set count, so one
    pass prices the whole ways axis.  Inputs follow the grouped-pass
    contract (sorted by set, consecutive duplicates collapsed);
    ``stacks`` holds each set's keys most-recent-first, truncated to
    ``max_depth`` entries (``None`` = unbounded, the fully-associative
    profiler's mode); ``cold_list`` flags first-ever references (from
    :func:`first_touch_mask`); found depths are appended to
    ``distances``.  Returns ``(cold, overflow)`` — references absent
    from their bounded stack split into compulsory misses and
    truncation-overflow (depth >= ``max_depth``, a miss at every
    associativity the sweep prices).  Mutates ``stacks`` in place.
    """
    cold = 0
    overflow = 0
    n = len(set_list)
    i = 0
    while i < n:
        s = set_list[i]
        stack = stacks[s]
        while i < n and set_list[i] == s:
            key = key_list[i]
            try:
                depth = stack.index(key)
            except ValueError:
                if cold_list[i]:
                    cold += 1
                else:
                    overflow += 1
                if max_depth is not None and len(stack) >= max_depth:
                    stack.pop()
                stack.insert(0, key)
            else:
                distances.append(depth)
                if depth:
                    stack.insert(0, stack.pop(depth))
            i += 1
    return cold, overflow


def collapse_consecutive(
    sets_sorted: np.ndarray, keys_sorted: np.ndarray
) -> np.ndarray:
    """Keep-mask dropping consecutive same-key repeats (guaranteed hits).

    Assumes keys determine sets (a key encodes its full line/superpage
    number), so equal adjacent keys always share a set.
    """
    keep = np.empty(len(keys_sorted), dtype=bool)
    keep[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=keep[1:])
    return keep


class GroupedSetKernel:
    """Vectorized set-associative engine, bit-identical to the
    per-reference :class:`~repro.caches.cache.SetAssociativeCache`
    under LRU or FIFO replacement (any associativity).

    Keys pack ``(line number, space)`` into one int64 —
    ``line * MAX_SPACES + space`` — so numpy comparisons and the
    per-run Python loop both work on plain ints.
    """

    def __init__(self, config: CacheConfig, policy_name: str = "lru") -> None:
        if policy_name not in GROUPABLE_POLICIES:
            raise ConfigError(
                f"the grouped kernel cannot replay {policy_name!r} "
                f"replacement exactly; choose from {GROUPABLE_POLICIES}"
            )
        self.config = config
        self.policy_name = policy_name
        self._lru = policy_name == "lru"
        self.n_sets = config.n_sets
        self.associativity = config.associativity
        if self.associativity == 1:
            self._state: np.ndarray | None = np.full(
                self.n_sets, -1, dtype=np.int64
            )
            self._sets: list[list[int]] | None = None
        else:
            self._state = None
            self._sets = [[] for _ in range(self.n_sets)]

    # ------------------------------------------------------------------

    def simulate_chunk(self, addresses: np.ndarray, space: int = 0) -> int:
        """Simulate one chunk of byte addresses; returns its miss count."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if len(addresses) == 0:
            return 0
        if not 0 <= space < MAX_SPACES:
            raise ConfigError(
                f"space {space} outside the kernel's packed range "
                f"[0, {MAX_SPACES})"
            )
        lines = addresses >> self.config.line_shift
        sets = lines % self.n_sets
        keys = lines * MAX_SPACES + space
        if self.associativity == 1:
            with phase("kernels.dm_pass"):
                return dm_grouped_pass(self._state, sets, keys)
        with phase("kernels.grouped_set"):
            order = np.argsort(sets, kind="stable")
            sets_sorted = sets[order]
            keys_sorted = keys[order]
            keep = collapse_consecutive(sets_sorted, keys_sorted)
            return grouped_stack_pass(
                self._sets,
                self.associativity,
                self._lru,
                sets_sorted[keep].tolist(),
                keys_sorted[keep].tolist(),
            )

    # ------------------------------------------------------------------
    # state inspection (cross-path equality checks)

    @staticmethod
    def _decode(key: int, line_shift: int) -> tuple[int, int]:
        space, line = key % MAX_SPACES, key // MAX_SPACES
        return space, line << line_shift

    def resident_keys(self) -> set[tuple[int, int]]:
        """Every resident ``(space, line_addr)`` — the
        :meth:`SetAssociativeCache.resident_keys` vocabulary."""
        shift = self.config.line_shift
        if self._state is not None:
            return {
                self._decode(int(key), shift)
                for key in self._state
                if key >= 0
            }
        return {
            self._decode(key, shift)
            for entries in self._sets
            for key in entries
        }

    def occupancy(self) -> int:
        if self._state is not None:
            return int(np.count_nonzero(self._state >= 0))
        return sum(len(entries) for entries in self._sets)

    def __len__(self) -> int:
        return self.occupancy()
