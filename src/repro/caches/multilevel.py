"""Split and two-level cache hierarchies.

Section 3.2 of the paper notes that ``tw_replace`` "can simulate different
line sizes and associativities, as well as more complex cache structures
including split, unified or multi-level caches."  These compositions make
that concrete:

* :class:`SplitCache` — separate I and D caches behind one interface.
* :class:`TwoLevelCache` — an inclusive L1/L2 pair.  For the trap-driven
  driver the trap condition is *absence from L1* (every L1 miss traps; the
  handler then probes L2 in software), so both L1 and L2 miss counts are
  observable from traps alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.cache import Key, MissOutcome, SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.replacement import ReplacementPolicy
from repro.errors import ConfigError


class SplitCache:
    """Separate instruction and data caches (a split L1)."""

    def __init__(
        self,
        icache_config: CacheConfig,
        dcache_config: CacheConfig,
        policy: ReplacementPolicy | None = None,
        dpolicy: ReplacementPolicy | None = None,
    ) -> None:
        self.icache = SetAssociativeCache(icache_config, policy)
        self.dcache = SetAssociativeCache(dcache_config, dpolicy)

    def access(self, tid: int, addr: int, is_instruction: bool):
        side = self.icache if is_instruction else self.dcache
        return side.access(tid, addr)

    def miss_insert(self, tid: int, addr: int, is_instruction: bool):
        side = self.icache if is_instruction else self.dcache
        return side.miss_insert(tid, addr)


@dataclass
class TwoLevelOutcome:
    """Result of one two-level access or miss insertion."""

    l1_hit: bool
    l2_hit: bool
    #: keys that left L1 (need traps under the trap-driven driver)
    displaced_from_l1: list[Key]


class TwoLevelCache:
    """An inclusive L1/L2 hierarchy sharing line size.

    Inclusion is enforced: a line displaced from L2 is also invalidated
    in L1.  Under the trap-driven driver the trap set is the complement
    of L1's contents, so ``displaced_from_l1`` is exactly the set of
    locations needing new traps after each event.
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        l1_policy: ReplacementPolicy | None = None,
        l2_policy: ReplacementPolicy | None = None,
    ) -> None:
        if l1_config.line_bytes != l2_config.line_bytes:
            raise ConfigError(
                "two-level hierarchy requires matching line sizes, got "
                f"{l1_config.line_bytes} and {l2_config.line_bytes}"
            )
        if l2_config.size_bytes < l1_config.size_bytes:
            raise ConfigError("L2 must be at least as large as L1")
        if l1_config.indexing is not l2_config.indexing:
            raise ConfigError("L1 and L2 must use the same indexing")
        self.l1 = SetAssociativeCache(l1_config, l1_policy)
        self.l2 = SetAssociativeCache(l2_config, l2_policy)
        self.l1_misses = 0
        self.l2_misses = 0

    def _fill(self, tid: int, addr: int) -> TwoLevelOutcome:
        """Bring a line missing from L1 into both levels."""
        l2_hit = self.l2.contains(tid, addr)
        displaced_from_l1: list[Key] = []
        if l2_hit:
            # refresh L2 recency
            self.l2.access(tid, addr)
        else:
            self.l2_misses += 1
            outcome = self.l2.miss_insert(tid, addr)
            for victim in outcome.displaced:
                # inclusion: anything leaving L2 must leave L1 too
                entries, way = self.l1._locate(victim)
                if way >= 0:
                    entries.pop(way)
                    displaced_from_l1.append(victim)
        self.l1_misses += 1
        l1_outcome = self.l1.miss_insert(tid, addr)
        displaced_from_l1.extend(l1_outcome.displaced)
        return TwoLevelOutcome(
            l1_hit=False, l2_hit=l2_hit, displaced_from_l1=displaced_from_l1
        )

    def access(self, tid: int, addr: int) -> TwoLevelOutcome:
        """Trace-driven path: search L1, then L2, then fill."""
        hit, _ = (
            (True, None) if self.l1.contains(tid, addr) else (False, None)
        )
        if hit:
            self.l1.access(tid, addr)
            return TwoLevelOutcome(l1_hit=True, l2_hit=True, displaced_from_l1=[])
        return self._fill(tid, addr)

    def miss_insert(self, tid: int, addr: int) -> TwoLevelOutcome:
        """Trap-driven path: the reference trapped, so it missed L1."""
        return self._fill(tid, addr)

    def check_inclusion(self) -> bool:
        """Invariant: every L1-resident line is L2-resident."""
        return self.l1.resident_keys() <= self.l2.resident_keys()
