"""Pass-pipeline kernel compilation for the chunk engine.

Given a ``(geometry, policy, indexing, tracing, fault-plan, telemetry)``
configuration, this package composes a specialized chunk-access kernel
*once* — normalization → capability analysis → kernel selection →
composition → rescan binding → optional profiling shims → finalize —
caches it in a keyed registry (config fingerprint +
:data:`KERNEL_CODE_VERSION` salt), and hands back a callable the hot
loop invokes with zero per-chunk dispatch.

``Cache2000``, ``MultiSizeDMSweep``, ``SimulatedTLB`` and the CPU chunk
engine all request kernels here instead of branching inline; the
capability report on each program is the single source of truth for
which path a configuration runs and why.  See "Kernel pass pipeline" in
docs/INTERNALS.md.
"""

from repro.caches.pipeline.capability import (
    KERNEL_PATHS,
    CapabilityReport,
    analyze,
)
from repro.caches.pipeline.passes import (
    PIPELINE_PASSES,
    KernelBuild,
    KernelPass,
    KernelProgram,
    run_pipeline,
)
from repro.caches.pipeline.registry import (
    DEFAULT_LEDGER_DIR,
    KernelRegistry,
    clear_ledger,
    compile_kernel,
    default_registry,
    read_ledger,
    reset_default_registry,
)
from repro.caches.pipeline.request import (
    KERNEL_CODE_VERSION,
    KERNEL_KINDS,
    KernelRequest,
    cache_request,
    fingerprint_request,
    grid_request,
    scan_request,
    sweep_request,
    tlb_request,
)

__all__ = [
    "KERNEL_CODE_VERSION",
    "KERNEL_KINDS",
    "KERNEL_PATHS",
    "DEFAULT_LEDGER_DIR",
    "CapabilityReport",
    "KernelBuild",
    "KernelPass",
    "KernelProgram",
    "KernelRegistry",
    "KernelRequest",
    "PIPELINE_PASSES",
    "analyze",
    "cache_request",
    "clear_ledger",
    "compile_kernel",
    "default_registry",
    "fingerprint_request",
    "grid_request",
    "read_ledger",
    "reset_default_registry",
    "run_pipeline",
    "scan_request",
    "sweep_request",
    "tlb_request",
]
