"""Capability analysis: which kernel may legally serve a request.

The analysis pass turns a :class:`~repro.caches.pipeline.request.
KernelRequest` into a :class:`CapabilityReport` — the *single* place
the fast-path/general-path decision is made.  Call sites never branch
on ``supports_policy`` or ``force_general_path`` again; they read the
report the pipeline hands back.

The rules (also documented in docs/INTERNALS.md):

* **direct-mapped caches** always group: the victim is forced, the
  replacement policy is never consulted, so even seeded-random configs
  ride the pure-numpy ``dm_grouped_pass``;
* **LRU/FIFO** group at any associativity — per-set state independence
  makes the stable-sorted set-by-set replay exact (the Mattson
  congruence-class argument);
* **seeded-random replacement** at associativity > 1 cannot group: the
  policy consumes one shared RNG stream in global *miss order*, which
  grouping would permute — the request is routed to the exact
  per-reference path with the reason recorded;
* **force_general** pins the per-reference path for differential
  testing, again with the reason recorded;
* **grid** requests (all-associativity sweeps) always take the
  one-pass stack-distance kernel — the normalize pass already rejected
  every policy but LRU, the only one with the inclusion property the
  sweep's exactness rests on.

Every report carries its ``reasons`` tuple so telemetry, the compile
ledger and the equivalence tests can all see *why* a configuration was
denied the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.kernels import GROUPABLE_POLICIES
from repro.caches.pipeline.request import KernelRequest
from repro.errors import ConfigError

#: kernel implementations the selection pass can choose from
KERNEL_PATHS = (
    "dm",
    "grouped",
    "general",
    "tlb_grouped",
    "tlb_general",
    "grid",
    "scan",
)


@dataclass(frozen=True)
class CapabilityReport:
    """What the pipeline decided for one request, and why."""

    selected: str
    reasons: tuple[str, ...] = ()

    @property
    def general(self) -> bool:
        """True when the exact per-reference path was selected."""
        return self.selected in ("general", "tlb_general")

    def describe(self) -> str:
        if not self.reasons:
            return self.selected
        return f"{self.selected} ({', '.join(self.reasons)})"


def _general_reasons(request: KernelRequest) -> tuple[str, ...]:
    reasons = []
    if request.force_general:
        reasons.append("forced:request")
    if request.policy is not None and request.policy not in GROUPABLE_POLICIES:
        reasons.append(f"policy:{request.policy}")
    return tuple(reasons)


def analyze(request: KernelRequest) -> CapabilityReport:
    """The capability pass: map one request to its kernel path."""
    if request.kind == "cache":
        if request.force_general:
            return CapabilityReport("general", _general_reasons(request))
        if request.cache.associativity == 1:
            # the victim is forced; the policy is never consulted
            return CapabilityReport("dm")
        if request.policy in GROUPABLE_POLICIES:
            return CapabilityReport("grouped")
        return CapabilityReport("general", _general_reasons(request))
    if request.kind == "tlb":
        if request.force_general:
            return CapabilityReport("tlb_general", _general_reasons(request))
        if request.policy in GROUPABLE_POLICIES:
            return CapabilityReport("tlb_grouped")
        return CapabilityReport("tlb_general", _general_reasons(request))
    if request.kind == "grid":
        # exactness rests on LRU stack inclusion (the normalize pass
        # already rejected every other policy)
        return CapabilityReport("grid", ("lru-stack-inclusion",))
    if request.kind == "scan":
        return CapabilityReport("scan")
    raise ConfigError(f"unknown kernel kind {request.kind!r}")
