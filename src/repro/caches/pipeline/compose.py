"""Kernel composition: close a specialized chunk kernel over one config.

Each ``compose_*`` factory takes a build context (request + capability
report) and returns the program *fields* — plain closures with every
configuration constant bound in cells at compose time:

* the line shift, set mask and key packing are literals in the closure,
  not attribute lookups on a config object;
* the virtual/physical space mapping is selected once (physical kernels
  never add a space term at all);
* power-of-two modulo is strength-reduced to a bit-and;
* the profiling shim is *absent* unless the request asked for it (see
  :mod:`repro.caches.pipeline.passes`), so the hot loop pays no
  session lookup per chunk.

Everything stays bit-identical to the pre-pipeline dispatch: the
closures call the very same :func:`~repro.caches.kernels.
dm_grouped_pass` / :func:`~repro.caches.kernels.grouped_stack_pass`
primitives, the general paths loop the very same per-reference
``access`` methods, and ``tests/property/test_kernel_equivalence.py``
sweeps the whole grid to prove it.

Programs are stateless and shared: mutable simulation state is created
per simulator by ``make_state`` and threaded through ``run`` — so one
compiled program can serve any number of concurrently-live simulators
of the same configuration.
"""

from __future__ import annotations

import time

import numpy as np

from repro._types import Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.kernels import (
    MAX_SPACES,
    collapse_consecutive,
    dm_grouped_pass,
    first_touch_mask,
    grouped_distance_pass,
    grouped_stack_pass,
)
from repro.errors import ConfigError


def _space_fn(indexing: Indexing):
    """The tid -> tag-space mapping, specialized per indexing mode."""
    if indexing is Indexing.VIRTUAL:
        def space_of(tid: int) -> int:
            if not 0 <= tid < MAX_SPACES:
                raise ConfigError(
                    f"tid {tid} outside the fast path's space range"
                )
            return tid
    else:
        def space_of(tid: int) -> int:
            if not 0 <= tid < MAX_SPACES:
                raise ConfigError(
                    f"tid {tid} outside the fast path's space range"
                )
            return 0
    return space_of


def _decode(key: int, line_shift: int) -> tuple[int, int]:
    space, line = key % MAX_SPACES, key // MAX_SPACES
    return space, line << line_shift


# ---------------------------------------------------------------------------
# cache kernels
# ---------------------------------------------------------------------------

def compose_cache_dm(build) -> dict:
    """Direct-mapped chunk kernel: pure numpy, any policy."""
    config = build.request.cache
    line_shift = config.line_shift
    set_mask = config.n_sets - 1
    n_sets = config.n_sets
    virtual = config.indexing is Indexing.VIRTUAL
    space_of = _space_fn(config.indexing)

    def make_state(policy=None) -> np.ndarray:
        return np.full(n_sets, -1, dtype=np.int64)

    if virtual:
        def run(state, addresses, tid: int = 0) -> int:
            addresses = np.asarray(addresses, dtype=np.int64)
            if len(addresses) == 0:
                return 0
            space = space_of(tid)
            lines = addresses >> line_shift
            return dm_grouped_pass(
                state, lines & set_mask, lines * MAX_SPACES + space
            )

        def resident_keys(state) -> set[tuple[int, int]]:
            return {
                _decode(int(key), line_shift) for key in state if key >= 0
            }
    else:
        # physical keys carry no space term, so the lines themselves are
        # the keys: the packing multiply is compiled out entirely (the
        # line <-> packed-key mapping is injective, so miss counts and
        # state transitions are unchanged — only the encoding differs)
        def run(state, addresses, tid: int = 0) -> int:
            addresses = np.asarray(addresses, dtype=np.int64)
            if len(addresses) == 0:
                return 0
            space_of(tid)  # range check only; physical space is always 0
            lines = addresses >> line_shift
            return dm_grouped_pass(state, lines & set_mask, lines)

        def resident_keys(state) -> set[tuple[int, int]]:
            return {
                (0, int(line) << line_shift) for line in state if line >= 0
            }

    def occupancy(state) -> int:
        return int(np.count_nonzero(state >= 0))

    return {
        "run": run,
        "make_state": make_state,
        "resident_keys": resident_keys,
        "occupancy": occupancy,
        "phase_name": "kernels.dm_pass",
    }


def compose_cache_grouped(build) -> dict:
    """Grouped-set stack replay: exact for LRU/FIFO, any associativity."""
    config = build.request.cache
    line_shift = config.line_shift
    set_mask = config.n_sets - 1
    n_sets = config.n_sets
    associativity = config.associativity
    lru = build.request.policy == "lru"
    space_of = _space_fn(config.indexing)

    def make_state(policy=None) -> list[list[int]]:
        return [[] for _ in range(n_sets)]

    def run(state, addresses, tid: int = 0) -> int:
        addresses = np.asarray(addresses, dtype=np.int64)
        if len(addresses) == 0:
            return 0
        space = space_of(tid)
        lines = addresses >> line_shift
        sets = lines & set_mask
        keys = lines * MAX_SPACES + space
        order = np.argsort(sets, kind="stable")
        sets_sorted = sets[order]
        keys_sorted = keys[order]
        keep = collapse_consecutive(sets_sorted, keys_sorted)
        return grouped_stack_pass(
            state,
            associativity,
            lru,
            sets_sorted[keep].tolist(),
            keys_sorted[keep].tolist(),
        )

    def resident_keys(state) -> set[tuple[int, int]]:
        return {
            _decode(key, line_shift)
            for entries in state
            for key in entries
        }

    def occupancy(state) -> int:
        return sum(len(entries) for entries in state)

    return {
        "run": run,
        "make_state": make_state,
        "resident_keys": resident_keys,
        "occupancy": occupancy,
        "phase_name": "kernels.grouped_set",
    }


def compose_cache_general(build) -> dict:
    """The exact per-reference path over ``SetAssociativeCache``.

    ``make_state`` accepts the *caller's* policy instance so a seeded
    random policy keeps drawing from its own RNG stream in global miss
    order — the property grouping cannot preserve.
    """
    config = build.request.cache

    def make_state(policy=None) -> SetAssociativeCache:
        return SetAssociativeCache(config, policy)

    def run(cache, addresses, tid: int = 0) -> int:
        misses = 0
        access = cache.access
        for addr in np.asarray(addresses, dtype=np.int64).tolist():
            hit, _ = access(tid, addr)
            if not hit:
                misses += 1
        return misses

    return {
        "run": run,
        "make_state": make_state,
        "resident_keys": lambda cache: cache.resident_keys(),
        "occupancy": lambda cache: cache.occupancy(),
        "phase_name": None,  # the reference path is never shimmed
    }


# ---------------------------------------------------------------------------
# TLB kernels (state lives on the SimulatedTLB instance passed to run)
# ---------------------------------------------------------------------------

def compose_tlb_grouped(build) -> dict:
    """The grouped TLB chunk path, counters included.

    Bit-identical to calling ``SimulatedTLB.access`` per reference —
    including the ``searches``/``insertions`` totals (one search per
    reference, one insertion per miss) and the final entry state shared
    with the trap-driven ``miss_insert`` path.
    """
    config = build.request.tlb
    page_shift = config.pages_per_entry.bit_length() - 1
    set_mask = config.n_sets - 1
    associativity = config.effective_associativity
    lru = build.request.policy == "lru"

    def run(tlb, tid: int, vpns) -> int:
        vpns = np.asarray(vpns, dtype=np.int64)
        n = len(vpns)
        if n == 0:
            return 0
        superpages = vpns >> page_shift
        sets = superpages & set_mask
        order = np.argsort(sets, kind="stable")
        sets_sorted = sets[order]
        superpages_sorted = superpages[order]
        keep = collapse_consecutive(sets_sorted, superpages_sorted)
        misses = grouped_stack_pass(
            tlb._sets,
            associativity,
            lru,
            sets_sorted[keep].tolist(),
            [(tid, sp) for sp in superpages_sorted[keep].tolist()],
        )
        tlb.searches += n
        tlb.insertions += misses
        return misses

    return {"run": run, "phase_name": "kernels.tlb_chunk"}


def compose_tlb_general(build) -> dict:
    """The per-reference TLB loop, for non-groupable policies."""

    def run(tlb, tid: int, vpns) -> int:
        vpns = np.asarray(vpns, dtype=np.int64)
        misses = 0
        access = tlb.access
        for vpn in vpns.tolist():
            hit, _ = access(tid, int(vpn))
            misses += not hit
        return misses

    return {"run": run, "phase_name": None}


# ---------------------------------------------------------------------------
# the all-associativity (sets × ways) grid sweep
# ---------------------------------------------------------------------------

class GridState:
    """Mutable grid-sweep state, one per simulator.

    ``stacks`` holds one structure per set count: bounded
    most-recent-first key stacks for the distance pass, or resident-key
    arrays in the direct-mapped (``max_ways == 1``) specialization.
    ``hists``/``overflow``/``cold`` are the three-part capped distance
    histogram the extractor prices every associativity from; ``seen``
    is the cross-chunk first-touch key set shared by all set counts.
    """

    __slots__ = (
        "stacks",
        "hists",
        "overflow",
        "cold",
        "refs",
        "seen",
        "passes",
        "distance_secs",
    )

    def __init__(
        self, set_counts: tuple[int, ...], max_ways: int, dm: bool
    ) -> None:
        if dm:
            self.stacks = [
                np.full(n_sets, -1, dtype=np.int64) for n_sets in set_counts
            ]
        else:
            self.stacks = [
                [[] for _ in range(n_sets)] for n_sets in set_counts
            ]
        self.hists = [
            np.zeros(max_ways, dtype=np.int64) for _ in set_counts
        ]
        self.overflow = [0] * len(set_counts)
        self.cold = 0
        self.refs = 0
        self.seen: set[int] = set()
        self.passes = 0
        self.distance_secs = 0.0


def compose_grid(build) -> dict:
    """One stack-distance pass per set count prices every ways column.

    For each requested set count the chunk is stable-sorted by set and
    replayed through :func:`grouped_distance_pass` with per-set stacks
    bounded at the grid's largest associativity: a recorded depth ``d``
    means a hit at every ``A > d`` (LRU stack inclusion), so the capped
    histogram plus its cold/overflow split yields the *exact* miss
    count of every ways column from that one pass.  Compulsory
    (first-touch) misses are geometry-independent and computed once per
    chunk, shared across set counts.  A ``max_ways == 1`` grid — the
    ``sweep_request`` adapter's shape — drops to the pure-numpy
    :func:`dm_grouped_pass` per set count, keeping the old dm_sweep
    kernel's speed.
    """
    grid = build.request.grid
    line_shift = grid.line_shift
    set_counts = grid.set_counts
    ways = grid.ways
    max_ways = grid.max_ways
    virtual = grid.indexing is Indexing.VIRTUAL
    space_of = _space_fn(grid.indexing)
    dm_only = max_ways == 1

    def make_state(policy=None) -> GridState:
        return GridState(set_counts, max_ways, dm_only)

    if dm_only:
        def run(state: GridState, addresses, tid: int = 0) -> int:
            addresses = np.asarray(addresses, dtype=np.int64)
            n = len(addresses)
            if n == 0:
                return 0
            start = time.perf_counter()
            space = space_of(tid)
            lines = addresses >> line_shift
            keys = lines * MAX_SPACES + space if virtual else lines
            cold = int(np.count_nonzero(first_touch_mask(keys, state.seen)))
            state.cold += cold
            for index, n_sets in enumerate(set_counts):
                misses = dm_grouped_pass(
                    state.stacks[index], lines & (n_sets - 1), keys
                )
                # a DM hit is exactly a distance-0 reference; the
                # misses beyond the (set-count independent) compulsory
                # ones are conflict overflow
                state.hists[index][0] += n - misses
                state.overflow[index] += misses - cold
                state.passes += 1
            state.refs += n
            state.distance_secs += time.perf_counter() - start
            return n
    else:
        def run(state: GridState, addresses, tid: int = 0) -> int:
            addresses = np.asarray(addresses, dtype=np.int64)
            n = len(addresses)
            if n == 0:
                return 0
            start = time.perf_counter()
            space = space_of(tid)
            lines = addresses >> line_shift
            keys = lines * MAX_SPACES + space if virtual else lines
            cold_mask = first_touch_mask(keys, state.seen)
            state.cold += int(np.count_nonzero(cold_mask))
            for index, n_sets in enumerate(set_counts):
                sets = lines & (n_sets - 1)
                order = np.argsort(sets, kind="stable")
                sets_sorted = sets[order]
                keys_sorted = keys[order]
                keep = collapse_consecutive(sets_sorted, keys_sorted)
                kept = int(np.count_nonzero(keep))
                distances: list[int] = []
                _, overflow = grouped_distance_pass(
                    state.stacks[index],
                    max_ways,
                    sets_sorted[keep].tolist(),
                    keys_sorted[keep].tolist(),
                    cold_mask[order][keep].tolist(),
                    distances,
                )
                hist = state.hists[index]
                # collapsed consecutive duplicates are guaranteed
                # distance-0 hits that do not disturb LRU state
                hist[0] += n - kept
                if distances:
                    hist += np.bincount(
                        np.asarray(distances, dtype=np.int64),
                        minlength=max_ways,
                    )
                state.overflow[index] += overflow
                state.passes += 1
            state.refs += n
            state.distance_secs += time.perf_counter() - start
            return n

    def extract(state: GridState) -> dict:
        """Exact per-cell miss counts + per-set-count histograms."""
        miss_counts: dict[tuple[int, int], int] = {}
        hists: dict[int, dict] = {}
        for index, n_sets in enumerate(set_counts):
            counts = state.hists[index]
            hists[n_sets] = {
                "counts": [int(c) for c in counts],
                "overflow": int(state.overflow[index]),
                "cold": int(state.cold),
            }
            cumulative = np.cumsum(counts)
            for a in ways:
                miss_counts[(n_sets, a)] = state.refs - int(
                    cumulative[a - 1]
                )
        return {
            "refs": state.refs,
            "cold": state.cold,
            "passes": state.passes,
            "distance_secs": state.distance_secs,
            "miss_counts": miss_counts,
            "hists": hists,
        }

    def occupancy(state: GridState) -> int:
        """Resident lines at the largest set count (diagnostics)."""
        last = state.stacks[-1]
        if dm_only:
            return int(np.count_nonzero(last >= 0))
        return sum(len(entries) for entries in last)

    return {
        "run": run,
        "make_state": make_state,
        "extract": extract,
        "occupancy": occupancy,
        "phase_name": "kernels.grid_pass",
    }


# ---------------------------------------------------------------------------
# the chunk engine's trap scan
# ---------------------------------------------------------------------------

def compose_scan(build) -> dict:
    """Candidate-mask collection for the CPU's chunk engine.

    Composes one mask contributor per active trap mechanism; the
    per-segment hot path is a single ``collect`` call with no mechanism
    branching.  ``collect`` is None when no mechanism is active — the
    segment has no candidates by construction.
    """
    mechanisms = build.request.mechanisms
    use_ecc = "ecc" in mechanisms
    use_pages = "pages" in mechanisms
    use_breakpoints = "breakpoints" in mechanisms
    granule_shift = build.request.granule_shift

    parts = []
    if use_ecc:
        parts.append(
            lambda machine, table, vas, vpns, granules:
                machine.ecc.granule_trapped[granules]
        )
    if use_pages:
        parts.append(
            lambda machine, table, vas, vpns, granules:
                table.resident[vpns] & ~table.valid[vpns]
        )
    if use_breakpoints:
        parts.append(
            lambda machine, table, vas, vpns, granules:
                machine.breakpoints.check_chunk(vas)
        )

    if not parts:
        collect = None
    elif len(parts) == 1:
        collect = parts[0]
    else:
        def collect(machine, table, vas, vpns, granules):
            # each contributor returns a fresh bool array (fancy
            # indexing / elementwise ops), so |= mutates no shared state
            mask = parts[0](machine, table, vas, vpns, granules)
            for part in parts[1:]:
                mask |= part(machine, table, vas, vpns, granules)
            return mask

    if use_ecc:
        def granules_of(pas):
            return pas >> granule_shift
    else:
        def granules_of(pas):
            return None

    return {
        "collect": collect,
        "granules_of": granules_of,
        "use_ecc": use_ecc,
        "use_pages": use_pages,
        "use_breakpoints": use_breakpoints,
        "phase_name": None,
    }


#: capability path -> composer factory
COMPOSERS = {
    "dm": compose_cache_dm,
    "grouped": compose_cache_grouped,
    "general": compose_cache_general,
    "tlb_grouped": compose_tlb_grouped,
    "tlb_general": compose_tlb_general,
    "grid": compose_grid,
    "scan": compose_scan,
}
