"""The pass pipeline that compiles one kernel program.

pymtl3-style (SNIPPETS.md): simulation-as-passes, where each pass
consumes and extends one build context and the final pass emits the
compiled artifact.  The fixed order is

1. **normalize** — validate the request (kind known, geometry present,
   policy name legal);
2. **capability** — decide the kernel path and record why
   (:mod:`repro.caches.pipeline.capability`);
3. **select** — map the chosen path to its composer factory;
4. **compose** — close the specialized kernel over the configuration
   (:mod:`repro.caches.pipeline.compose`);
5. **bind_rescan** — attach the trap-rescan binding factory to scan
   kernels (lazy :class:`~repro.machine.chunkindex.PositionIndex`
   construction, phase-labelled);
6. **shim** — wrap the kernel in a profiling phase timer *only* when
   the request asked for one, so unprofiled kernels carry zero
   per-chunk session lookups;
7. **finalize** — fingerprint the request and assemble the immutable
   :class:`KernelProgram`.

Every pass is timed; the per-pass durations ride on the program and
feed the ``kernels.pipeline.compose_secs`` histograms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.caches.pipeline.capability import CapabilityReport, analyze
from repro.caches.pipeline.compose import COMPOSERS
from repro.caches.pipeline.request import (
    KERNEL_KINDS,
    KernelRequest,
    fingerprint_request,
)
from repro.caches.replacement import make_policy
from repro.errors import ConfigError


@dataclass
class KernelBuild:
    """Mutable state threaded through the passes."""

    request: KernelRequest
    capabilities: CapabilityReport | None = None
    composer: Callable | None = None
    fields: dict[str, Any] = field(default_factory=dict)
    pass_secs: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class KernelProgram:
    """One compiled, cacheable kernel.

    Stateless by construction: mutable simulation state comes from
    ``make_state`` and is threaded through ``run`` by the caller, so a
    single program serves every simulator of its configuration.
    """

    request: KernelRequest
    capabilities: CapabilityReport
    fingerprint: str
    pass_secs: dict[str, float]
    #: chunk kernels: (state, addresses/vpns, tid) -> misses
    run: Callable | None = None
    make_state: Callable | None = None
    resident_keys: Callable | None = None
    occupancy: Callable | None = None
    #: grid kernels: (state) -> exact per-cell misses + histograms
    extract: Callable | None = None
    #: scan kernels: candidate-mask collection + rescan binding
    collect: Callable | None = None
    granules_of: Callable | None = None
    bind_rescans: Callable | None = None
    use_ecc: bool = False
    use_pages: bool = False
    use_breakpoints: bool = False

    @property
    def is_fast(self) -> bool:
        return not self.capabilities.general

    def describe(self) -> str:
        return f"{self.request.kind}:{self.capabilities.describe()}"


class KernelPass:
    """One pipeline stage; subclasses mutate the build in ``apply``."""

    name = "pass"

    def apply(self, build: KernelBuild) -> None:
        raise NotImplementedError


class NormalizeRequestPass(KernelPass):
    name = "normalize"

    def apply(self, build: KernelBuild) -> None:
        request = build.request
        if request.kind not in KERNEL_KINDS:
            raise ConfigError(
                f"unknown kernel kind {request.kind!r}; "
                f"choose from {KERNEL_KINDS}"
            )
        if request.kind == "cache" and request.cache is None:
            raise ConfigError("cache kernel request carries no CacheConfig")
        if request.kind == "tlb" and request.tlb is None:
            raise ConfigError("tlb kernel request carries no TLBConfig")
        if request.kind == "grid":
            if request.grid is None:
                raise ConfigError("grid kernel request carries no GridConfig")
            if request.policy not in (None, "lru"):
                raise ConfigError(
                    f"grid sweeps are exact for LRU only (stack "
                    f"inclusion); got {request.policy!r} — run those "
                    f"configurations per-config instead"
                )
        if request.policy is not None:
            make_policy(request.policy)  # raises on unknown names


class CapabilityPass(KernelPass):
    name = "capability"

    def apply(self, build: KernelBuild) -> None:
        build.capabilities = analyze(build.request)


class SelectKernelPass(KernelPass):
    name = "select"

    def apply(self, build: KernelBuild) -> None:
        build.composer = COMPOSERS[build.capabilities.selected]


class ComposeKernelPass(KernelPass):
    name = "compose"

    def apply(self, build: KernelBuild) -> None:
        build.fields = build.composer(build)


class BindRescanPass(KernelPass):
    name = "bind_rescan"

    def apply(self, build: KernelBuild) -> None:
        if build.request.kind != "scan":
            return
        from repro.machine.chunkindex import RescanBinding

        use_ecc = build.fields["use_ecc"]
        use_pages = build.fields["use_pages"]

        def bind_rescans(granules, vpns):
            return (
                RescanBinding(granules, "granule") if use_ecc else None,
                RescanBinding(vpns, "vpn") if use_pages else None,
            )

        build.fields["bind_rescans"] = bind_rescans


class ShimPass(KernelPass):
    name = "shim"

    def apply(self, build: KernelBuild) -> None:
        phase_name = build.fields.pop("phase_name", None)
        if not build.request.profile or phase_name is None:
            return
        from repro.telemetry.profile import phase

        inner = build.fields.get("run")
        if inner is None:
            return

        def run(state, payload, tid: int = 0):
            with phase(phase_name):
                return inner(state, payload, tid)

        build.fields["run"] = run


class FinalizePass(KernelPass):
    name = "finalize"

    def apply(self, build: KernelBuild) -> None:
        build.fields["program"] = KernelProgram(
            request=build.request,
            capabilities=build.capabilities,
            fingerprint=fingerprint_request(build.request),
            pass_secs=build.pass_secs,
            **{
                key: value
                for key, value in build.fields.items()
                if key != "program"
            },
        )


#: the pipeline, in execution order
PIPELINE_PASSES: tuple[KernelPass, ...] = (
    NormalizeRequestPass(),
    CapabilityPass(),
    SelectKernelPass(),
    ComposeKernelPass(),
    BindRescanPass(),
    ShimPass(),
    FinalizePass(),
)


def run_pipeline(request: KernelRequest) -> KernelProgram:
    """Compile one request through every pass, timing each."""
    build = KernelBuild(request=request)
    for kernel_pass in PIPELINE_PASSES:
        start = time.perf_counter()
        kernel_pass.apply(build)
        build.pass_secs[kernel_pass.name] = (
            build.pass_secs.get(kernel_pass.name, 0.0)
            + time.perf_counter()
            - start
        )
    return build.fields["program"]
