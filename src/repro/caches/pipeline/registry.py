"""The keyed kernel registry: compile once, hand out forever.

``KernelRegistry.get`` is the only entry point the simulators use: it
keys an in-memory program cache directly on the (hashable)
:class:`~repro.caches.pipeline.request.KernelRequest`, so the hot
construction path of a cache-hit is one dict probe — no fingerprint
hashing, no pass execution.  A miss runs the full pass pipeline under a
``kernels.pipeline.compose`` phase timer, fingerprints the request
(config + :data:`~repro.caches.pipeline.request.KERNEL_CODE_VERSION`
salt) and optionally appends one record to a crash-consistent JSONL
compile ledger (default ``.kernel-cache/compiles.jsonl``) that the
``repro kernels stats|clear`` CLI reads across processes.

Telemetry: :meth:`KernelRegistry.publish_metrics` copies the registry's
activity *since the last publish* into a metrics registry —
``kernels.pipeline.compiles``, ``kernels.pipeline.lookups{hit=...}``
and a per-pass ``kernels.pipeline.compose_secs{pass_name=...}``
histogram — so per-run reports stay per-run even though the program
cache outlives any single run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.caches.pipeline.passes import KernelProgram, run_pipeline
from repro.caches.pipeline.request import KernelRequest
from repro.telemetry.profile import PROFILE_BUCKET_SECS, phase

#: where compile-ledger records land unless a caller overrides it
DEFAULT_LEDGER_DIR = Path(".kernel-cache")

#: the ledger file inside the ledger directory
LEDGER_NAME = "compiles.jsonl"


class KernelRegistry:
    """Per-process program cache plus optional on-disk compile ledger."""

    def __init__(self, ledger_dir: str | Path | None = None) -> None:
        self._programs: dict[KernelRequest, KernelProgram] = {}
        self.compiles = 0
        self.hits = 0
        self.misses = 0
        self.compile_secs = 0.0
        #: per-pass compose durations, one entry per compile
        self._pass_secs: dict[str, list[float]] = {}
        self._published = {"compiles": 0, "hits": 0, "misses": 0}
        self._published_pass_counts: dict[str, int] = {}
        self.ledger_dir = Path(ledger_dir) if ledger_dir else None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._programs)

    def get(self, request: KernelRequest) -> KernelProgram:
        """The compiled program for ``request`` (compile on first use)."""
        program = self._programs.get(request)
        if program is not None:
            self.hits += 1
            return program
        self.misses += 1
        start = time.perf_counter()
        with phase("kernels.pipeline.compose", kind=request.kind):
            program = run_pipeline(request)
        elapsed = time.perf_counter() - start
        self.compiles += 1
        self.compile_secs += elapsed
        for name, secs in program.pass_secs.items():
            self._pass_secs.setdefault(name, []).append(secs)
        self._programs[request] = program
        if self.ledger_dir is not None:
            self._ledger_append(program, elapsed)
        return program

    def clear(self) -> int:
        """Drop every cached program; returns how many were dropped."""
        dropped = len(self._programs)
        self._programs.clear()
        return dropped

    # ------------------------------------------------------------------
    # the on-disk compile ledger

    @property
    def ledger_path(self) -> Path | None:
        if self.ledger_dir is None:
            return None
        return self.ledger_dir / LEDGER_NAME

    def attach_ledger(self, ledger_dir: str | Path) -> None:
        """Start persisting compile records under ``ledger_dir``."""
        self.ledger_dir = Path(ledger_dir)

    def _ledger_append(self, program: KernelProgram, secs: float) -> None:
        from repro.atomicio import atomic_append_line

        record = {
            "fingerprint": program.fingerprint,
            "kind": program.request.kind,
            "selected": program.capabilities.selected,
            "reasons": list(program.capabilities.reasons),
            "policy": program.request.policy,
            "profile": program.request.profile,
            "compile_secs": round(secs, 6),
            "created_unix": time.time(),
        }
        atomic_append_line(
            self.ledger_path, json.dumps(record, sort_keys=True)
        )

    # ------------------------------------------------------------------

    def counters(self) -> dict:
        """The registry's lifetime totals, for stats displays."""
        return {
            "programs": len(self._programs),
            "compiles": self.compiles,
            "lookup_hits": self.hits,
            "lookup_misses": self.misses,
            "compile_secs": round(self.compile_secs, 6),
        }

    def publish_metrics(self, metrics) -> None:
        """Copy activity since the last publish into ``metrics``.

        Deltas, not lifetime totals: the program cache outlives any
        single run, and each telemetry session should see only the
        compiles/lookups its own run caused.
        """
        compiles = self.compiles - self._published["compiles"]
        hits = self.hits - self._published["hits"]
        misses = self.misses - self._published["misses"]
        if compiles:
            metrics.counter("kernels.pipeline.compiles").inc(compiles)
        if hits:
            metrics.counter(
                "kernels.pipeline.lookups", hit="true"
            ).inc(hits)
        if misses:
            metrics.counter(
                "kernels.pipeline.lookups", hit="false"
            ).inc(misses)
        self._published = {
            "compiles": self.compiles,
            "hits": self.hits,
            "misses": self.misses,
        }
        for name, values in self._pass_secs.items():
            seen = self._published_pass_counts.get(name, 0)
            fresh = values[seen:]
            if not fresh:
                continue
            histogram = metrics.histogram(
                "kernels.pipeline.compose_secs",
                bounds=PROFILE_BUCKET_SECS,
                pass_name=name,
            )
            for secs in fresh:
                histogram.observe(secs)
            self._published_pass_counts[name] = len(values)


# ---------------------------------------------------------------------------
# the process-wide default registry
# ---------------------------------------------------------------------------

_default: KernelRegistry | None = None


def default_registry() -> KernelRegistry:
    """The shared per-process registry every simulator compiles through."""
    global _default
    if _default is None:
        _default = KernelRegistry()
    return _default


def reset_default_registry() -> None:
    """Drop the shared registry (tests and long-lived services)."""
    global _default
    _default = None


def compile_kernel(
    request: KernelRequest, registry: KernelRegistry | None = None
) -> KernelProgram:
    """Compile (or fetch) one kernel through a registry."""
    return (registry or default_registry()).get(request)


# ---------------------------------------------------------------------------
# ledger reading (the ``repro kernels`` CLI, any process)
# ---------------------------------------------------------------------------

def read_ledger(ledger_dir: str | Path | None = None) -> list[dict]:
    """Every well-formed compile record in the ledger, oldest first."""
    path = Path(ledger_dir or DEFAULT_LEDGER_DIR) / LEDGER_NAME
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn pre-hardening tail; skip loudly-typed junk
        if isinstance(record, dict):
            records.append(record)
    return records


def clear_ledger(ledger_dir: str | Path | None = None) -> int:
    """Delete the compile ledger; returns how many records it held."""
    path = Path(ledger_dir or DEFAULT_LEDGER_DIR) / LEDGER_NAME
    dropped = len(read_ledger(ledger_dir))
    if path.exists():
        path.unlink()
    return dropped
