"""Kernel requests: the configuration tuple a compiled kernel answers.

A :class:`KernelRequest` is the *complete* input of kernel composition —
geometry, replacement policy, indexing, profiling shims, forced-general
overrides, active trap mechanisms.  It is frozen and hashable so the
registry can key its in-memory program cache directly on the request,
and canonical-JSON encodable (every field is a dataclass, enum, tuple or
scalar) so the same request also has a content-addressed fingerprint:
SHA-256 over the canonical encoding, salted with
:data:`KERNEL_CODE_VERSION`.  Bump the salt whenever composition
semantics change — stale fingerprints then stop matching in the compile
ledger and cross-process tooling never conflates two generations of
kernel code.

The policy is carried by *name*, not instance: composed kernels never
bake replacement state into the closure (the grouped paths need only
"is it LRU", and the general paths receive the caller's live policy
object through ``make_state``), so a seeded ``RandomPolicy``'s RNG
stream stays owned by the simulator instance that consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.config import CacheConfig, TLBConfig
from repro.errors import ConfigError

#: Salt mixed into every kernel fingerprint.  Bump the version suffix
#: whenever a change alters what the pipeline composes for a request.
KERNEL_CODE_VERSION = "repro-kernels-pipeline-v1"

#: the kinds of kernel the pipeline knows how to compose
KERNEL_KINDS = ("cache", "tlb", "dm_sweep", "scan")


@dataclass(frozen=True)
class KernelRequest:
    """One fully-normalized kernel configuration.

    ``kind`` selects the geometry field that applies (``cache``,
    ``tlb``, ``sweep`` — or none for ``scan``, which is configured by
    ``mechanisms`` + ``granule_shift``).  ``profile`` asks for a phase
    timer composed *around* the kernel; ``force_general`` pins the
    per-reference path regardless of capability analysis.
    """

    kind: str
    cache: CacheConfig | None = None
    tlb: TLBConfig | None = None
    sweep: tuple[CacheConfig, ...] = ()
    policy: str | None = None
    force_general: bool = False
    profile: bool = False
    mechanisms: tuple[str, ...] = ()
    granule_shift: int = 0


def _profile_default(profile: bool | None) -> bool:
    if profile is not None:
        return bool(profile)
    from repro.telemetry.profile import profiling_enabled

    return profiling_enabled()


def _policy_name(policy) -> str:
    name = getattr(policy, "name", None)
    if policy is None:
        name = "lru"
    if not isinstance(name, str):
        raise ConfigError(
            f"replacement policy {policy!r} has no name; kernels are "
            "keyed by policy name"
        )
    return name


def cache_request(
    config: CacheConfig,
    policy=None,
    force_general: bool = False,
    profile: bool | None = None,
) -> KernelRequest:
    """The request for one trace-driven cache chunk kernel.

    ``profile`` defaults to the active telemetry session's profiling
    flag at request time, so simulators built inside a ``--profile``
    run get the timed shims and everything else gets the bare kernel.
    """
    return KernelRequest(
        kind="cache",
        cache=config,
        policy=_policy_name(policy),
        force_general=bool(force_general),
        profile=_profile_default(profile),
    )


def tlb_request(
    config: TLBConfig,
    policy=None,
    force_general: bool = False,
    profile: bool | None = None,
) -> KernelRequest:
    """The request for one TLB chunk-access kernel."""
    return KernelRequest(
        kind="tlb",
        tlb=config,
        policy=_policy_name(policy),
        force_general=bool(force_general),
        profile=_profile_default(profile),
    )


def sweep_request(
    configs: tuple[CacheConfig, ...], profile: bool | None = None
) -> KernelRequest:
    """The request for one multi-size direct-mapped sweep kernel."""
    return KernelRequest(
        kind="dm_sweep",
        sweep=tuple(configs),
        profile=_profile_default(profile),
    )


def scan_request(
    use_ecc: bool,
    use_pages: bool,
    use_breakpoints: bool,
    granule_shift: int,
    profile: bool | None = None,
) -> KernelRequest:
    """The request for one chunk-engine trap-scan kernel."""
    mechanisms = tuple(
        name
        for name, active in (
            ("ecc", use_ecc),
            ("pages", use_pages),
            ("breakpoints", use_breakpoints),
        )
        if active
    )
    return KernelRequest(
        kind="scan",
        mechanisms=mechanisms,
        granule_shift=int(granule_shift),
        profile=_profile_default(profile),
    )


def fingerprint_request(request: KernelRequest) -> str:
    """Content address of one request under the current kernel code."""
    from repro.streams.keys import fingerprint_payload

    return fingerprint_payload(
        {"request": request, "salt": KERNEL_CODE_VERSION}
    )
