"""Kernel requests: the configuration tuple a compiled kernel answers.

A :class:`KernelRequest` is the *complete* input of kernel composition —
geometry, replacement policy, indexing, profiling shims, forced-general
overrides, active trap mechanisms.  It is frozen and hashable so the
registry can key its in-memory program cache directly on the request,
and canonical-JSON encodable (every field is a dataclass, enum, tuple or
scalar) so the same request also has a content-addressed fingerprint:
SHA-256 over the canonical encoding, salted with
:data:`KERNEL_CODE_VERSION`.  Bump the salt whenever composition
semantics change — stale fingerprints then stop matching in the compile
ledger and cross-process tooling never conflates two generations of
kernel code.

The policy is carried by *name*, not instance: composed kernels never
bake replacement state into the closure (the grouped paths need only
"is it LRU", and the general paths receive the caller's live policy
object through ``make_state``), so a seeded ``RandomPolicy``'s RNG
stream stays owned by the simulator instance that consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.config import CacheConfig, GridConfig, TLBConfig
from repro.errors import ConfigError

#: Salt mixed into every kernel fingerprint.  Bump the version suffix
#: whenever a change alters what the pipeline composes for a request.
#: v2: the bespoke dm_sweep kernel became the ways=(1,) column of the
#: all-associativity ``grid`` kind.
KERNEL_CODE_VERSION = "repro-kernels-pipeline-v2"

#: the kinds of kernel the pipeline knows how to compose
KERNEL_KINDS = ("cache", "tlb", "grid", "scan")


@dataclass(frozen=True)
class KernelRequest:
    """One fully-normalized kernel configuration.

    ``kind`` selects the geometry field that applies (``cache``,
    ``tlb``, ``grid`` — or none for ``scan``, which is configured by
    ``mechanisms`` + ``granule_shift``).  ``profile`` asks for a phase
    timer composed *around* the kernel; ``force_general`` pins the
    per-reference path regardless of capability analysis.
    """

    kind: str
    cache: CacheConfig | None = None
    tlb: TLBConfig | None = None
    grid: GridConfig | None = None
    policy: str | None = None
    force_general: bool = False
    profile: bool = False
    mechanisms: tuple[str, ...] = ()
    granule_shift: int = 0


def _profile_default(profile: bool | None) -> bool:
    if profile is not None:
        return bool(profile)
    from repro.telemetry.profile import profiling_enabled

    return profiling_enabled()


def _policy_name(policy) -> str:
    name = getattr(policy, "name", None)
    if policy is None:
        name = "lru"
    if not isinstance(name, str):
        raise ConfigError(
            f"replacement policy {policy!r} has no name; kernels are "
            "keyed by policy name"
        )
    return name


def cache_request(
    config: CacheConfig,
    policy=None,
    force_general: bool = False,
    profile: bool | None = None,
) -> KernelRequest:
    """The request for one trace-driven cache chunk kernel.

    ``profile`` defaults to the active telemetry session's profiling
    flag at request time, so simulators built inside a ``--profile``
    run get the timed shims and everything else gets the bare kernel.
    """
    return KernelRequest(
        kind="cache",
        cache=config,
        policy=_policy_name(policy),
        force_general=bool(force_general),
        profile=_profile_default(profile),
    )


def tlb_request(
    config: TLBConfig,
    policy=None,
    force_general: bool = False,
    profile: bool | None = None,
) -> KernelRequest:
    """The request for one TLB chunk-access kernel."""
    return KernelRequest(
        kind="tlb",
        tlb=config,
        policy=_policy_name(policy),
        force_general=bool(force_general),
        profile=_profile_default(profile),
    )


def grid_request(
    grid: GridConfig, policy=None, profile: bool | None = None
) -> KernelRequest:
    """The request for one all-associativity ``(sets × ways)`` sweep
    kernel.  Exact for LRU only (stack inclusion); the normalize pass
    rejects other policies — route those to per-config kernels."""
    return KernelRequest(
        kind="grid",
        grid=grid,
        policy=_policy_name(policy),
        profile=_profile_default(profile),
    )


def sweep_request(
    configs: tuple[CacheConfig, ...], profile: bool | None = None
) -> KernelRequest:
    """The request for one multi-size direct-mapped sweep kernel.

    Since the grid engine subsumed the bespoke dm_sweep kernel this is
    an adapter: the power-of-two DM sizes become the ``ways=(1,)``
    column of a :class:`~repro.caches.config.GridConfig` (a DM cache of
    ``S`` sets is exactly the 1-way column cell at set count ``S``).
    """
    configs = tuple(configs)
    if not configs:
        raise ConfigError("dm sweep request carries no configs")
    for config in configs:
        if config.associativity != 1:
            raise ConfigError(
                f"dm sweep requires direct-mapped configs, got "
                f"{config.describe()}"
            )
    line_sizes = {config.line_bytes for config in configs}
    indexings = {config.indexing for config in configs}
    if len(line_sizes) != 1 or len(indexings) != 1:
        raise ConfigError(
            "dm sweep configs must share one line size and indexing"
        )
    grid = GridConfig(
        set_counts=tuple(config.n_sets for config in configs),
        ways=(1,),
        line_bytes=configs[0].line_bytes,
        indexing=configs[0].indexing,
    )
    return grid_request(grid, profile=profile)


def scan_request(
    use_ecc: bool,
    use_pages: bool,
    use_breakpoints: bool,
    granule_shift: int,
    profile: bool | None = None,
) -> KernelRequest:
    """The request for one chunk-engine trap-scan kernel."""
    mechanisms = tuple(
        name
        for name, active in (
            ("ecc", use_ecc),
            ("pages", use_pages),
            ("breakpoints", use_breakpoints),
        )
        if active
    )
    return KernelRequest(
        kind="scan",
        mechanisms=mechanisms,
        granule_shift=int(granule_shift),
        profile=_profile_default(profile),
    )


def fingerprint_request(request: KernelRequest) -> str:
    """Content address of one request under the current kernel code."""
    from repro.streams.keys import fingerprint_payload

    return fingerprint_payload(
        {"request": request, "salt": KERNEL_CODE_VERSION}
    )
