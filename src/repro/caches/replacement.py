"""Replacement policies for the simulated structures.

A policy manipulates one set's entry list, which is kept in *policy
order*: index 0 is the most-protected entry and the last index is the next
victim.  ``tw_replace`` and the trace-driven search share these objects,
so both drivers displace the same victims — the property the cross-driver
validation tests pin down.
"""

from __future__ import annotations

import abc
import random
from typing import Hashable, List

from repro.errors import ConfigError

Key = Hashable


class ReplacementPolicy(abc.ABC):
    """Strategy for ordering one cache set's entries."""

    name: str

    @abc.abstractmethod
    def touch(self, entries: List[Key], index: int) -> None:
        """An entry was referenced (hit)."""

    @abc.abstractmethod
    def insert(self, entries: List[Key], key: Key) -> None:
        """Place a new entry; the set is known to have free room."""

    @abc.abstractmethod
    def victim_index(self, entries: List[Key]) -> int:
        """Which index to displace from a full set."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: hits move to the front, the back is evicted."""

    name = "lru"

    def touch(self, entries: List[Key], index: int) -> None:
        if index:
            entries.insert(0, entries.pop(index))

    def insert(self, entries: List[Key], key: Key) -> None:
        entries.insert(0, key)

    def victim_index(self, entries: List[Key]) -> int:
        return len(entries) - 1


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: hits do not reorder; oldest entry is evicted."""

    name = "fifo"

    def touch(self, entries: List[Key], index: int) -> None:
        pass

    def insert(self, entries: List[Key], key: Key) -> None:
        entries.insert(0, key)

    def victim_index(self, entries: List[Key]) -> int:
        return len(entries) - 1


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim, from a seeded stream for reproducibility."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def touch(self, entries: List[Key], index: int) -> None:
        pass

    def insert(self, entries: List[Key], key: Key) -> None:
        entries.insert(0, key)

    def victim_index(self, entries: List[Key]) -> int:
        return self._rng.randrange(len(entries))


_POLICIES = {
    LRUPolicy.name: LRUPolicy,
    FIFOPolicy.name: FIFOPolicy,
    RandomPolicy.name: RandomPolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Construct a policy by name (``lru``, ``fifo`` or ``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(seed)
    return cls()
