"""Single-pass stack simulation (Mattson et al., 1970).

Figure 1's caption points out that single-pass simulators "using stack
algorithms" have a more complex structure than either driver's core loop.
This module provides that third style for fully-associative LRU
structures: one pass over an address stream yields the miss ratio of
*every* capacity at once, via the LRU stack-distance distribution.  The
workload calibration tests also use it to pin the synthetic workloads'
locality profiles.

The stack search itself is the ``sets=1`` column of the grid engine:
:func:`~repro.caches.kernels.grouped_distance_pass` in unbounded mode
(``max_depth=None``), with first-touch references short-circuited
through :func:`~repro.caches.kernels.first_touch_mask` instead of a
full-stack scan — the same primitives
:mod:`repro.caches.gridsweep` runs per set count with capped stacks.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.caches.kernels import (
    collapse_consecutive,
    first_touch_mask,
    grouped_distance_pass,
)


class StackSimulator:
    """LRU stack-distance profiler for a line-granular address stream."""

    #: stack distance recorded for first-touch (compulsory) references
    COLD = -1

    def __init__(self, line_bytes: int = 16) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two: {line_bytes}")
        self.line_shift = line_bytes.bit_length() - 1
        self._stack: list[int] = []  # most recent first
        self._seen: set[int] = set()
        self.distances: Counter[int] = Counter()
        self.n_refs = 0

    def process(self, addresses: np.ndarray) -> None:
        """Fold a chunk of byte addresses into the distance profile."""
        lines = np.asarray(addresses, dtype=np.int64) >> self.line_shift
        n = len(lines)
        if n == 0:
            return
        self.n_refs += n
        cold_mask = first_touch_mask(lines, self._seen)
        # consecutive duplicates are guaranteed distance-0 references
        # that leave the stack unchanged
        keep = collapse_consecutive(lines, lines)
        kept = int(np.count_nonzero(keep))
        if kept < n:
            self.distances[0] += n - kept
        distances: list[int] = []
        cold, _ = grouped_distance_pass(
            [self._stack],
            None,  # unbounded: the full distance distribution
            [0] * kept,
            lines[keep].tolist(),
            cold_mask[keep].tolist(),
            distances,
        )
        if cold:
            self.distances[self.COLD] += cold
        self.distances.update(distances)

    def miss_ratio(self, capacity_lines: int) -> float:
        """Miss ratio of a ``capacity_lines``-line fully-associative LRU
        cache, from the recorded distance profile (cold misses count)."""
        if self.n_refs == 0:
            return 0.0
        misses = self.distances[self.COLD]
        misses += sum(
            count
            for distance, count in self.distances.items()
            if distance >= capacity_lines
        )
        return misses / self.n_refs

    def miss_curve(self, capacities: list[int]) -> dict[int, float]:
        """Miss ratios for several capacities from the single pass."""
        return {c: self.miss_ratio(c) for c in capacities}

    def footprint_lines(self) -> int:
        """Number of distinct lines ever touched."""
        return self.distances[self.COLD]
