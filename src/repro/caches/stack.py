"""Single-pass stack simulation (Mattson et al., 1970).

Figure 1's caption points out that single-pass simulators "using stack
algorithms" have a more complex structure than either driver's core loop.
This module provides that third style for fully-associative LRU
structures: one pass over an address stream yields the miss ratio of
*every* capacity at once, via the LRU stack-distance distribution.  The
workload calibration tests also use it to pin the synthetic workloads'
locality profiles.
"""

from __future__ import annotations

from collections import Counter

import numpy as np


class StackSimulator:
    """LRU stack-distance profiler for a line-granular address stream."""

    #: stack distance recorded for first-touch (compulsory) references
    COLD = -1

    def __init__(self, line_bytes: int = 16) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two: {line_bytes}")
        self.line_shift = line_bytes.bit_length() - 1
        self._stack: list[int] = []  # most recent first
        self._position: dict[int, int] = {}  # line -> approximate index
        self.distances: Counter[int] = Counter()
        self.n_refs = 0

    def process(self, addresses: np.ndarray) -> None:
        """Fold a chunk of byte addresses into the distance profile."""
        stack = self._stack
        distances = self.distances
        lines = np.asarray(addresses, dtype=np.int64) >> self.line_shift
        self.n_refs += len(lines)
        for line in lines.tolist():
            try:
                depth = stack.index(line)
            except ValueError:
                distances[self.COLD] += 1
                stack.insert(0, line)
                continue
            distances[depth] += 1
            if depth:
                stack.insert(0, stack.pop(depth))

    def miss_ratio(self, capacity_lines: int) -> float:
        """Miss ratio of a ``capacity_lines``-line fully-associative LRU
        cache, from the recorded distance profile (cold misses count)."""
        if self.n_refs == 0:
            return 0.0
        misses = self.distances[self.COLD]
        misses += sum(
            count
            for distance, count in self.distances.items()
            if distance >= capacity_lines
        )
        return misses / self.n_refs

    def miss_curve(self, capacities: list[int]) -> dict[int, float]:
        """Miss ratios for several capacities from the single pass."""
        return {c: self.miss_ratio(c) for c in capacities}

    def footprint_lines(self) -> int:
        """Number of distinct lines ever touched."""
        return self.distances[self.COLD]
