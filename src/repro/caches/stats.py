"""Miss/reference accounting, broken down by workload component.

Table 6 attributes misses to the user tasks, the BSD and X servers, and
the kernel; miss ratios there are "relative to the total number of
instructions in the workload, not just the instructions in a given
workload component."  :class:`CacheStats` carries enough to compute both
conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._types import Component


@dataclass
class CacheStats:
    """Counters for one simulated structure over one run."""

    misses: dict[Component, int] = field(
        default_factory=lambda: {c: 0 for c in Component}
    )
    refs: dict[Component, int] = field(
        default_factory=lambda: {c: 0 for c in Component}
    )
    #: misses whose trap was masked (kernel interrupt-mask bias)
    masked_misses: int = 0
    #: L2 misses when simulating a two-level hierarchy
    l2_misses: int = 0

    def count_miss(self, component: Component, n: int = 1) -> None:
        self.misses[component] += n

    def count_refs(self, component: Component, n: int) -> None:
        self.refs[component] += n

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_refs(self) -> int:
        return sum(self.refs.values())

    def miss_ratio(self, component: Component | None = None) -> float:
        """Misses per *total* reference (the Table 6 convention).

        Pass a component to get that component's contribution to the
        overall ratio; the per-component ratios plus interference then sum
        to the all-activity ratio, as in the paper.
        """
        total = self.total_refs
        if total == 0:
            return 0.0
        misses = (
            self.total_misses if component is None else self.misses[component]
        )
        return misses / total

    def local_miss_ratio(self, component: Component) -> float:
        """Misses per reference *of that component* (Figure 2 convention)."""
        refs = self.refs[component]
        if refs == 0:
            return 0.0
        return self.misses[component] / refs

    def merge(self, other: "CacheStats") -> None:
        for component in Component:
            self.misses[component] += other.misses[component]
            self.refs[component] += other.refs[component]
        self.masked_misses += other.masked_misses
        self.l2_misses += other.l2_misses

    def scaled_misses(self, factor: float) -> dict[Component, float]:
        """Miss counts extrapolated to paper scale (see DESIGN.md §2)."""
        return {c: self.misses[c] * factor for c in Component}
