"""The simulated TLB model.

Entries map ``(tid, superpage_number)`` and are organized into sets like a
cache (fully associative by default).  Variable page sizes (Table 2) are
handled by tagging entries with the *superpage* number — ``page_bytes``
may be any power-of-two multiple of the 4 KB machine page, in which case
several machine pages share one simulated entry, exactly how a
superpage-capable TLB would behave.
"""

from __future__ import annotations

import numpy as np

from repro._types import PAGE_SIZE
from repro.caches.config import TLBConfig
from repro.caches.pipeline import compile_kernel, tlb_request
from repro.caches.replacement import LRUPolicy, ReplacementPolicy

Key = tuple[int, int]  # (tid, superpage number)


class SimulatedTLB:
    """A simulated translation buffer maintained by ``tw_replace``."""

    def __init__(
        self,
        config: TLBConfig,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        self.config = config
        self.policy = policy or LRUPolicy()
        self._sets: list[list[Key]] = [[] for _ in range(config.n_sets)]
        self.searches = 0
        self.insertions = 0
        program = compile_kernel(tlb_request(config, self.policy))
        #: the pipeline's capability report: which chunk path, and why
        self.capabilities = program.capabilities
        self._chunk_run = program.run

    def superpage_of(self, vpn: int) -> int:
        """Collapse a machine-page VPN to its superpage number."""
        return vpn // self.config.pages_per_entry

    def _set_of(self, superpage: int) -> int:
        return superpage % self.config.n_sets

    def _locate(self, key: Key) -> tuple[list[Key], int]:
        entries = self._sets[self._set_of(key[1])]
        try:
            return entries, entries.index(key)
        except ValueError:
            return entries, -1

    def access(self, tid: int, vpn: int) -> tuple[bool, Key | None]:
        """Trace-driven path: search, replace on miss."""
        key = (tid, self.superpage_of(vpn))
        entries, way = self._locate(key)
        self.searches += 1
        if way >= 0:
            self.policy.touch(entries, way)
            return True, None
        return False, self._insert(entries, key)

    def access_chunk(self, tid: int, vpns: np.ndarray) -> int:
        """Trace-driven path over a whole chunk of VPNs; returns misses.

        Runs the kernel the pass pipeline compiled for this TLB's
        configuration: under LRU or FIFO replacement a grouped-set pass
        (stable sort by set, consecutive-duplicate collapse, per-run
        stack update) that is bit-identical to calling :meth:`access`
        per reference — including the ``searches``/``insertions``
        counters and the final entry state, which :meth:`miss_insert`
        shares.  Other policies get the exact per-reference loop; see
        ``self.capabilities`` for the decision.
        """
        return self._chunk_run(self, tid, vpns)

    def miss_insert(self, tid: int, vpn: int) -> Key | None:
        """Trap-driven path: insert a known-missing translation.

        Returns the displaced ``(tid, superpage)`` key, on which Tapeworm
        must set page traps (one per machine page of the superpage).
        """
        key = (tid, self.superpage_of(vpn))
        entries = self._sets[self._set_of(key[1])]
        return self._insert(entries, key)

    def _insert(self, entries: list[Key], key: Key) -> Key | None:
        self.insertions += 1
        displaced = None
        if len(entries) >= self.config.effective_associativity:
            victim = self.policy.victim_index(entries)
            displaced = entries.pop(victim)
        self.policy.insert(entries, key)
        return displaced

    def contains(self, tid: int, vpn: int) -> bool:
        _, way = self._locate((tid, self.superpage_of(vpn)))
        return way >= 0

    def evict(self, tid: int, vpn: int) -> bool:
        key = (tid, self.superpage_of(vpn))
        entries, way = self._locate(key)
        if way < 0:
            return False
        entries.pop(way)
        return True

    def flush_task(self, tid: int) -> list[Key]:
        """Remove every entry of one task (task exit / page-out)."""
        removed = []
        for entries in self._sets:
            kept = [key for key in entries if key[0] != tid]
            if len(kept) != len(entries):
                removed.extend(key for key in entries if key[0] == tid)
                entries[:] = kept
        return removed

    def machine_pages_of(self, key: Key) -> range:
        """The machine-page VPNs covered by one simulated entry."""
        base = key[1] * self.config.pages_per_entry
        return range(base, base + self.config.pages_per_entry)

    def resident_keys(self) -> set[Key]:
        return {key for entries in self._sets for key in entries}

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def __len__(self) -> int:
        return self.occupancy()
