"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    One trap-driven simulation with explicit parameters.
``trace``
    One Pixie+Cache2000 trace-driven simulation; ``trace merge`` folds
    several Chrome trace files into one Perfetto-ready view.
``reproduce``
    Regenerate a paper table or figure and print it.
``workloads``
    List the workload models and their Table 3/4 metadata.
``assess-port``
    Apply the Table 12 port-feasibility reasoning to one processor.
``farm``
    Inspect or clear the execution farm's result cache.
``streams``
    Inspect, clear or pre-warm the compiled reference-stream store.
``sample``
    Interval-sampling utilities: profile a stream into per-interval
    features, build a phase-clustered sampling plan, or summarize the
    sampled-run estimates recorded in the manifest log.
``telemetry``
    Inspect, validate or clear the run-manifest log; ``telemetry top``
    ranks the heaviest metric series (e.g. ``--prefix profile.``).
``chaos``
    Run a fault-injection plan and verify the detected-or-absorbed
    contract, or print the default plan as JSON to edit.

``run`` and ``reproduce`` also accept ``--fault-plan PLAN.json`` to
inject machine-plane faults (and, with ``--jobs``, worker faults) into
an ordinary simulation; without the flag the fault subsystem is inert
and results are bit-identical to a build without it.

``run`` and ``reproduce`` accept ``--trace-out`` (Chrome ``trace_event``
JSON for Perfetto — with ``--jobs`` the file carries the master's span
lane plus one lane per farm worker), ``--metrics-out`` (metrics-registry
snapshot JSON) and ``--manifest-out``; unless ``--no-manifest`` is
given, every invocation appends a run-manifest record next to the farm
cache.  ``--profile`` additionally times the simulator's hot-path
phases into ``profile.*`` histograms; results stay bit-identical.

``run``, ``trace`` and ``reproduce`` use the compiled reference-stream
store (``.stream-cache/``) by default: each workload's streams are
materialized once and memory-mapped on every later run, with results
bit-identical to live generation.  ``--no-stream-cache`` disables the
store (streams still compile in memory once per process and, with
``--jobs``, travel to workers over shared memory).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Mapping, Sequence

from repro import telemetry
from repro._types import Component, Indexing
from repro.caches.config import CacheConfig, TLBConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import ReproError
from repro.experiments import BUDGET_REFS
from repro.harness.runner import RunOptions, run_trace_driven, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import WORKLOAD_NAMES, all_workloads, get_workload

#: experiment name -> module under repro.experiments
EXPERIMENTS = {
    "figure1": "figure1",
    "table3_4": "table34",
    "figure2": "figure2",
    "table5": "table5",
    "figure3": "figure3",
    "table6": "table6",
    "table7": "table7",
    "table8": "table8",
    "table9": "table9",
    "table10": "table10",
    "figure4": "figure4",
    "table11": "table11",
    "table12": "table12",
    "tlb_extension": "tlb_extension",
}

#: experiments whose runners take no budget argument
_STATIC_EXPERIMENTS = {"figure1", "table11", "table12"}

#: experiments whose runners accept a ``farm`` for parallel/cached trials
_FARM_EXPERIMENTS = {"table7", "table8", "table9", "table10"}

#: experiments with an interval-sampled variant (``--sample-mode sampled``)
_SAMPLED_EXPERIMENTS = {"table7"}


def _parse_size(text: str) -> int:
    """'4K' / '64K' / '1M' / plain bytes -> bytes."""
    text = text.strip().upper()
    multiplier = 1
    if text.endswith("K"):
        multiplier, text = 1024, text[:-1]
    elif text.endswith("M"):
        multiplier, text = 1024 * 1024, text[:-1]
    try:
        return int(text) * multiplier
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size: {text!r}") from None


def _int_list(text: str) -> tuple[int, ...]:
    """'64,128,256' -> (64, 128, 256)."""
    try:
        values = tuple(
            int(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad integer list: {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError(f"empty integer list: {text!r}")
    return values


def _components(names: str) -> frozenset[Component]:
    if names == "all":
        return frozenset(Component)
    mapping = {
        "user": Component.USER,
        "kernel": Component.KERNEL,
        "bsd": Component.BSD_SERVER,
        "x": Component.X_SERVER,
    }
    try:
        return frozenset(mapping[n] for n in names.split(","))
    except KeyError as exc:
        raise argparse.ArgumentTypeError(
            f"unknown component {exc.args[0]!r}; use user,kernel,bsd,x or all"
        ) from None


def _add_stream_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("stream store")
    group.add_argument(
        "--no-stream-cache", action="store_true",
        help="do not persist compiled reference streams to disk "
             "(results are identical; streams recompile per process)",
    )
    group.add_argument(
        "--stream-dir", default=None, metavar="DIR",
        help="stream store directory (default .stream-cache/)",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the trap-level event trace as Chrome trace_event JSON "
             "(open in Perfetto; '-' for stdout)",
    )
    group.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics-registry snapshot as JSON ('-' for stdout)",
    )
    group.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="run-manifest JSONL log (default: "
             f"{telemetry.DEFAULT_MANIFEST_PATH}; '-' for stdout)",
    )
    group.add_argument(
        "--no-manifest", action="store_true",
        help="do not append a run-manifest record",
    )
    group.add_argument(
        "--trace-capacity", type=int, default=telemetry.DEFAULT_TRACE_CAPACITY,
        metavar="N", help="event ring-buffer capacity (oldest dropped beyond it)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="time the simulator's hot-path phases into profile.* "
             "histograms and span events (results stay bit-identical; "
             "implies an active telemetry session)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tapeworm II (ASPLOS 1994) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one trap-driven simulation")
    run.add_argument("--workload", choices=WORKLOAD_NAMES, default="mpeg_play")
    run.add_argument("--structure", choices=("cache", "tlb"), default="cache")
    run.add_argument("--cache-size", type=_parse_size, default=4096)
    run.add_argument("--line-bytes", type=int, default=16)
    run.add_argument("--associativity", type=int, default=1)
    run.add_argument(
        "--indexing", choices=("physical", "virtual"), default="physical"
    )
    run.add_argument("--tlb-entries", type=int, default=64)
    run.add_argument("--page-bytes", type=_parse_size, default=4096)
    run.add_argument("--replacement", default="lru")
    run.add_argument("--sampling", type=int, default=1, metavar="K")
    run.add_argument("--refs", type=int, default=300_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--simulate", type=_components, default=frozenset(Component),
        help="components to register: comma list of user,kernel,bsd,x or 'all'",
    )
    run.add_argument(
        "--fault-plan", metavar="PLAN.json", default=None,
        help="inject the machine-plane faults of this plan into the run "
             "and audit the trap invariant at the plan's cadence",
    )
    _add_stream_flags(run)
    _add_telemetry_flags(run)

    trace = sub.add_parser(
        "trace",
        help="one Pixie+Cache2000 simulation, or 'trace merge' to "
             "combine Chrome trace files",
    )
    trace.add_argument("--workload", choices=WORKLOAD_NAMES, default="mpeg_play")
    trace.add_argument("--cache-size", type=_parse_size, default=4096)
    trace.add_argument("--line-bytes", type=int, default=16)
    trace.add_argument("--associativity", type=int, default=1)
    trace.add_argument("--sampling", type=int, default=1)
    trace.add_argument("--refs", type=int, default=300_000)
    _add_stream_flags(trace)
    trace_sub = trace.add_subparsers(dest="trace_command")
    t_merge = trace_sub.add_parser(
        "merge",
        help="merge Chrome trace_event files (e.g. several runs' "
             "--trace-out) into one, lanes kept apart",
    )
    t_merge.add_argument(
        "inputs", nargs="+", metavar="TRACE.json",
        help="Chrome trace files to merge",
    )
    t_merge.add_argument(
        "--out", default="-", metavar="PATH",
        help="merged trace destination (default: stdout)",
    )

    reproduce = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    reproduce.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"]
    )
    reproduce.add_argument(
        "--budget", choices=tuple(sorted(BUDGET_REFS)), default="quick"
    )
    reproduce.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run multi-trial experiments on an N-worker farm "
             "(with result caching; default: serial, no farm)",
    )
    reproduce.add_argument(
        "--no-cache", action="store_true",
        help="bypass the farm's result cache (only meaningful with --jobs)",
    )
    reproduce.add_argument(
        "--fault-plan", metavar="PLAN.json", default=None,
        help="inject the plan's machine-plane faults into every trial and "
             "its worker faults into the farm (with --jobs)",
    )
    sampling_group = reproduce.add_argument_group("interval sampling")
    sampling_group.add_argument(
        "--sample-mode", choices=("exact", "sampled"), default="exact",
        help="'sampled' runs supporting experiments (table7) through "
             "repro.sampling: only representative intervals are simulated "
             "and every result is an estimate with a 95%% CI "
             "(incompatible with --fault-plan)",
    )
    sampling_group.add_argument(
        "--interval-refs", type=int, default=None, metavar="N",
        help="references per sampling interval "
             "(default: budget/32, floored at one scheduler chunk)",
    )
    sampling_group.add_argument(
        "--max-phases", type=int, default=4, metavar="K",
        help="phase-count ceiling for the BIC model selection",
    )
    _add_stream_flags(reproduce)
    _add_telemetry_flags(reproduce)

    farm = sub.add_parser("farm", help="execution-farm cache utilities")
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)
    stats = farm_sub.add_parser("stats", help="show cache contents and counters")
    stats.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default .farm-cache/)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the counters as a JSON object (machine-readable)",
    )
    clear = farm_sub.add_parser("clear", help="drop every cached result")
    clear.add_argument("--cache-dir", default=None, metavar="DIR")

    kernels = sub.add_parser(
        "kernels", help="compiled-kernel pipeline utilities"
    )
    kernels_sub = kernels.add_subparsers(dest="kernels_command", required=True)
    k_stats = kernels_sub.add_parser(
        "stats", help="show compile-ledger and registry counters"
    )
    k_stats.add_argument(
        "--ledger-dir", default=None, metavar="DIR",
        help="compile-ledger directory (default .kernel-cache/)",
    )
    k_stats.add_argument(
        "--json", action="store_true",
        help="emit the counters as a JSON object (machine-readable)",
    )
    k_clear = kernels_sub.add_parser(
        "clear", help="drop the compile ledger"
    )
    k_clear.add_argument("--ledger-dir", default=None, metavar="DIR")

    streams = sub.add_parser(
        "streams", help="compiled reference-stream store utilities"
    )
    streams_sub = streams.add_subparsers(dest="streams_command", required=True)
    s_stats = streams_sub.add_parser(
        "stats", help="show stored blobs and byte totals"
    )
    s_stats.add_argument(
        "--stream-dir", default=None, metavar="DIR",
        help="stream store directory (default .stream-cache/)",
    )
    s_stats.add_argument(
        "--json", action="store_true",
        help="emit the counters as a JSON object (machine-readable)",
    )
    s_clear = streams_sub.add_parser(
        "clear", help="drop every compiled stream blob"
    )
    s_clear.add_argument("--stream-dir", default=None, metavar="DIR")
    s_warm = streams_sub.add_parser(
        "warm", help="precompile workload streams into the store"
    )
    s_warm.add_argument(
        "--workload", default="all",
        choices=tuple(WORKLOAD_NAMES) + ("all",),
        help="workload to compile (default: all registered workloads)",
    )
    s_warm.add_argument(
        "--budget", choices=tuple(sorted(BUDGET_REFS)), default="quick",
        help="reference budget the blobs are sized for",
    )
    s_warm.add_argument(
        "--refs", type=int, default=None, metavar="N",
        help="explicit reference budget (overrides --budget)",
    )
    s_warm.add_argument(
        "--data", action="store_true",
        help="also compile the data-interleaved (TLB) stream variants",
    )
    s_warm.add_argument("--stream-dir", default=None, metavar="DIR")

    tele = sub.add_parser(
        "telemetry", help="run-manifest and telemetry utilities"
    )
    tele_sub = tele.add_subparsers(dest="telemetry_command", required=True)
    manifests = tele_sub.add_parser(
        "manifests", help="list recorded run manifests"
    )
    manifests.add_argument(
        "--manifest-path", default=None, metavar="PATH",
        help=f"manifest log (default {telemetry.DEFAULT_MANIFEST_PATH})",
    )
    manifests.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="show only the most recent N records",
    )
    manifests.add_argument(
        "--json", action="store_true", help="emit raw JSONL records"
    )
    validate = tele_sub.add_parser(
        "validate", help="schema-check every record in the manifest log"
    )
    validate.add_argument("--manifest-path", default=None, metavar="PATH")
    top = tele_sub.add_parser(
        "top",
        help="rank metric series by weight (histograms by total, "
             "counters by value) from a snapshot or the manifest log",
    )
    top.add_argument(
        "--metrics", default=None, metavar="SNAPSHOT.json",
        help="metrics snapshot (a --metrics-out file); default: the "
             "latest manifest record's metrics block",
    )
    top.add_argument(
        "--manifest-path", default=None, metavar="PATH",
        help=f"manifest log (default {telemetry.DEFAULT_MANIFEST_PATH})",
    )
    top.add_argument(
        "--prefix", default="", metavar="NAME",
        help="only series whose key starts with NAME (e.g. 'profile.')",
    )
    top.add_argument(
        "-n", "--limit", type=int, default=20, metavar="N",
        help="show the top N series (default 20)",
    )
    top.add_argument("--json", action="store_true", help="emit JSON")
    tele_clear = tele_sub.add_parser(
        "clear", help="drop the run-manifest log"
    )
    tele_clear.add_argument("--manifest-path", default=None, metavar="PATH")

    chaos = sub.add_parser(
        "chaos", help="fault-injection runs and plan utilities"
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run",
        help="execute a fault plan; exit non-zero on any silent fault",
    )
    chaos_run.add_argument(
        "--plan", metavar="PLAN.json", default=None,
        help="fault plan to execute (default: the built-in default plan)",
    )
    chaos_run.add_argument(
        "--workload", choices=WORKLOAD_NAMES, default="mpeg_play"
    )
    chaos_run.add_argument(
        "--refs", type=int, default=None, metavar="N",
        help="trap-driven budget per machine-plane fault class",
    )
    chaos_run.add_argument("--seed", type=int, default=0)
    chaos_run.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="also write the full report as JSON ('-' for stdout)",
    )
    chaos_run.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of the text rendering",
    )
    chaos_sub.add_parser(
        "plan", help="print the default fault plan as editable JSON"
    )

    serve = sub.add_parser(
        "serve",
        help="run a batch through the supervised, crash-recoverable farm "
             "service (journal + supervisor + admission + GC)",
    )
    serve.add_argument(
        "--measure", default="chaos.probe", metavar="NAME",
        help="registered measure every job runs (default: the chaos probe)",
    )
    serve.add_argument(
        "--seeds", type=int, default=8, metavar="N",
        help="submit one job per seed 0..N-1 (0 = no new batch, "
             "e.g. a resume-only invocation)",
    )
    serve.add_argument(
        "--params", default=None, metavar="JSON",
        help="JSON object of keyword params passed to every job's measure",
    )
    serve.add_argument(
        "--jobs", type=int, default=2, metavar="W",
        help="pool worker processes (default 2)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="farm cache + journal directory (default .farm-cache/)",
    )
    serve.add_argument(
        "--client", default="cli", metavar="ID",
        help="client id for fair-share admission",
    )
    serve.add_argument(
        "--batch", default="", metavar="LABEL",
        help="batch label recorded in the journal",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="first replay unfinished journaled work from a previous "
             "(possibly SIGKILLed) service run, exactly once",
    )
    serve.add_argument(
        "--cache-budget", type=int, default=None, metavar="BYTES",
        help="after the batch, GC every cache tier down to BYTES per "
             "tier (journal-leased entries are pinned)",
    )
    serve.add_argument(
        "--stream-dir", default=None, metavar="DIR",
        help="also GC this stream-store directory",
    )
    serve.add_argument(
        "--kernel-dir", default=None, metavar="DIR",
        help="also GC this compile-ledger directory",
    )
    serve.add_argument(
        "--shard", action="store_true",
        help="migrate the stream tier into two-level shard dirs during GC",
    )
    serve.add_argument(
        "--compact", action="store_true",
        help="drop retired (done) journal entries after the run",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="emit the full service report as JSON",
    )

    jobs = sub.add_parser(
        "jobs", help="job-journal utilities (list, retry, gc)"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    j_list = jobs_sub.add_parser(
        "list", help="show the journal's job table"
    )
    j_list.add_argument("--cache-dir", default=None, metavar="DIR")
    j_list.add_argument(
        "--state", default=None,
        choices=("queued", "leased", "done", "failed", "poisoned"),
        help="only jobs in this state",
    )
    j_list.add_argument("--json", action="store_true")
    j_retry = jobs_sub.add_parser(
        "retry",
        help="requeue every failed/poisoned job and re-run it serially",
    )
    j_retry.add_argument("--cache-dir", default=None, metavar="DIR")
    j_retry.add_argument("--json", action="store_true")
    j_gc = jobs_sub.add_parser(
        "gc", help="size-budgeted cache GC with journal pins held"
    )
    j_gc.add_argument(
        "--cache-budget", type=int, required=True, metavar="BYTES",
        help="per-tier byte budget (0 = evict everything unpinned)",
    )
    j_gc.add_argument("--cache-dir", default=None, metavar="DIR")
    j_gc.add_argument("--stream-dir", default=None, metavar="DIR")
    j_gc.add_argument("--kernel-dir", default=None, metavar="DIR")
    j_gc.add_argument(
        "--shard", action="store_true",
        help="migrate the stream tier into two-level shard dirs",
    )
    j_gc.add_argument("--json", action="store_true")

    sample = sub.add_parser(
        "sample", help="interval-sampling utilities (profile, plan, stats)"
    )
    sample_sub = sample.add_subparsers(dest="sample_command", required=True)

    def _add_sample_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", choices=WORKLOAD_NAMES, default="mpeg_play")
        p.add_argument(
            "--budget", choices=tuple(sorted(BUDGET_REFS)), default="quick"
        )
        p.add_argument(
            "--refs", type=int, default=None, metavar="N",
            help="explicit reference budget (overrides --budget)",
        )
        p.add_argument(
            "--interval-refs", type=int, default=None, metavar="N",
            help="references per interval (default: budget/32, floored at "
                 "one scheduler chunk)",
        )
        p.add_argument("--json", action="store_true", help="emit JSON")
        _add_stream_flags(p)

    sm_profile = sample_sub.add_parser(
        "profile", help="per-interval feature vectors of one workload"
    )
    _add_sample_common(sm_profile)
    sm_plan = sample_sub.add_parser(
        "plan", help="cluster a profile into phases and select intervals"
    )
    _add_sample_common(sm_plan)
    sm_plan.add_argument(
        "--max-phases", type=int, default=4, metavar="K",
        help="phase-count ceiling for the BIC model selection",
    )
    sm_plan.add_argument(
        "--per-phase", type=int, default=3, metavar="M",
        help="sampled intervals per phase (centroid + M-1 random)",
    )
    sm_plan.add_argument("--seed", type=int, default=0)
    sm_plan.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the plan as JSON ('-' for stdout)",
    )
    sm_stats = sample_sub.add_parser(
        "stats", help="summarize sampled-run estimates in the manifest log"
    )
    sm_stats.add_argument(
        "--manifest-path", default=None, metavar="PATH",
        help=f"manifest log (default {telemetry.DEFAULT_MANIFEST_PATH})",
    )
    sm_stats.add_argument("--json", action="store_true", help="emit JSON")

    sweep = sub.add_parser(
        "sweep", help="one-pass multi-configuration sweeps"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sw_grid = sweep_sub.add_parser(
        "grid",
        help="all-associativity (sets × ways) LRU grid from one "
             "stack-distance pass per set count, bit-equal to running "
             "every configuration separately",
    )
    sw_grid.add_argument(
        "--workload", choices=WORKLOAD_NAMES, default="mpeg_play"
    )
    sw_grid.add_argument(
        "--sets", type=_int_list, default=(64, 128, 256, 512),
        metavar="S1,S2,...", help="power-of-two set counts (grid rows)",
    )
    sw_grid.add_argument(
        "--ways", type=_int_list, default=(1, 2, 4, 8),
        metavar="A1,A2,...",
        help="power-of-two associativities (grid columns)",
    )
    sw_grid.add_argument(
        "--line", type=_parse_size, default=16, metavar="BYTES",
        help="line size (default 16)",
    )
    sw_grid.add_argument(
        "--indexing", choices=("physical", "virtual"), default="physical"
    )
    sw_grid.add_argument(
        "--budget", choices=tuple(sorted(BUDGET_REFS)), default="quick"
    )
    sw_grid.add_argument(
        "--refs", type=int, default=None, metavar="N",
        help="explicit reference budget (overrides --budget)",
    )
    sw_grid.add_argument("--seed", type=int, default=0)
    sw_grid.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="farm workers for the (single) sweep job; 1 runs in-process",
    )
    sw_grid.add_argument(
        "--no-cache", action="store_true",
        help="bypass the farm result cache",
    )
    sw_grid.add_argument("--json", action="store_true", help="emit JSON")
    _add_stream_flags(sw_grid)
    _add_telemetry_flags(sw_grid)

    sub.add_parser("workloads", help="list workload models")

    profile = sub.add_parser(
        "profile", help="locality profile of one workload's streams"
    )
    profile.add_argument("workload", choices=WORKLOAD_NAMES)
    profile.add_argument("--refs", type=int, default=60_000)

    assess = sub.add_parser(
        "assess-port", help="Table 12 feasibility for one processor"
    )
    assess.add_argument("processor")

    return parser


# ---------------------------------------------------------------------------
# telemetry plumbing shared by ``run`` and ``reproduce``
# ---------------------------------------------------------------------------


def _write_or_print(target: str, payload: str) -> None:
    if target == "-":
        print(payload)
    else:
        from pathlib import Path

        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload + "\n")


def _begin_telemetry(args: argparse.Namespace):
    """Activate a session when any telemetry output is wanted."""
    wanted = (
        args.trace_out
        or args.metrics_out
        or args.manifest_out
        or args.profile
        or not args.no_manifest
    )
    if not wanted:
        return None
    return telemetry.activate(
        telemetry.TelemetrySession(
            trace_capacity=args.trace_capacity, profile=args.profile
        )
    )


def _finish_telemetry(
    args: argparse.Namespace,
    session,
    manifests: Sequence[telemetry.RunManifest],
) -> None:
    """Deactivate and export: trace, metrics snapshot, manifest records."""
    if session is None:
        return
    telemetry.deactivate()
    session.finalize()
    if args.metrics_out:
        _write_or_print(
            args.metrics_out,
            json.dumps(session.metrics.snapshot(), indent=2, sort_keys=True),
        )
    if args.trace_out:
        # events + master span lane + one lane per farm worker
        _write_or_print(
            args.trace_out, json.dumps(telemetry.merged_chrome_trace(session))
        )
    if args.no_manifest:
        return
    for manifest in manifests:
        if args.manifest_out == "-":
            print(json.dumps(manifest.record(), sort_keys=True))
        else:
            telemetry.write_manifest(manifest, args.manifest_out)


def _begin_streams(args: argparse.Namespace):
    """Activate the process-wide stream session for a simulation command.

    On by default: compiled streams are bit-identical to live generation
    and strictly faster on reuse.  ``--no-stream-cache`` keeps the
    session but disables the on-disk store, so nothing persists (and
    composes cleanly with the farm's ``--no-cache``, which governs the
    *result* cache — the two stores are independent).
    """
    from repro.streams import StreamSession, StreamStore
    from repro.streams import activate as activate_streams
    from repro.streams.store import DEFAULT_STORE_DIR

    directory = args.stream_dir or DEFAULT_STORE_DIR
    return activate_streams(
        StreamSession(
            store=StreamStore(directory, enabled=not args.no_stream_cache)
        )
    )


def _finish_streams(session, telemetry_session) -> None:
    if session is None:
        return
    from repro.streams import deactivate as deactivate_streams

    if telemetry_session is not None:
        session.publish_metrics(telemetry_session.metrics)
    deactivate_streams()


def _load_fault_plan(args: argparse.Namespace):
    """The plan named by ``--fault-plan``, or None when faults are off."""
    if getattr(args, "fault_plan", None) is None:
        return None
    from repro.faults import load_plan

    return load_plan(args.fault_plan)


def _print_fault_summary(session) -> None:
    """One line per run: what landed, what the auditor saw."""
    for record in session.runs:
        applied = record.injector.injections_applied()
        divergences = record.divergences()
        # a persistent divergence re-reports every audit; show each once
        unique: dict[tuple, Any] = {}
        for divergence in divergences:
            key = (divergence.kind, divergence.granule, divergence.tid,
                   divergence.vpn)
            unique.setdefault(key, divergence)
        print(
            f"faults        : {applied} injected, "
            f"{len(record.reports)} audit(s), "
            f"{len(divergences)} divergence(s) "
            f"({len(unique)} distinct)"
        )
        for divergence in unique.values():
            print(f"  divergence  : {divergence.describe()}")


def _cmd_run(args: argparse.Namespace) -> int:
    _attach_kernel_ledger()
    spec = get_workload(args.workload)
    if args.structure == "tlb":
        config = TapewormConfig(
            structure="tlb",
            tlb=TLBConfig(
                n_entries=args.tlb_entries, page_bytes=args.page_bytes
            ),
            replacement=args.replacement,
            sampling=args.sampling,
            sampling_seed=args.seed,
        )
    else:
        config = TapewormConfig(
            cache=CacheConfig(
                size_bytes=args.cache_size,
                line_bytes=args.line_bytes,
                associativity=args.associativity,
                indexing=Indexing(args.indexing),
            ),
            replacement=args.replacement,
            sampling=args.sampling,
            sampling_seed=args.seed,
        )
    options = RunOptions(
        total_refs=args.refs,
        trial_seed=args.seed,
        simulate=args.simulate,
        include_data_refs=args.structure == "tlb",
    )
    fault_plan = _load_fault_plan(args)
    session = _begin_telemetry(args)
    stream_session = _begin_streams(args)
    started = time.perf_counter()
    fault_session = None
    try:
        if fault_plan is not None:
            from repro.faults import activate as activate_faults

            fault_session = activate_faults(fault_plan)
        report = run_trap_driven(spec, config, options)
    except BaseException:
        if session is not None:
            telemetry.deactivate()
        _finish_streams(stream_session, None)
        raise
    finally:
        if fault_session is not None:
            from repro.faults import deactivate as deactivate_faults

            deactivate_faults()
    _finish_streams(stream_session, session)
    manifest = telemetry.RunManifest(
        kind="run",
        name=report.workload,
        configuration=report.configuration,
        config_hash=telemetry.config_hash(config),
        seed=args.seed,
        wall_clock_secs=time.perf_counter() - started,
        metrics=session.metrics.snapshot() if session is not None else {},
        results={
            "misses": report.stats.total_misses,
            "estimated_misses": report.estimated_misses,
            "slowdown": report.slowdown,
            "overhead_cycles": report.overhead_cycles,
            "traps": report.traps,
            "page_faults": report.page_faults,
            "ticks": report.ticks,
        },
    )
    print(f"workload      : {report.workload}")
    print(f"configuration : {report.configuration}")
    print(f"references    : {report.total_refs:,}")
    print(f"misses        : {report.stats.total_misses:,}")
    if report.sampling > 1:
        print(f"estimated     : {report.estimated_misses:,.0f} (x{report.sampling})")
    for component in Component:
        print(
            f"  {component.value:<12}: {report.stats.misses[component]:>8,} "
            f"(local ratio {report.local_miss_ratio(component):.4f})"
        )
    print(f"slowdown      : {report.slowdown:.2f}x")
    print(f"paper scale   : {report.misses_paper_scale() / 1e6:.2f}M misses")
    if fault_session is not None:
        _print_fault_summary(fault_session)
    _finish_telemetry(args, session, [manifest])
    return 0


def _cmd_trace_merge(args: argparse.Namespace) -> int:
    """Merge several Chrome trace files into one Perfetto-ready view."""
    from pathlib import Path

    payloads = []
    for name in args.inputs:
        try:
            payloads.append(json.loads(Path(name).read_text()))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {name}: {exc}", file=sys.stderr)
            return 2
    merged = telemetry.merge_chrome_traces(payloads)
    _write_or_print(args.out, json.dumps(merged))
    if args.out != "-":
        print(
            f"merged {len(payloads)} trace(s), "
            f"{len(merged['traceEvents'])} event(s) -> {args.out}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if getattr(args, "trace_command", None) == "merge":
        return _cmd_trace_merge(args)
    _attach_kernel_ledger()
    spec = get_workload(args.workload)
    config = CacheConfig(
        size_bytes=args.cache_size,
        line_bytes=args.line_bytes,
        associativity=args.associativity,
    )
    stream_session = _begin_streams(args)
    try:
        report = run_trace_driven(
            spec, config, args.refs, sampling=args.sampling
        )
    finally:
        _finish_streams(stream_session, None)
    print(f"workload      : {report.workload}")
    print(f"configuration : {report.configuration}")
    print(f"refs traced   : {report.refs_traced:,}")
    print(f"misses        : {report.misses:,}")
    print(f"miss ratio    : {report.miss_ratio:.4f}")
    print(f"slowdown      : {report.slowdown:.2f}x")
    return 0


def _reproduce_one(
    name: str, budget: str, farm=None, sample: Mapping[str, Any] | None = None
) -> dict[str, dict] | None:
    """Run and print one experiment; returns its ``estimates`` block
    (manifest schema v2) for sampled runs, None for exact ones."""
    import importlib

    module = importlib.import_module(f"repro.experiments.{EXPERIMENTS[name]}")
    if sample is not None and name in _SAMPLED_EXPERIMENTS:
        result = module.run_table7_sampled(
            budget,
            farm=farm,
            interval_refs=sample.get("interval_refs"),
            max_phases=sample.get("max_phases", 4),
        )
        print(module.render_sampled(result))
        return {
            f"{workload}.{metric}": estimate.to_manifest()
            for workload, sampled in sorted(result.results.items())
            for metric, estimate in sorted(sampled.estimates.items())
        }
    runner = getattr(module, f"run_{EXPERIMENTS[name]}")
    if name in _STATIC_EXPERIMENTS:
        result = runner()
    elif farm is not None and name in _FARM_EXPERIMENTS:
        result = runner(budget, farm=farm)
    else:
        result = runner(budget)
    print(module.render(result))
    return None


def _build_farm(args: argparse.Namespace, fault_plan=None, stream_session=None):
    if args.jobs is None:
        return None
    from repro.farm import Farm, FarmConfig

    worker_faults = None
    if fault_plan is not None:
        from repro.faults.infra import WorkerFaults

        worker_faults = WorkerFaults.from_plan(fault_plan)
    stream_transport = None
    if stream_session is not None:
        stream_transport = stream_session.transport()
    return Farm(
        FarmConfig(
            max_workers=args.jobs,
            use_cache=not args.no_cache,
            worker_faults=worker_faults,
            stream_transport=stream_transport,
        )
    )


def _cmd_reproduce(args: argparse.Namespace) -> int:
    _attach_kernel_ledger()
    fault_plan = _load_fault_plan(args)
    sample = None
    if args.sample_mode == "sampled":
        if fault_plan is not None:
            from repro.errors import ConfigError

            raise ConfigError(
                "--sample-mode sampled is incompatible with --fault-plan: "
                "fault experiments must simulate every reference "
                "(injected faults mutate shared warm state)"
            )
        sample = {
            "interval_refs": args.interval_refs,
            "max_phases": args.max_phases,
        }
    stream_session = _begin_streams(args)
    farm = _build_farm(args, fault_plan, stream_session)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    session = _begin_telemetry(args)
    fault_session = None
    if fault_plan is not None:
        from repro.faults import activate as activate_faults

        fault_session = activate_faults(fault_plan)
    manifests = []
    try:
        for name in names:
            started = time.perf_counter()
            estimates = _reproduce_one(name, args.budget, farm, sample)
            if args.experiment == "all":
                print()
            results: dict[str, Any] = {
                "experiment": name,
                "budget": args.budget,
                "budget_refs": BUDGET_REFS.get(args.budget, 0),
            }
            if estimates is not None:
                results["sample_mode"] = "sampled"
            if farm is not None and farm.last_run is not None:
                results["farm"] = farm.last_run.summary()
            if stream_session is not None and session is not None:
                stream_session.publish_metrics(session.metrics)
            manifests.append(
                telemetry.RunManifest(
                    kind="experiment",
                    name=name,
                    configuration=f"budget={args.budget}"
                    + (", interval-sampled" if estimates is not None else ""),
                    config_hash=telemetry.config_hash(
                        {"experiment": name, "budget": args.budget}
                    ),
                    seed=0,
                    wall_clock_secs=time.perf_counter() - started,
                    metrics=(
                        session.metrics.snapshot()
                        if session is not None
                        else {}
                    ),
                    results=results,
                    estimates=estimates,
                )
            )
    except BaseException:
        if session is not None:
            telemetry.deactivate()
        _finish_streams(stream_session, None)
        raise
    finally:
        if fault_session is not None:
            from repro.faults import deactivate as deactivate_faults

            deactivate_faults()
    _finish_streams(stream_session, session)
    if farm is not None and farm.metrics.jobs:
        print(f"farm ({farm.config.max_workers} workers)")
        print(farm.metrics.render())
    if fault_session is not None and fault_session.runs:
        _print_fault_summary(fault_session)
    _finish_telemetry(args, session, manifests)
    return 0


def _metric_weight(value: Any) -> float:
    """The ranking weight of one snapshot entry: histogram total (time
    spent), else the scalar counter/gauge value."""
    if isinstance(value, Mapping):
        total = value.get("sum", 0.0)
        return float(total) if isinstance(total, (int, float)) else 0.0
    return float(value) if isinstance(value, (int, float)) else 0.0


def _cmd_telemetry_top(args: argparse.Namespace) -> int:
    """Rank the heaviest metric series — where the run's time/volume went."""
    if args.metrics:
        from pathlib import Path

        try:
            snapshot = json.loads(Path(args.metrics).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.metrics}: {exc}", file=sys.stderr)
            return 2
        source = args.metrics
    else:
        path = args.manifest_path or telemetry.DEFAULT_MANIFEST_PATH
        records = telemetry.read_manifests(path)
        if not records:
            print(f"no manifest records in {path}", file=sys.stderr)
            return 2
        snapshot = records[-1].get("metrics", {})
        source = f"{path} (latest record: {records[-1].get('name', '?')})"
    if not isinstance(snapshot, Mapping):
        print(f"error: {source} holds no metrics object", file=sys.stderr)
        return 2
    selected = sorted(
        (
            (key, value)
            for key, value in snapshot.items()
            if key.startswith(args.prefix)
        ),
        key=lambda item: _metric_weight(item[1]),
        reverse=True,
    )[: max(args.limit, 0) or None]
    if args.json:
        print(json.dumps(dict(selected), indent=2, sort_keys=True))
        return 0
    if not selected:
        print(f"no series matching prefix {args.prefix!r} in {source}")
        return 0
    rows = []
    for key, value in selected:
        if isinstance(value, Mapping):
            rows.append(
                [
                    key, "histogram", value.get("count", 0),
                    f"{value.get('sum', 0.0):,.6g}",
                    f"{value.get('mean', 0.0):,.6g}",
                    f"{value.get('p90', 0.0):,.6g}",
                ]
            )
        else:
            rows.append([key, "scalar", "", f"{value:,.6g}", "", ""])
    print(
        format_table(
            ["Series", "Kind", "Count", "Total", "Mean", "P90"],
            rows,
            title=f"Top metric series ({source})",
        )
    )
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    if args.telemetry_command == "top":
        return _cmd_telemetry_top(args)

    path = args.manifest_path or telemetry.DEFAULT_MANIFEST_PATH

    if args.telemetry_command == "clear":
        from pathlib import Path

        target = Path(path)
        count = len(telemetry.read_manifests(target))
        if target.exists():
            target.unlink()
        print(f"dropped {count} manifest record(s) from {target}")
        return 0

    records = telemetry.read_manifests(path)

    if args.telemetry_command == "validate":
        bad = 0
        for i, record in enumerate(records):
            problems = telemetry.validate_record(record)
            if problems:
                bad += 1
                print(f"record {i}: {'; '.join(problems)}", file=sys.stderr)
        print(f"{len(records)} record(s), {len(records) - bad} valid, {bad} invalid")
        return 1 if bad else 0

    # ``manifests``: the durable perf trajectory, newest last
    records = records[-args.last :] if args.last > 0 else records
    if args.json:
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0
    if not records:
        print(f"no manifest records in {path}")
        return 0
    rows = []
    for record in records:
        created = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.get("created_unix", 0))
        )
        results: Mapping[str, Any] = record.get("results", {})
        slowdown = results.get("slowdown")
        rows.append(
            [
                created,
                record.get("kind", "?"),
                record.get("name", "?"),
                record.get("config_hash", "?")[:8],
                record.get("seed", 0),
                f"{record.get('wall_clock_secs', 0.0):.2f}s",
                f"{slowdown:.2f}x" if isinstance(slowdown, (int, float)) else "-",
                record.get("git_version", "?"),
            ]
        )
    print(
        format_table(
            ["When", "Kind", "Name", "Config", "Seed", "Wall", "Slowdown", "Git"],
            rows,
            title=f"Run manifests ({path})",
        )
    )
    return 0


def _cmd_farm(args: argparse.Namespace) -> int:
    from repro.farm import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.farm_command == "clear":
        dropped = cache.clear()
        print(f"dropped {dropped} cached result(s) from {cache.directory}/")
        return 0

    stats = cache.read_stats()
    per_measure: dict[str, int] = {}
    for entry in cache.entries():
        measure = entry.get("measure") or "?"
        per_measure[measure] = per_measure.get(measure, 0) + 1
    if args.json:
        print(
            json.dumps(
                {
                    "cache_dir": str(cache.directory),
                    "stored_results": len(cache),
                    "per_measure": per_measure,
                    **stats,
                },
                indent=2, sort_keys=True,
            )
        )
        return 0
    print(f"cache dir     : {cache.directory}/")
    print(f"stored results: {len(cache)}")
    for measure in sorted(per_measure):
        print(f"  {measure:<16}: {per_measure[measure]}")
    print(f"farm runs     : {stats['runs']}")
    print(f"jobs seen     : {stats['jobs']}")
    print(f"cache hits    : {stats['cache_hits']}")
    print(f"executed      : {stats['executed']}")
    print(f"retries       : {stats['retries']}")
    print(f"corrupt       : {stats['cache_corrupt']}")
    print(f"wall clock    : {stats['wall_clock_secs']:.3f}s")
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.caches.pipeline import (
        DEFAULT_LEDGER_DIR,
        clear_ledger,
        default_registry,
        read_ledger,
    )

    ledger_dir = args.ledger_dir or DEFAULT_LEDGER_DIR
    if args.kernels_command == "clear":
        dropped = clear_ledger(ledger_dir)
        print(f"dropped {dropped} compile record(s) from {ledger_dir}/")
        return 0

    records = read_ledger(ledger_dir)
    per_kind: dict[str, int] = {}
    per_path: dict[str, int] = {}
    forced = 0
    compile_secs = 0.0
    for record in records:
        kind = record.get("kind") or "?"
        per_kind[kind] = per_kind.get(kind, 0) + 1
        selected = record.get("selected") or "?"
        per_path[selected] = per_path.get(selected, 0) + 1
        if "forced:request" in (record.get("reasons") or ()):
            forced += 1
        compile_secs += float(record.get("compile_secs") or 0.0)
    counters = default_registry().counters()
    if args.json:
        print(
            json.dumps(
                {
                    "ledger_dir": str(ledger_dir),
                    "ledger_compiles": len(records),
                    "per_kind": per_kind,
                    "per_path": per_path,
                    "forced_general": forced,
                    "ledger_compile_secs": round(compile_secs, 6),
                    "registry": counters,
                },
                indent=2, sort_keys=True,
            )
        )
        return 0
    print(f"ledger dir      : {ledger_dir}/")
    print(f"ledger compiles : {len(records)}")
    for kind in sorted(per_kind):
        print(f"  kind {kind:<12}: {per_kind[kind]}")
    for path in sorted(per_path):
        print(f"  path {path:<12}: {per_path[path]}")
    print(f"forced general  : {forced}")
    print(f"compile seconds : {compile_secs:.6f}")
    print("registry (this process)")
    print(f"  programs      : {counters['programs']}")
    print(f"  compiles      : {counters['compiles']}")
    print(f"  lookup hits   : {counters['lookup_hits']}")
    print(f"  lookup misses : {counters['lookup_misses']}")
    return 0


def _attach_kernel_ledger() -> None:
    """Record this process's kernel compiles in the on-disk ledger.

    Attached only by CLI entry points — library and test constructions
    stay ledger-free so they never write into the caller's cwd.
    """
    from repro.caches.pipeline import DEFAULT_LEDGER_DIR, default_registry

    default_registry().attach_ledger(DEFAULT_LEDGER_DIR)


def _cmd_streams(args: argparse.Namespace) -> int:
    from repro.streams import StreamSession, StreamStore
    from repro.streams.store import DEFAULT_STORE_DIR

    store = StreamStore(args.stream_dir or DEFAULT_STORE_DIR)

    if args.streams_command == "clear":
        dropped = store.clear()
        print(f"dropped {dropped} compiled stream(s) from {store.directory}/")
        return 0

    if args.streams_command == "warm":
        refs = args.refs if args.refs is not None else BUDGET_REFS[args.budget]
        names = WORKLOAD_NAMES if args.workload == "all" else [args.workload]
        session = StreamSession(store=store)
        compiled = 0
        for name in names:
            spec = get_workload(name)
            compiled += session.precompile(spec, refs)
            if args.data:
                compiled += session.precompile(
                    spec, refs, include_data_refs=True
                )
        stats = store.stats()
        print(
            f"warmed {len(names)} workload(s) at {refs:,} refs: "
            f"{compiled} stream(s) compiled, "
            f"{session.memo_hits + store.hits} reused"
        )
        print(
            f"store now holds {stats['blobs']} blob(s), "
            f"{stats['blob_bytes'] / 1e6:.1f} MB"
        )
        return 0

    # ``stats``
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"store dir     : {stats['directory']}/")
    print(f"blobs         : {stats['blobs']}")
    print(f"blob bytes    : {stats['blob_bytes']:,}")
    print(f"compiled refs : {stats['compiled_refs']:,}")
    print(f"quarantined   : {stats['quarantined']}")
    return 0


def _sample_geometry(args: argparse.Namespace) -> tuple[int, int]:
    """Resolve (total_refs, interval_refs) from a sample subcommand."""
    from repro.experiments.table7 import default_interval_refs

    total_refs = args.refs if args.refs is not None else BUDGET_REFS[args.budget]
    interval_refs = (
        args.interval_refs
        if args.interval_refs is not None
        else default_interval_refs(total_refs)
    )
    return total_refs, interval_refs


def _cmd_sweep(args: argparse.Namespace) -> int:
    """One-pass grid sweep: one cached farm job, every cell's misses."""
    from repro._types import Indexing
    from repro.caches.config import GridConfig
    from repro.caches.gridsweep import grid_job, grid_rows
    from repro.farm import Farm, FarmConfig

    _attach_kernel_ledger()
    grid = GridConfig(
        set_counts=tuple(args.sets),
        ways=tuple(args.ways),
        line_bytes=args.line,
        indexing=Indexing(args.indexing),
    )
    total_refs = (
        args.refs if args.refs is not None else BUDGET_REFS[args.budget]
    )
    stream_session = _begin_streams(args)
    session = _begin_telemetry(args)
    started = time.perf_counter()
    try:
        farm = Farm(
            FarmConfig(
                max_workers=max(1, args.jobs),
                use_cache=not args.no_cache,
                stream_transport=(
                    stream_session.transport() if stream_session else None
                ),
            )
        )
        job = grid_job(args.workload, total_refs, grid, seed=args.seed)
        payload = farm.run_jobs([job])[0]
    except BaseException:
        if session is not None:
            telemetry.deactivate()
        _finish_streams(stream_session, None)
        raise
    elapsed = time.perf_counter() - started
    if stream_session is not None and session is not None:
        stream_session.publish_metrics(session.metrics)
    _finish_streams(stream_session, session)

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        miss_counts = payload["miss_counts"]
        rows = []
        for n_sets in grid.set_counts:
            row: list[Any] = [n_sets]
            for ways in grid.ways:
                row.append(f"{miss_counts[f'{n_sets}x{ways}']:,}")
            rows.append(row)
        print(format_table(
            ["sets \\ ways", *[str(w) for w in grid.ways]],
            rows,
            title=(
                f"{args.workload}: exact misses over {payload['refs']:,} "
                f"refs ({grid.describe()})"
            ),
        ))
        hist = payload["stack_distance_hist"]
        largest = str(grid.set_counts[-1])
        print(
            f"passes        : {payload['passes']} distance passes for "
            f"{grid.n_cells} configurations"
        )
        print(
            f"cold misses   : {hist[largest]['cold']:,} "
            f"(compulsory, geometry-independent)"
        )
        print(f"wall clock    : {elapsed:.2f}s")
        if farm.last_run is not None:
            print(f"farm ({farm.config.max_workers} worker(s))")
            print(farm.last_run.render())

    manifest = telemetry.RunManifest(
        kind="sweep",
        name="grid",
        configuration=(
            f"{args.workload}, {grid.describe()}, refs={total_refs}"
        ),
        config_hash=telemetry.config_hash(
            {
                "workload": args.workload,
                "total_refs": total_refs,
                "set_counts": list(grid.set_counts),
                "ways": list(grid.ways),
                "line_bytes": grid.line_bytes,
                "indexing": grid.indexing.value,
            }
        ),
        seed=args.seed,
        wall_clock_secs=elapsed,
        metrics=session.metrics.snapshot() if session is not None else {},
        results={
            "workload": args.workload,
            "refs": payload["refs"],
            "cells": grid.n_cells,
            "passes": payload["passes"],
            "miss_counts": payload["miss_counts"],
            "stack_distance_hist": payload["stack_distance_hist"],
            "rows": grid_rows(payload),
            "farm": (
                farm.last_run.summary() if farm.last_run is not None else {}
            ),
        },
    )
    _finish_telemetry(args, session, [manifest])
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    if args.sample_command == "stats":
        return _cmd_sample_stats(args)

    from repro.sampling import FEATURE_NAMES, build_plan, profile_workload

    total_refs, interval_refs = _sample_geometry(args)
    spec = get_workload(args.workload)
    stream_session = _begin_streams(args)
    try:
        profile = profile_workload(spec, total_refs, interval_refs)
        if args.sample_command == "profile":
            if args.json:
                print(json.dumps(
                    {
                        "workload": profile.workload,
                        "task": profile.task,
                        "total_refs": profile.total_refs,
                        "interval_refs": profile.interval_refs,
                        "n_intervals": profile.n_intervals,
                        "features": profile.rows(),
                    },
                    indent=2, sort_keys=True,
                ))
                return 0
            rows = [
                [i] + [f"{row[name]:.4f}" for name in FEATURE_NAMES]
                for i, row in enumerate(profile.rows())
            ]
            print(format_table(
                ["Interval", *FEATURE_NAMES],
                rows,
                title=(
                    f"{spec.name}: {profile.n_intervals} intervals of "
                    f"{profile.interval_refs:,} refs"
                ),
            ))
            return 0

        # ``plan``
        plan = build_plan(
            profile,
            max_phases=args.max_phases,
            per_phase=args.per_phase,
            seed=args.seed,
        )
        if args.out:
            _write_or_print(args.out, plan.dumps())
        if args.json:
            if args.out != "-":
                print(plan.dumps())
            return 0
        sizes = plan.phase_sizes()
        rows = [
            [
                s.interval,
                s.phase,
                s.role,
                sizes[s.phase],
                f"{plan.start_of(s.interval):,}",
            ]
            for s in plan.samples
        ]
        print(format_table(
            ["Interval", "Phase", "Role", "Phase size", "Start ref"],
            rows,
            title=(
                f"{spec.name}: {plan.n_phases} phase(s), "
                f"{len(plan.samples)}/{plan.n_intervals} intervals selected "
                f"({plan.selection_fraction:.0%} of the stream)"
            ),
        ))
        return 0
    finally:
        _finish_streams(stream_session, None)


def _cmd_sample_stats(args: argparse.Namespace) -> int:
    """Summarize every sampled-run estimate recorded in the manifest log."""
    path = args.manifest_path or telemetry.DEFAULT_MANIFEST_PATH
    records = telemetry.read_manifests(path)
    sampled = [r for r in records if isinstance(r.get("estimates"), dict)]
    if args.json:
        print(json.dumps(
            [
                {
                    "name": r.get("name"),
                    "configuration": r.get("configuration"),
                    "created_unix": r.get("created_unix"),
                    "estimates": r["estimates"],
                }
                for r in sampled
            ],
            indent=2, sort_keys=True,
        ))
        return 0
    if not sampled:
        print(f"no sampled-run estimates in {path}")
        return 0
    rows = []
    for record in sampled:
        created = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.get("created_unix", 0))
        )
        for metric, entry in sorted(record["estimates"].items()):
            value = entry.get("value", 0.0)
            half = (entry.get("ci_high", 0.0) - entry.get("ci_low", 0.0)) / 2
            half_pct = 100.0 * half / abs(value) if value else 0.0
            rows.append(
                [
                    created,
                    record.get("name", "?"),
                    metric,
                    f"{value:,.1f}",
                    f"±{half_pct:.1f}%",
                    entry.get("method", "?"),
                    "yes" if entry.get("exact") else "no",
                ]
            )
    print(format_table(
        ["When", "Run", "Metric", "Value", "95% CI", "Method", "Exact"],
        rows,
        title=f"Sampled-run estimates ({path}, {len(sampled)} record(s))",
    ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import default_plan, load_plan
    from repro.faults.chaos import DEFAULT_CHAOS_REFS, run_chaos

    if args.chaos_command == "plan":
        print(default_plan().dumps())
        return 0

    plan = load_plan(args.plan) if args.plan else default_plan()
    report = run_chaos(
        plan,
        workload=args.workload,
        refs=args.refs if args.refs is not None else DEFAULT_CHAOS_REFS,
        seed=args.seed,
    )
    if args.json:
        print(report.dumps())
    else:
        print(report.render())
    if args.report_out:
        _write_or_print(args.report_out, report.dumps())
    return 0 if report.ok else 1


def _print_gc_summary(summary: dict[str, Any]) -> None:
    budget = summary["budget_bytes"]
    print(
        f"gc            : budget="
        + ("unbounded" if budget is None else f"{budget:,}B")
        + f" pins={summary['pins']} evicted={summary['evicted']} "
        f"freed={summary['bytes_freed']:,}B "
        f"pinned_skips={summary['pinned_skips']}"
    )
    for tier in summary["tiers"]:
        print(
            f"  {tier['tier']:<8}: {tier['bytes_before']:,}B -> "
            f"{tier['bytes_after']:,}B "
            f"(evicted {tier['evicted']}, orphans {tier['orphans_swept']}, "
            f"migrated {tier['migrated']}, pinned {tier['pinned_skips']})"
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.farm import FarmConfig, FarmService, ServiceConfig
    from repro.farm.jobs import Job
    from repro.farm.pool import DEFAULT_CACHE_DIR

    params: dict[str, Any] = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            print(f"error: --params is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("error: --params must be a JSON object", file=sys.stderr)
            return 2
    service = FarmService(
        ServiceConfig(
            farm=FarmConfig(
                max_workers=args.jobs,
                cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
            ),
            cache_budget_bytes=args.cache_budget,
            stream_dir=args.stream_dir,
            kernel_dir=args.kernel_dir,
            shard=args.shard,
        )
    )
    report: dict[str, Any] = {}
    if args.resume:
        report["resume"] = service.resume()
    ticket = None
    if args.seeds > 0:
        batch = [
            Job(measure=args.measure, params=params, seed=seed)
            for seed in range(args.seeds)
        ]
        ticket = service.run(batch, client=args.client, batch=args.batch)
        report["ticket"] = ticket.summary()
        report["values"] = ticket.results
    if args.cache_budget is not None:
        report["gc"] = service.gc()
    if args.compact:
        report["compacted"] = service.journal.compact()
    report["status"] = service.status()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        if "resume" in report:
            resumed = report["resume"]
            print(
                f"resume        : {resumed['incomplete']} unfinished — "
                f"{resumed['reconciled']} reconciled from cache, "
                f"{resumed['executed']} re-executed, "
                f"{resumed['unreplayable']} unreplayable"
            )
        if ticket is not None:
            print(
                f"ticket        : #{ticket.ticket_id} {ticket.state}"
                + (" [degraded to serial]" if ticket.degraded else "")
            )
            if ticket.results is not None:
                print(f"values        : {ticket.results}")
            for key, reason in (ticket.reasons or {}).items():
                print(
                    f"  poisoned    : {key[:12]} "
                    f"{reason.get('verdict', reason)}"
                )
            if ticket.state == "failed":
                print(f"  error       : {ticket.error}")
        if "gc" in report:
            _print_gc_summary(report["gc"])
        if "compacted" in report:
            print(f"compacted     : {report['compacted']} retired job(s)")
        print(service.render_status())
    if ticket is not None and ticket.state != "done":
        return 1
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.farm.pool import DEFAULT_CACHE_DIR

    cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    if args.jobs_command == "gc":
        from repro.farm.gc import CacheGC, journal_pins

        collector = CacheGC(args.cache_budget, pins=journal_pins(cache_dir))
        collector.collect(
            farm_dir=cache_dir,
            stream_dir=args.stream_dir,
            kernel_dir=args.kernel_dir,
            shard=args.shard,
        )
        summary = collector.summary()
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            _print_gc_summary(summary)
        return 0

    if args.jobs_command == "retry":
        from repro.farm import FarmConfig, FarmService, ServiceConfig

        service = FarmService(
            ServiceConfig(
                farm=FarmConfig(max_workers=1, cache_dir=cache_dir)
            )
        )
        requeued = 0
        for entry in service.journal.entries():
            if entry.state in ("failed", "poisoned"):
                service.journal.requeue(entry.key)
                requeued += 1
        report = service.resume()
        report["requeued"] = requeued
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"retry         : {requeued} requeued — "
                f"{report['reconciled']} reconciled from cache, "
                f"{report['executed']} re-executed, "
                f"{report['unreplayable']} unreplayable"
            )
        return 0

    from repro.farm import JobJournal
    from repro.farm.service import journal_rows

    journal = JobJournal(cache_dir)
    entries = journal.entries()
    if args.state:
        entries = [e for e in entries if e.state == args.state]
    if args.json:
        print(
            json.dumps(
                [dataclasses.asdict(e) for e in entries],
                indent=2, sort_keys=True,
            )
        )
        return 0
    if not entries:
        print(f"journal is empty ({cache_dir}/)")
        return 0
    print(journal_rows(entries))
    counts = journal.counts()
    print(
        "totals: " + ", ".join(f"{k}={v}" for k, v in counts.items() if v)
    )
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            f"{spec.meta.instructions_millions:g}M",
            f"{spec.meta.run_time_secs:g}s",
            f"{spec.meta.frac_user:.0%}",
            spec.meta.user_task_count,
            spec.meta.description[:48],
        ]
        for spec in all_workloads()
    ]
    print(
        format_table(
            ["Workload", "Instr", "Time", "User", "Tasks", "Description"],
            rows,
            title="Workload models (Table 3/4)",
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Stack-distance locality profile per task stream — the calibration
    view used to fit the workloads to Table 6."""
    from repro.caches.stack import StackSimulator

    spec = get_workload(args.workload)
    sizes_kb = (1, 4, 16, 64)
    rows = []
    seen_binaries = set()
    for task_spec in spec.tasks.values():
        if task_spec.binary in seen_binaries:
            continue
        seen_binaries.add(task_spec.binary)
        stream = task_spec.build_stream(spec.name)
        simulator = StackSimulator(line_bytes=16)
        simulator.process(stream.next_chunk(args.refs))
        rows.append(
            [
                task_spec.name,
                f"{stream.footprint_bytes() // 1024}K",
            ]
            + [
                f"{simulator.miss_ratio(kb * 1024 // 16):.4f}"
                for kb in sizes_kb
            ]
        )
    print(
        format_table(
            ["Stream", "Footprint"] + [f"{kb}K" for kb in sizes_kb],
            rows,
            title=(
                f"{spec.name}: fully-associative LRU miss ratios "
                f"({args.refs:,} refs per stream)"
            ),
        )
    )
    return 0


def _cmd_assess_port(args: argparse.Namespace) -> int:
    from repro.machine.ops import assess_port

    try:
        assessment = assess_port(args.processor)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"processor          : {assessment.processor}")
    print(
        "mechanisms         : "
        + (", ".join(m.value for m in assessment.mechanisms) or "none")
    )
    print(f"cache simulation   : {'yes' if assessment.can_simulate_caches else 'no'}")
    print(f"TLB simulation     : {'yes' if assessment.can_simulate_tlbs else 'no'}")
    print(f"finest trap (bytes): {assessment.finest_granularity_bytes}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "trace": _cmd_trace,
        "reproduce": _cmd_reproduce,
        "workloads": _cmd_workloads,
        "profile": _cmd_profile,
        "assess-port": _cmd_assess_port,
        "farm": _cmd_farm,
        "kernels": _cmd_kernels,
        "streams": _cmd_streams,
        "sweep": _cmd_sweep,
        "sample": _cmd_sample,
        "telemetry": _cmd_telemetry,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "jobs": _cmd_jobs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
