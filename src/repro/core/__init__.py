"""Tapeworm II — the trap-driven memory-system simulator.

This package is the paper's contribution.  Tapeworm lives in the kernel,
sets memory traps (ECC check bits for cache-line granularity, page valid
bits for page granularity) on every location *absent* from a simulated
cache or TLB, and lets the host hardware filter hits at full speed.  Each
trap is a simulated miss: the handler counts it, clears the trap on the
missing line, runs the replacement policy, and sets a trap on whatever was
displaced (Figure 1, right).

Public entry points:

* :class:`~repro.core.tapeworm.Tapeworm` — the simulator.
* :class:`~repro.core.tapeworm.TapewormConfig` — what to simulate and how.
* :class:`~repro.core.costs.HandlerCostModel` — the Table 5 cycle model.
* :class:`~repro.core.sampling.SetSampler` — hardware set sampling.
"""

from repro.core.costs import HandlerCostModel, CostBreakdown
from repro.core.primitives import TrapPrimitives
from repro.core.registration import PageRegistry
from repro.core.sampling import SetSampler
from repro.core.replace import Replacer
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.core.report import TrapRunReport

__all__ = [
    "HandlerCostModel",
    "CostBreakdown",
    "TrapPrimitives",
    "PageRegistry",
    "SetSampler",
    "Replacer",
    "Tapeworm",
    "TapewormConfig",
    "TrapRunReport",
]
