"""The Table 5 cycle model for Tapeworm's miss handler.

The optimized handler — rewritten in assembly, bypassing the usual kernel
entry/exit — costs 246 cycles for a direct-mapped cache with 4-word
lines, built from these components (instructions, from Table 5):

======================  ============
kernel trap and return            53
tw_cache_miss()                   23
tw_replace()                      20
tw_set_trap()                     35
tw_clear_trap()                    6
======================  ============

"Higher degrees of associativity slightly increase the time in
tw_replace(), while longer cache lines increase the cost of tw_set_trap()
and tw_clear_trap().  Simulating different cache sizes has little effect."
The model adds small per-way and per-granule increments accordingly.

Two alternative operating points from the paper are also modeled: the
original unoptimized C handler (~2,000 cycles, comparable to the
Wisconsin Wind Tunnel's 2,500) and the hypothetical ~50-cycle handler
enabled by a cleaner memory-ASIC diagnostic interface ("a factor of 5"
speedup, section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import ECC_CHECK_GRANULE_WORDS, WORD_SIZE
from repro.caches.config import CacheConfig, TLBConfig
from repro.errors import ConfigError

#: instruction counts of the optimized handler components (Table 5)
KERNEL_TRAP_AND_RETURN_INSTRUCTIONS = 53
TW_CACHE_MISS_INSTRUCTIONS = 23
TW_REPLACE_INSTRUCTIONS = 20
TW_SET_TRAP_INSTRUCTIONS = 35
TW_CLEAR_TRAP_INSTRUCTIONS = 6

#: total optimized handler cost in *cycles* (Table 5's bottom line; the
#: handler's effective CPI over its 137 instructions is about 1.8 because
#: piecing the ECC error address together stalls on the memory ASIC)
OPTIMIZED_HANDLER_CYCLES = 246

#: the original all-C handler ("over 2,000 cycles")
UNOPTIMIZED_HANDLER_CYCLES = 2000

#: with intentional hardware support for the trap primitives ("could
#: reduce the total miss-handling time to about 50 cycles")
HARDWARE_ASSISTED_HANDLER_CYCLES = 50

#: the R3000 software-managed TLB refill, for page-granularity handling
#: ("a similar operation ... requires only about 20 cycles")
TLB_MISS_HANDLER_BASE_CYCLES = 220

#: marginal cycles per extra way searched in tw_replace()
CYCLES_PER_EXTRA_WAY = 6

#: marginal cycles to set+clear traps per extra 4-word granule of line
CYCLES_PER_EXTRA_GRANULE = 12

_GRANULE_BYTES = ECC_CHECK_GRANULE_WORDS * WORD_SIZE


@dataclass(frozen=True)
class CostBreakdown:
    """Per-routine cycle attribution for one configuration."""

    trap_and_return: int
    tw_cache_miss: int
    tw_replace: int
    tw_set_trap: int
    tw_clear_trap: int

    @property
    def total(self) -> int:
        return (
            self.trap_and_return
            + self.tw_cache_miss
            + self.tw_replace
            + self.tw_set_trap
            + self.tw_clear_trap
        )

    def rows(self) -> list[tuple[str, int]]:
        """(routine, cycles) rows in Table 5 order."""
        return [
            ("kernel trap and return", self.trap_and_return),
            ("tw_cache_miss()", self.tw_cache_miss),
            ("tw_replace()", self.tw_replace),
            ("tw_set_trap()", self.tw_set_trap),
            ("tw_clear_trap()", self.tw_clear_trap),
        ]


class HandlerCostModel:
    """Cycles per Tapeworm miss for a given simulated configuration."""

    VARIANTS = ("optimized", "unoptimized", "hardware_assisted")

    def __init__(self, variant: str = "optimized") -> None:
        if variant not in self.VARIANTS:
            raise ConfigError(
                f"unknown handler variant {variant!r}; "
                f"choose from {self.VARIANTS}"
            )
        self.variant = variant

    def _base_cycles(self) -> int:
        return {
            "optimized": OPTIMIZED_HANDLER_CYCLES,
            "unoptimized": UNOPTIMIZED_HANDLER_CYCLES,
            "hardware_assisted": HARDWARE_ASSISTED_HANDLER_CYCLES,
        }[self.variant]

    def cycles_per_cache_miss(self, config: CacheConfig) -> int:
        """Handler cost for one simulated cache miss."""
        extra_ways = config.associativity - 1
        extra_granules = config.line_bytes // _GRANULE_BYTES - 1
        if extra_granules < 0:
            raise ConfigError(
                f"line size {config.line_bytes} below the {_GRANULE_BYTES}-"
                "byte ECC granule cannot be trapped on this machine"
            )
        scale = self._base_cycles() / OPTIMIZED_HANDLER_CYCLES
        marginal = (
            extra_ways * CYCLES_PER_EXTRA_WAY
            + extra_granules * CYCLES_PER_EXTRA_GRANULE
        )
        return int(round(self._base_cycles() + marginal * scale))

    def cycles_per_tlb_miss(self, config: TLBConfig) -> int:
        """Handler cost for one simulated TLB miss.

        Page-valid-bit traps take the ordinary kernel fault path (no ECC
        address reconstruction), so the base is cheaper; superpages add a
        valid-bit write per covered machine page.
        """
        extra_pages = config.pages_per_entry - 1
        scale = self._base_cycles() / OPTIMIZED_HANDLER_CYCLES
        return int(
            round(scale * (TLB_MISS_HANDLER_BASE_CYCLES + extra_pages * 4))
        )

    def breakdown(self, config: CacheConfig) -> CostBreakdown:
        """Table 5's per-routine split, scaled to cycles.

        The instruction counts of Table 5 sum to 137 for the 246-cycle
        handler; each routine's cycle share keeps that proportion.
        """
        instructions = {
            "trap_and_return": KERNEL_TRAP_AND_RETURN_INSTRUCTIONS,
            "tw_cache_miss": TW_CACHE_MISS_INSTRUCTIONS,
            "tw_replace": TW_REPLACE_INSTRUCTIONS
            + (config.associativity - 1) * 2,
            "tw_set_trap": TW_SET_TRAP_INSTRUCTIONS
            + (config.line_bytes // _GRANULE_BYTES - 1) * 4,
            "tw_clear_trap": TW_CLEAR_TRAP_INSTRUCTIONS
            + (config.line_bytes // _GRANULE_BYTES - 1) * 2,
        }
        total_instructions = sum(instructions.values())
        total_cycles = self.cycles_per_cache_miss(config)
        shares = {
            name: int(round(total_cycles * count / total_instructions))
            for name, count in instructions.items()
        }
        return CostBreakdown(
            trap_and_return=shares["trap_and_return"],
            tw_cache_miss=shares["tw_cache_miss"],
            tw_replace=shares["tw_replace"],
            tw_set_trap=shares["tw_set_trap"],
            tw_clear_trap=shares["tw_clear_trap"],
        )
