"""Section 4.4's flexibility limits, enforced.

Trap-driven simulation models structures whose contents are a *set of
memory locations* with set/clear-able traps on the complement.  That
rules some things out inherently, and the host machine rules out more:

* **write buffers** — "queues that only hold their contents for only a
  short time, cannot be simulated with the Tapeworm algorithm", which
  also restricts simulations to a write-back write policy;
* **instruction pipelines** — "the trap-driven approach seems to be
  limited to the simulation of memory system hierarchies";
* **data caches on the DECstation 5000/200** — its no-allocate-on-write
  policy "causes ECC traps to be cleared without invoking the Tapeworm
  miss handlers"; machines that allocate on write (the WWT's platform)
  can simulate data caches;
* **line sizes** — ECC is checked on 4-word refills, so simulated lines
  must be multiples of 16 bytes (enforced in
  :mod:`repro.core.primitives`).
"""

from __future__ import annotations

import enum

from repro.errors import UnsupportedStructure
from repro.machine.machine import Machine


class StructureKind(enum.Enum):
    """What a user might ask a simulator to model."""

    INSTRUCTION_CACHE = "instruction_cache"
    DATA_CACHE = "data_cache"
    UNIFIED_CACHE = "unified_cache"
    TLB = "tlb"
    WRITE_BUFFER = "write_buffer"
    INSTRUCTION_PIPELINE = "instruction_pipeline"


#: structures no trap-driven simulator can model, on any machine
INHERENTLY_UNSUPPORTED = frozenset(
    {StructureKind.WRITE_BUFFER, StructureKind.INSTRUCTION_PIPELINE}
)

#: structures involving the data stream, which need allocate-on-write
NEEDS_WRITE_ALLOCATION = frozenset(
    {StructureKind.DATA_CACHE, StructureKind.UNIFIED_CACHE}
)


def assert_trap_simulable(kind: StructureKind, machine: Machine) -> None:
    """Raise :class:`UnsupportedStructure` unless a trap-driven
    simulator can model ``kind`` on ``machine``.

    Trace-driven simulation has no such limits — that asymmetry is the
    flexibility trade the paper's section 4.4 weighs.
    """
    if kind in INHERENTLY_UNSUPPORTED:
        raise UnsupportedStructure(
            f"{kind.value} cannot be simulated by the trap-driven "
            "approach: traps model set-membership of memory locations, "
            "not transient queues or pipeline state (paper section 4.4); "
            "use the trace-driven driver for such structures"
        )
    if (
        kind in NEEDS_WRITE_ALLOCATION
        and not machine.config.allocate_on_write
    ):
        raise UnsupportedStructure(
            f"{kind.value} simulation is blocked on this machine: its "
            "no-allocate-on-write policy clears ECC traps without "
            "invoking the miss handler (paper section 4.4); configure "
            "MachineConfig(allocate_on_write=True) to model a "
            "write-allocate host, as the Wisconsin Wind Tunnel's was"
        )
