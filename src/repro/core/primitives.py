"""``tw_set_trap`` / ``tw_clear_trap`` — the machine-dependent layer.

Table 11 reports that only 5% of Tapeworm is machine-dependent: chiefly
the modified kernel entry code and these two routines.  This module is
that layer for the simulated DECstation: it knows which privileged
operation backs a trap of a given granularity (ECC check bits for cache
lines, page valid bits for pages — Table 2) and hides the mechanism from
everything above it.

It also enforces the host machine's real limitations from section 4.4:
ECC is checked on 4-word refills, so cache-trap sizes must be multiples
of 16 bytes, and setting a page trap must evict any stale hardware-TLB
entry that would otherwise shadow the cleared valid bit.
"""

from __future__ import annotations

from repro._types import PAGE_SIZE, TrapMechanism
from repro.errors import TapewormError, UnsupportedStructure
from repro.machine.machine import Machine
from repro.machine.memory import GRANULE_BYTES


class TrapPrimitives:
    """The two primitives of Table 1, over a chosen mechanism."""

    def __init__(self, machine: Machine, mechanism: TrapMechanism) -> None:
        if mechanism not in (TrapMechanism.ECC, TrapMechanism.PAGE_VALID):
            raise UnsupportedStructure(
                f"no Tapeworm implementation uses {mechanism} as its "
                "primary trap mechanism on this machine"
            )
        self.machine = machine
        self.mechanism = mechanism
        self.set_calls = 0
        self.clear_calls = 0

    # -- activation (the "modified kernel entry code")

    def activate(self) -> None:
        self.machine.enable_mechanism(self.mechanism)

    def deactivate(self) -> None:
        self.machine.disable_mechanism(self.mechanism)

    # -- cache-line granularity (ECC check bits)

    def _require(self, mechanism: TrapMechanism, what: str) -> None:
        if self.mechanism is not mechanism:
            raise TapewormError(
                f"{what} requires the {mechanism.value} mechanism but this "
                f"Tapeworm instance uses {self.mechanism.value}"
            )

    def tw_set_trap(self, pa: int, size: int) -> None:
        """Set a memory trap on ``[pa, pa+size)``.

        ``size`` must respect the machine's ECC granule — this is the
        paper's line-size restriction ("ECC bits are checked on 4-word
        cache line refills.  This effectively limits the simulation of
        Tapeworm cache line sizes to multiples of 4 words").
        """
        self._require(TrapMechanism.ECC, "tw_set_trap")
        if size % GRANULE_BYTES:
            raise UnsupportedStructure(
                f"trap size {size} is not a multiple of the {GRANULE_BYTES}-"
                "byte ECC check granule; line sizes must be multiples of "
                "4 words on this machine"
            )
        self.machine.ecc.set_trap(pa, size)
        self.set_calls += 1

    def tw_clear_trap(self, pa: int, size: int) -> None:
        """Clear previously set memory traps on ``[pa, pa+size)``."""
        self._require(TrapMechanism.ECC, "tw_clear_trap")
        self.machine.ecc.clear_trap(pa, size)
        self.clear_calls += 1

    # -- page granularity (valid bits), for TLB simulation

    def tw_set_page_trap(self, tid: int, vpn: int) -> None:
        """Clear a page's valid bit and purge its hardware-TLB entry.

        Without the purge, a stale hardware translation would let the
        task keep using the page without trapping — the subset invariant
        the first-generation Tapeworm maintained on the R2000.
        """
        self._require(TrapMechanism.PAGE_VALID, "tw_set_page_trap")
        self.machine.mmu.table(tid).set_page_trap(vpn)
        self.machine.hw_tlb.probe_out(tid, vpn)
        self.set_calls += 1

    def tw_clear_page_trap(self, tid: int, vpn: int) -> None:
        self._require(TrapMechanism.PAGE_VALID, "tw_clear_page_trap")
        self.machine.mmu.table(tid).clear_page_trap(vpn)
        self.clear_calls += 1

    # -- geometry helpers used by the machine-independent layer

    def trap_granule_bytes(self) -> int:
        """The finest trap size this mechanism supports."""
        if self.mechanism is TrapMechanism.ECC:
            return GRANULE_BYTES
        return PAGE_SIZE
