"""Page registration bookkeeping for ``tw_register_page`` / ``tw_remove_page``.

Tapeworm records every ``(tid, physical page, virtual page)`` mapping the
VM system registers, for two reasons spelled out in section 3.2:

* shared physical pages carry a **reference count** — a second mapping of
  an already-registered frame sets no new traps ("this enables a new task
  to benefit from shared entries brought into the cache by another task"),
  and the frame is only flushed from the simulated cache when the last
  mapping is removed;
* virtually-indexed simulations need the recorded virtual-to-physical
  correspondence to translate a displaced *virtual* line back to the
  *physical* location a trap must be set on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._types import PAGE_SIZE
from repro.errors import TapewormError


@dataclass
class FrameRecord:
    """Registration state of one physical frame."""

    refcount: int = 0
    #: every (tid, vpn) currently mapping this frame
    mappings: set[tuple[int, int]] = field(default_factory=set)


class PageRegistry:
    """Who maps what, among the pages in the Tapeworm domain."""

    def __init__(self) -> None:
        self._frames: dict[int, FrameRecord] = {}
        self._by_mapping: dict[tuple[int, int], int] = {}  # (tid, vpn) -> pfn

    @staticmethod
    def _split(pa: int, va: int) -> tuple[int, int]:
        return pa // PAGE_SIZE, va // PAGE_SIZE

    def register(self, tid: int, pa: int, va: int) -> bool:
        """Record one mapping; True when this is the frame's *first*
        mapping (i.e. traps must be set on its memory locations)."""
        pfn, vpn = self._split(pa, va)
        key = (tid, vpn)
        if key in self._by_mapping:
            raise TapewormError(
                f"mapping (tid={tid}, vpn={vpn}) registered twice"
            )
        record = self._frames.setdefault(pfn, FrameRecord())
        record.refcount += 1
        record.mappings.add(key)
        self._by_mapping[key] = pfn
        return record.refcount == 1

    def remove(self, tid: int, pa: int, va: int) -> bool:
        """Drop one mapping; True when the frame's count reached zero
        (i.e. the page must be flushed and its traps cleared)."""
        pfn, vpn = self._split(pa, va)
        key = (tid, vpn)
        if self._by_mapping.get(key) != pfn:
            raise TapewormError(
                f"mapping (tid={tid}, vpn={vpn}) was never registered "
                f"against frame {pfn}"
            )
        record = self._frames[pfn]
        record.refcount -= 1
        record.mappings.discard(key)
        del self._by_mapping[key]
        if record.refcount == 0:
            del self._frames[pfn]
            return True
        return False

    # -- lookups

    def refcount(self, pa: int) -> int:
        record = self._frames.get(pa // PAGE_SIZE)
        return 0 if record is None else record.refcount

    def is_registered_frame(self, pa: int) -> bool:
        return pa // PAGE_SIZE in self._frames

    def is_registered_mapping(self, tid: int, va: int) -> bool:
        return (tid, va // PAGE_SIZE) in self._by_mapping

    def pa_of(self, tid: int, va: int) -> int | None:
        """Physical address recorded for a task's virtual address."""
        pfn = self._by_mapping.get((tid, va // PAGE_SIZE))
        if pfn is None:
            return None
        return pfn * PAGE_SIZE + va % PAGE_SIZE

    def mappings_of_frame(self, pa: int) -> set[tuple[int, int]]:
        """All (tid, vpn) pairs sharing one frame."""
        record = self._frames.get(pa // PAGE_SIZE)
        return set() if record is None else set(record.mappings)

    def mappings_of_task(self, tid: int) -> list[tuple[int, int]]:
        """(vpn, pfn) pairs registered for one task."""
        return [
            (vpn, pfn)
            for (mtid, vpn), pfn in self._by_mapping.items()
            if mtid == tid
        ]

    def registered_frames(self) -> set[int]:
        return set(self._frames)

    def __len__(self) -> int:
        return len(self._by_mapping)
