"""Page registration bookkeeping for ``tw_register_page`` / ``tw_remove_page``.

Tapeworm records every ``(tid, physical page, virtual page)`` mapping the
VM system registers, for two reasons spelled out in section 3.2:

* shared physical pages carry a **reference count** — a second mapping of
  an already-registered frame sets no new traps ("this enables a new task
  to benefit from shared entries brought into the cache by another task"),
  and the frame is only flushed from the simulated cache when the last
  mapping is removed;
* virtually-indexed simulations need the recorded virtual-to-physical
  correspondence to translate a displaced *virtual* line back to the
  *physical* location a trap must be set on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._types import PAGE_SIZE
from repro.errors import TapewormError


@dataclass
class FrameRecord:
    """Registration state of one physical frame."""

    refcount: int = 0
    #: every (tid, vpn) currently mapping this frame
    mappings: set[tuple[int, int]] = field(default_factory=set)


class PageRegistry:
    """Who maps what, among the pages in the Tapeworm domain.

    Besides the frame/mapping tables, the registry maintains two derived
    indexes kept exact on every register/remove:

    * per task: ``tid -> {vpn: pfn}`` (insertion-ordered), so
      task-scoped sweeps never scan other tasks' mappings;
    * per superpage: ``(tid, vpn // pages_per_superpage) -> {vpn}``, so
      a TLB miss handler can enumerate the machine pages covered by one
      simulated entry without scanning the task (``pages_per_superpage``
      is the TLB's ``pages_per_entry``; the default of 1 keeps the index
      trivial for cache simulations, which never query it).
    """

    def __init__(self, pages_per_superpage: int = 1) -> None:
        if pages_per_superpage < 1:
            raise TapewormError(
                f"pages_per_superpage must be >= 1, got {pages_per_superpage}"
            )
        self.pages_per_superpage = pages_per_superpage
        self._frames: dict[int, FrameRecord] = {}
        self._by_mapping: dict[tuple[int, int], int] = {}  # (tid, vpn) -> pfn
        self._by_task: dict[int, dict[int, int]] = {}  # tid -> {vpn: pfn}
        #: (tid, superpage) -> vpns mapped under that simulated entry
        self._by_superpage: dict[tuple[int, int], set[int]] = {}

    @staticmethod
    def _split(pa: int, va: int) -> tuple[int, int]:
        return pa // PAGE_SIZE, va // PAGE_SIZE

    def register(self, tid: int, pa: int, va: int) -> bool:
        """Record one mapping; True when this is the frame's *first*
        mapping (i.e. traps must be set on its memory locations)."""
        pfn, vpn = self._split(pa, va)
        key = (tid, vpn)
        if key in self._by_mapping:
            raise TapewormError(
                f"mapping (tid={tid}, vpn={vpn}) registered twice"
            )
        record = self._frames.setdefault(pfn, FrameRecord())
        record.refcount += 1
        record.mappings.add(key)
        self._by_mapping[key] = pfn
        self._by_task.setdefault(tid, {})[vpn] = pfn
        superpage_key = (tid, vpn // self.pages_per_superpage)
        self._by_superpage.setdefault(superpage_key, set()).add(vpn)
        return record.refcount == 1

    def remove(self, tid: int, pa: int, va: int) -> bool:
        """Drop one mapping; True when the frame's count reached zero
        (i.e. the page must be flushed and its traps cleared)."""
        pfn, vpn = self._split(pa, va)
        key = (tid, vpn)
        if self._by_mapping.get(key) != pfn:
            raise TapewormError(
                f"mapping (tid={tid}, vpn={vpn}) was never registered "
                f"against frame {pfn}"
            )
        record = self._frames[pfn]
        record.refcount -= 1
        record.mappings.discard(key)
        del self._by_mapping[key]
        task_index = self._by_task[tid]
        del task_index[vpn]
        if not task_index:
            del self._by_task[tid]
        superpage_key = (tid, vpn // self.pages_per_superpage)
        under = self._by_superpage[superpage_key]
        under.discard(vpn)
        if not under:
            del self._by_superpage[superpage_key]
        if record.refcount == 0:
            del self._frames[pfn]
            return True
        return False

    # -- lookups

    def refcount(self, pa: int) -> int:
        record = self._frames.get(pa // PAGE_SIZE)
        return 0 if record is None else record.refcount

    def is_registered_frame(self, pa: int) -> bool:
        return pa // PAGE_SIZE in self._frames

    def is_registered_mapping(self, tid: int, va: int) -> bool:
        return (tid, va // PAGE_SIZE) in self._by_mapping

    def pa_of(self, tid: int, va: int) -> int | None:
        """Physical address recorded for a task's virtual address."""
        pfn = self._by_mapping.get((tid, va // PAGE_SIZE))
        if pfn is None:
            return None
        return pfn * PAGE_SIZE + va % PAGE_SIZE

    def mappings_of_frame(self, pa: int) -> set[tuple[int, int]]:
        """All (tid, vpn) pairs sharing one frame."""
        record = self._frames.get(pa // PAGE_SIZE)
        return set() if record is None else set(record.mappings)

    def mappings_of_task(self, tid: int) -> list[tuple[int, int]]:
        """(vpn, pfn) pairs registered for one task, in registration
        order (served by the per-task index, no global scan)."""
        return list(self._by_task.get(tid, {}).items())

    def vpns_under(self, tid: int, superpage: int) -> list[int]:
        """Machine-page VPNs one task has registered under a simulated
        superpage entry, ascending.  O(pages found), not O(task pages) —
        the index the TLB miss handler hits on every trap."""
        return sorted(self._by_superpage.get((tid, superpage), ()))

    def registered_frames(self) -> set[int]:
        return set(self._frames)

    def __len__(self) -> int:
        return len(self._by_mapping)
