"""``tw_replace`` — inserting a missing line, choosing a victim.

Table 1: "Insert a missing memory location, defined by a pa (for a
physically-indexed cache) or va (for a virtually-indexed cache) into a
data structure for a simulated cache...  A displaced entry, selected on
the basis of various simulation parameters such as cache size, line size
or associativity, is returned by the call."

Because the simulated structure may be virtually indexed while traps are
physical (ECC bits live in memory), the displaced *virtual* line must be
translated back to a physical trap target through the recorded
registrations.  A displaced line whose page has meanwhile left the
Tapeworm domain simply gets no trap — its page was flushed anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._types import Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.multilevel import TwoLevelCache
from repro.core.registration import PageRegistry


@dataclass
class ReplaceOutcome:
    """What the miss handler must act on after one insertion."""

    #: physical base addresses needing a new trap, one per displaced line
    trap_targets: list[int] = field(default_factory=list)
    #: displaced keys that could not be translated to a physical target
    untranslatable: int = 0
    #: True when a two-level simulation also missed in L2
    l2_missed: bool = False


class Replacer:
    """Runs the replacement policy and resolves displaced trap targets."""

    def __init__(
        self,
        structure: SetAssociativeCache | TwoLevelCache,
        registry: PageRegistry,
    ) -> None:
        self.structure = structure
        self.registry = registry
        if isinstance(structure, TwoLevelCache):
            self._indexing = structure.l1.config.indexing
            self.line_bytes = structure.l1.config.line_bytes
        else:
            self._indexing = structure.config.indexing
            self.line_bytes = structure.config.line_bytes

    def index_address(self, va: int, pa: int) -> int:
        """The address the structure is indexed/tagged by."""
        return va if self._indexing is Indexing.VIRTUAL else pa

    def _trap_target(self, key: tuple[int, int]) -> int | None:
        """Physical trap base for a displaced (space, line_addr) key."""
        space, line_addr = key
        if self._indexing is Indexing.PHYSICAL:
            if not self.registry.is_registered_frame(line_addr):
                return None
            return line_addr
        return self.registry.pa_of(space, line_addr)

    def tw_replace(self, tid: int, pa: int, va: int) -> ReplaceOutcome:
        """Insert the missing line containing (va, pa); return trap work."""
        addr = self.index_address(va, pa)
        outcome = ReplaceOutcome()
        if isinstance(self.structure, TwoLevelCache):
            result = self.structure.miss_insert(tid, addr)
            outcome.l2_missed = not result.l2_hit
            displaced = result.displaced_from_l1
        else:
            displaced = self.structure.miss_insert(tid, addr).displaced
        for key in displaced:
            target = self._trap_target(key)
            if target is None:
                outcome.untranslatable += 1
            else:
                outcome.trap_targets.append(target)
        return outcome
