"""Result records for trap-driven runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._types import Component
from repro.caches.stats import CacheStats


@dataclass
class TrapRunReport:
    """Everything one Tapeworm run produces.

    ``slowdown`` follows the paper's definition: simulation overhead
    cycles divided by the *normal* (uninstrumented) run's cycles.
    Sampled runs report both raw sampled misses (in ``stats``) and the
    expansion-scaled ``estimated_misses``.
    """

    workload: str
    configuration: str
    trial_seed: int
    stats: CacheStats = field(default_factory=CacheStats)
    estimated_misses: float = 0.0
    base_cycles: int = 0
    overhead_cycles: int = 0
    slowdown: float = 0.0
    traps: int = 0
    masked_traps: int = 0
    page_faults: int = 0
    ticks: int = 0
    sampling: int = 1
    #: total references executed while the run was simulated, per component
    refs: dict[Component, int] = field(default_factory=dict)
    #: miss counts scaled to the paper's full-length workloads
    scale_factor: float = 1.0

    @property
    def total_refs(self) -> int:
        return sum(self.refs.values())

    def local_miss_ratio(self, component: Component) -> float:
        refs = self.refs.get(component, 0)
        if refs == 0:
            return 0.0
        return self.stats.misses[component] / refs

    def overall_miss_ratio(self) -> float:
        total = self.total_refs
        if total == 0:
            return 0.0
        return self.estimated_misses / total

    def misses_paper_scale(self) -> float:
        """Estimated misses extrapolated to the paper-length workload."""
        return self.estimated_misses * self.scale_factor
