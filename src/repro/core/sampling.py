"""Hardware set sampling via trap patterns.

Trace-driven set sampling pre-filters a trace to the addresses mapping to
a chosen subset of cache sets, paying a software pass over every address.
Tapeworm instead "exploits its trapping framework to make the host
hardware perform this function at much lower cost": ``tw_register_page``
simply skips setting traps on memory locations outside the sample, so
unsampled locations never trap and are filtered for free.  Slowdown then
falls in direct proportion to the sampling fraction (Figure 3), at the
price of higher measurement variance (Tables 7, 8).

The sampled subset is chosen per trial from a seeded RNG — re-running
with a different seed is the paper's "different samples can be obtained
simply by changing the pattern of traps on registered Tapeworm pages."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class SetSampler:
    """Selects 1/``fraction_denominator`` of a structure's sets."""

    def __init__(
        self,
        n_sets: int,
        fraction_denominator: int = 1,
        seed: int = 0,
    ) -> None:
        if fraction_denominator < 1:
            raise ConfigError(
                f"sampling denominator must be >= 1, got {fraction_denominator}"
            )
        if n_sets < fraction_denominator:
            raise ConfigError(
                f"cannot sample 1/{fraction_denominator} of {n_sets} sets"
            )
        self.n_sets = n_sets
        self.fraction_denominator = fraction_denominator
        self.seed = seed
        if fraction_denominator == 1:
            self._sampled = np.ones(n_sets, dtype=bool)
        else:
            rng = np.random.default_rng(seed)
            chosen = rng.choice(
                n_sets, size=n_sets // fraction_denominator, replace=False
            )
            self._sampled = np.zeros(n_sets, dtype=bool)
            self._sampled[chosen] = True

    @property
    def is_sampling(self) -> bool:
        return self.fraction_denominator > 1

    @property
    def expansion_factor(self) -> int:
        """Multiplier that turns sampled miss counts into estimates of
        the full-cache totals."""
        return self.fraction_denominator

    def covers_set(self, set_index: int) -> bool:
        return bool(self._sampled[set_index])

    def sampled_sets(self) -> np.ndarray:
        return np.nonzero(self._sampled)[0]

    def mask_for_sets(self, set_indices: np.ndarray) -> np.ndarray:
        """Vectorized membership test for an array of set indices."""
        return self._sampled[set_indices]

    def estimate(self, sampled_count: int) -> float:
        """Unbiased estimator of a full-structure count."""
        return sampled_count * self.expansion_factor
