"""The Tapeworm II simulator.

The trap-driven core loop (Figure 1, right)::

    kernel traps invoke tw_miss(address):

    tw_miss(address){
        miss++;
        tw_clear_trap(address);
        displaced_address = tw_replace(address);
        tw_set_trap(displaced_address);
    }

A :class:`Tapeworm` installs itself into a booted kernel: it hooks the VM
system's page registration protocol, installs its miss handler on the
trap vector for its mechanism (ECC errors for cache simulation, invalid-
page traps for TLB simulation), and manages per-task ``(simulate,
inherit)`` attributes.  From then on the workload just runs; the hardware
filters hits and only simulated misses reach the handler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._types import PAGE_SIZE, Indexing, TrapMechanism
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig, TLBConfig
from repro.caches.multilevel import TwoLevelCache
from repro.caches.replacement import make_policy
from repro.caches.stats import CacheStats
from repro.caches.tlb import SimulatedTLB
from repro.core.costs import HandlerCostModel
from repro.core.flexibility import StructureKind, assert_trap_simulable
from repro.core.primitives import TrapPrimitives
from repro.core.registration import PageRegistry
from repro.core.replace import Replacer
from repro.core.sampling import SetSampler
from repro.errors import (
    ConfigError,
    DoubleBitError,
    TapewormError,
    UnsupportedStructure,
)
from repro.kernel.kernel import Kernel
from repro.machine.ecc import TrapClass
from repro.machine.mmu import PAGE_SHIFT
from repro.machine.traps import TrapFrame, TrapKind

#: cycles the handler spends logging/scrubbing a *true* ECC error before
#: resuming (rare: about one per year of operation in the paper)
TRUE_ERROR_HANDLING_CYCLES = 500


@dataclass(frozen=True)
class TapewormConfig:
    """What to simulate, and how.

    ``structure`` selects among:

    * ``"cache"``     — one cache (``cache`` config), ECC-bit traps;
    * ``"two_level"`` — inclusive hierarchy (``cache`` = L1, ``l2``), ECC;
    * ``"tlb"``       — a TLB (``tlb`` config), page-valid-bit traps.

    ``sampling`` is the set-sampling denominator (1 = no sampling), with
    ``sampling_seed`` choosing which sets, per trial.
    """

    structure: str = "cache"
    cache: CacheConfig | None = None
    l2: CacheConfig | None = None
    tlb: TLBConfig | None = None
    replacement: str = "lru"
    sampling: int = 1
    sampling_seed: int = 0
    handler_variant: str = "optimized"
    policy_seed: int = 0
    #: what the cache models; data/unified caches need a write-allocate
    #: host machine, write buffers are rejected outright (section 4.4)
    kind: StructureKind = StructureKind.INSTRUCTION_CACHE

    def __post_init__(self) -> None:
        if self.structure not in ("cache", "two_level", "tlb"):
            raise ConfigError(f"unknown structure {self.structure!r}")
        if self.structure in ("cache", "two_level") and self.cache is None:
            raise ConfigError(f"structure {self.structure!r} needs a cache config")
        if self.structure == "two_level" and self.l2 is None:
            raise ConfigError("two_level structure needs an l2 config")
        if self.structure == "tlb" and self.tlb is None:
            raise ConfigError("tlb structure needs a tlb config")


class Tapeworm:
    """The in-kernel trap-driven simulator."""

    def __init__(self, kernel: Kernel, config: TapewormConfig) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self.config = config
        self.cost_model = HandlerCostModel(config.handler_variant)
        # TLB simulations index registrations by (tid, superpage) so the
        # miss handler can enumerate an entry's pages without scanning
        # the whole task (cache simulations never query that index).
        self.registry = PageRegistry(
            pages_per_superpage=(
                config.tlb.pages_per_entry
                if config.structure == "tlb"
                else 1
            )
        )
        self.stats = CacheStats()
        self.overhead_cycles = 0
        self.true_errors_detected = 0
        self._installed = False

        if config.structure == "tlb":
            mechanism = TrapMechanism.PAGE_VALID
            self.tlb = SimulatedTLB(
                config.tlb, make_policy(config.replacement, config.policy_seed)
            )
            self.replacer = None
            n_sets = config.tlb.n_sets
            self._miss_cycles = self.cost_model.cycles_per_tlb_miss(config.tlb)
        else:
            mechanism = TrapMechanism.ECC
            self.tlb = None
            if config.structure == "two_level":
                structure = TwoLevelCache(
                    config.cache,
                    config.l2,
                    make_policy(config.replacement, config.policy_seed),
                    make_policy(config.replacement, config.policy_seed + 1),
                )
            else:
                structure = SetAssociativeCache(
                    config.cache,
                    make_policy(config.replacement, config.policy_seed),
                )
            self.structure = structure
            self.replacer = Replacer(structure, self.registry)
            n_sets = config.cache.n_sets
            self._miss_cycles = self.cost_model.cycles_per_cache_miss(
                config.cache
            )
        self.primitives = TrapPrimitives(self.machine, mechanism)
        self.sampler = SetSampler(
            n_sets, config.sampling, seed=config.sampling_seed
        )

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Hook the kernel: VM protocol, trap vector, mechanism enable."""
        if self._installed:
            raise TapewormError("Tapeworm is already installed")
        if self.kernel.tapeworm is not None:
            raise TapewormError("another Tapeworm is installed in this kernel")
        kind = (
            StructureKind.TLB
            if self.config.structure == "tlb"
            else self.config.kind
        )
        assert_trap_simulable(kind, self.machine)
        vm = self.kernel.vm
        if vm.on_register_page is not None or vm.on_remove_page is not None:
            raise TapewormError("the VM hooks are already claimed")
        vm.on_register_page = self._vm_registered
        vm.on_remove_page = self._vm_removed
        kind = (
            TrapKind.PAGE_INVALID
            if self.config.structure == "tlb"
            else TrapKind.ECC_ERROR
        )
        self.machine.dispatcher.install(kind, self._miss_trap)
        self.primitives.activate()
        self.kernel.tapeworm = self
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            raise TapewormError("Tapeworm is not installed")
        vm = self.kernel.vm
        vm.on_register_page = None
        vm.on_remove_page = None
        kind = (
            TrapKind.PAGE_INVALID
            if self.config.structure == "tlb"
            else TrapKind.ECC_ERROR
        )
        self.machine.dispatcher.uninstall(kind)
        self.primitives.deactivate()
        self.kernel.tapeworm = None
        self._installed = False

    # ------------------------------------------------------------------
    # attributes (Table 1: tw_attributes)
    # ------------------------------------------------------------------

    def tw_attributes(self, tid: int, simulate: int, inherit: int) -> None:
        """Assign (simulate, inherit); register/remove live pages on a
        simulate transition so attributes can change mid-run."""
        task = self.kernel.tasks.get(tid)
        was_simulated = bool(task.simulate)
        task.simulate = simulate
        task.inherit = inherit
        now_simulated = bool(simulate)
        if now_simulated and not was_simulated:
            self._register_existing_pages(tid)
        elif was_simulated and not now_simulated:
            self._remove_all_pages(tid)

    def _register_existing_pages(self, tid: int) -> None:
        table = self.machine.mmu.table(tid)
        for vpn in table.mapped_vpns():
            pa = table.frame_of(int(vpn)) * PAGE_SIZE
            self.tw_register_page(tid, pa, int(vpn) * PAGE_SIZE)

    def _remove_all_pages(self, tid: int) -> None:
        for vpn, pfn in self.registry.mappings_of_task(tid):
            self.tw_remove_page(tid, pfn * PAGE_SIZE, vpn * PAGE_SIZE)

    # ------------------------------------------------------------------
    # VM protocol (Table 1: tw_register_page / tw_remove_page)
    # ------------------------------------------------------------------

    def _vm_registered(self, tid: int, pa: int, va: int) -> None:
        """VM hook: called on *every* page mapped; Tapeworm screens by
        the owning task's simulate attribute."""
        if self.kernel.tasks.get(tid).simulate:
            self.tw_register_page(tid, pa, va)

    def _vm_removed(self, tid: int, pa: int, va: int) -> None:
        if self.registry.is_registered_mapping(tid, va):
            self.tw_remove_page(tid, pa, va)

    def tw_register_page(self, tid: int, pa: int, va: int) -> None:
        """Add a page to the Tapeworm domain.

        First mapping of the frame: set traps on all of its (sampled)
        memory locations.  Further mappings only bump the reference count
        — "this enables a new task to benefit from shared entries brought
        into the cache by another task."
        """
        first = self.registry.register(tid, pa, va)
        if self.config.structure == "tlb":
            self._register_page_tlb(tid, va)
        elif first:
            self._set_page_traps(pa, va)

    def _set_page_traps(self, pa: int, va: int) -> None:
        """Trap every sampled line of one freshly registered page."""
        line_bytes = self.replacer.line_bytes
        config = self._cache_config()
        if not self.sampler.is_sampling:
            self.primitives.tw_set_trap(pa, PAGE_SIZE)
            return
        index_base = va if config.indexing is Indexing.VIRTUAL else pa
        for offset in range(0, PAGE_SIZE, line_bytes):
            if self.sampler.covers_set(config.set_of(index_base + offset)):
                self.primitives.tw_set_trap(pa + offset, line_bytes)

    def _cache_config(self) -> CacheConfig:
        return self.config.cache

    def _register_page_tlb(self, tid: int, va: int) -> None:
        """Page-granularity registration: trap unless the covering
        (super)page entry is already simulated-TLB resident."""
        vpn = va >> PAGE_SHIFT
        superpage = self.tlb.superpage_of(vpn)
        if not self.sampler.covers_set(superpage % self.config.tlb.n_sets):
            return
        if self.tlb.contains(tid, vpn):
            return
        self.primitives.tw_set_page_trap(tid, vpn)

    def tw_remove_page(self, tid: int, pa: int, va: int) -> None:
        """Remove a page from the Tapeworm domain.

        The last mapping flushes the page from the simulated structure
        and clears its traps, mimicking what the VM system does to the
        host's real cache on an unmap.
        """
        if self.config.structure == "tlb":
            self._remove_page_tlb(tid, pa, va)
            return
        mappings = self.registry.mappings_of_frame(pa)
        last = self.registry.remove(tid, pa, va)
        structure = self.structure
        caches = (
            (structure.l1, structure.l2)
            if isinstance(structure, TwoLevelCache)
            else (structure,)
        )
        if self._cache_config().indexing is Indexing.VIRTUAL:
            victims = mappings if last else {(tid, va >> PAGE_SHIFT)}
            for cache in caches:
                for mtid, mvpn in victims:
                    cache.flush_page(mtid, mvpn * PAGE_SIZE, PAGE_SIZE)
        elif last:
            for cache in caches:
                cache.flush_page(tid, pa & ~(PAGE_SIZE - 1), PAGE_SIZE)
        if last:
            self.primitives.tw_clear_trap(pa & ~(PAGE_SIZE - 1), PAGE_SIZE)

    def _remove_page_tlb(self, tid: int, pa: int, va: int) -> None:
        vpn = va >> PAGE_SHIFT
        self.registry.remove(tid, pa, va)
        table = self.machine.mmu.table(tid)
        if table.is_page_trapped(vpn):
            self.primitives.tw_clear_page_trap(vpn=vpn, tid=tid)
        if self.tlb.contains(tid, vpn):
            remaining = self.registry.vpns_under(
                tid, self.tlb.superpage_of(vpn)
            )
            if not remaining:
                self.tlb.evict(tid, vpn)
            # pages still registered under the entry keep running free;
            # the entry stays until displaced or its last page leaves.

    # ------------------------------------------------------------------
    # DMA cooperation (the 5000/240 port hazard, section 4.3)
    # ------------------------------------------------------------------

    def tw_dma_transfer(self, pa: int, size: int) -> None:
        """Driver notification: a DMA write landed on ``[pa, pa+size)``.

        DMA regenerates correct ECC, silently erasing traps.  A
        cooperating driver calls this afterward so Tapeworm can flush
        the buffer from the simulated cache (real DMA invalidates it in
        the host cache too) and re-arm the traps its simulation needs.
        Without this hook — the paper's un-ported 5000/240 situation —
        misses on DMA'd pages silently vanish.
        """
        if self.config.structure == "tlb":
            return  # valid bits are unaffected by DMA data writes
        first_page = pa & ~(PAGE_SIZE - 1)
        last_page = (pa + size - 1) & ~(PAGE_SIZE - 1)
        for page in range(first_page, last_page + PAGE_SIZE, PAGE_SIZE):
            if not self.registry.is_registered_frame(page):
                continue
            mappings = self.registry.mappings_of_frame(page)
            structure = self.structure
            caches = (
                (structure.l1, structure.l2)
                if isinstance(structure, TwoLevelCache)
                else (structure,)
            )
            if self._cache_config().indexing is Indexing.VIRTUAL:
                for cache in caches:
                    for mtid, mvpn in mappings:
                        cache.flush_page(mtid, mvpn * PAGE_SIZE, PAGE_SIZE)
            else:
                for cache in caches:
                    cache.flush_page(0, page, PAGE_SIZE)
            # re-arm: clear any residue, then trap the page afresh using
            # a recorded mapping for the indexing address
            self.primitives.tw_clear_trap(page, PAGE_SIZE)
            mtid, mvpn = min(mappings)
            self._set_page_traps(page, mvpn * PAGE_SIZE)

    # ------------------------------------------------------------------
    # the miss handler (Figure 1, right)
    # ------------------------------------------------------------------

    def _miss_trap(self, frame: TrapFrame) -> int:
        if frame.kind is TrapKind.PAGE_INVALID:
            return self._tlb_miss(frame)
        return self._cache_miss(frame)

    def _cache_miss(self, frame: TrapFrame) -> int:
        # Classify first: Tapeworm must not swallow true memory errors.
        diagnostic = self.machine.ecc.diagnose(frame.pa)
        trap_class = diagnostic.trap_class
        if trap_class is not TrapClass.TAPEWORM:
            self.true_errors_detected += 1
            if not diagnostic.recoverable:
                # Two or more corrupted data bits: an uncorrectable
                # pattern even after software undoes its own check-bit
                # flip.  The real machine would panic; we surface the
                # structured diagnostic instead of silently scrubbing.
                raise DoubleBitError(
                    "uncorrectable ECC error in task "
                    f"{frame.tid} at cycle {frame.cycle}: "
                    f"{diagnostic.describe()}",
                    diagnostic=diagnostic,
                )
            self.machine.ecc.scrub(frame.pa)
            if self.machine.ecc.is_tapeworm_trapped(frame.pa):
                # restore our own trap that scrubbing removed
                granule_base = frame.pa & ~(self.primitives.trap_granule_bytes() - 1)
                self.machine.ecc.set_trap(
                    granule_base, self.primitives.trap_granule_bytes()
                )
            self.overhead_cycles += TRUE_ERROR_HANDLING_CYCLES
            return TRUE_ERROR_HANDLING_CYCLES

        line_bytes = self.replacer.line_bytes
        pa_line = frame.pa & ~(line_bytes - 1)
        va_line = frame.va & ~(line_bytes - 1)

        self.stats.count_miss(frame.component)
        self.primitives.tw_clear_trap(pa_line, line_bytes)
        outcome = self.replacer.tw_replace(frame.tid, pa_line, va_line)
        if outcome.l2_missed:
            self.stats.l2_misses += 1
        for target in outcome.trap_targets:
            self.primitives.tw_set_trap(target, line_bytes)
        self.overhead_cycles += self._miss_cycles
        return self._miss_cycles

    def _tlb_miss(self, frame: TrapFrame) -> int:
        tid = frame.tid
        vpn = frame.va >> PAGE_SHIFT
        self.stats.count_miss(frame.component)
        displaced = self.tlb.miss_insert(tid, vpn)
        # The new entry covers its whole superpage: clear traps on every
        # registered machine page under it.
        for covered in self._registered_pages_of_entry(tid, self.tlb.superpage_of(vpn)):
            table = self.machine.mmu.table(tid)
            if table.is_page_trapped(covered):
                self.primitives.tw_clear_page_trap(tid, covered)
        if displaced is not None:
            dtid, dspn = displaced
            for covered in self._registered_pages_of_entry(dtid, dspn):
                table = self.machine.mmu.table(dtid)
                if table.resident[covered] and not table.is_page_trapped(covered):
                    self.primitives.tw_set_page_trap(dtid, covered)
        self.overhead_cycles += self._miss_cycles
        return self._miss_cycles

    def _registered_pages_of_entry(self, tid: int, superpage: int) -> list[int]:
        """The machine pages one simulated entry covers — served by the
        registry's (tid, superpage) index, not a scan of the task."""
        return self.registry.vpns_under(tid, superpage)

    # ------------------------------------------------------------------
    # results (read through the syscall interface)
    # ------------------------------------------------------------------

    def snapshot_stats(self) -> CacheStats:
        copy = CacheStats()
        copy.merge(self.stats)
        return copy

    def publish_metrics(self, metrics) -> None:
        """Publish simulation totals into a metrics registry under the
        ``tapeworm.*`` namespace.

        ``tapeworm.traps{kind=...}`` reports the trap kind backing this
        simulation (ECC errors for caches, page-invalid for TLBs) as
        counted by the kernel's dispatcher — i.e. the traps that
        actually vectored into the miss handler.
        """
        kind = (
            TrapKind.PAGE_INVALID
            if self.config.structure == "tlb"
            else TrapKind.ECC_ERROR
        )
        dispatched = self.machine.dispatcher.counts[kind]
        if dispatched:
            metrics.counter("tapeworm.traps", kind=kind.value).inc(dispatched)
        for component, misses in self.stats.misses.items():
            if misses:
                metrics.counter(
                    "tapeworm.misses", component=component.value
                ).inc(misses)
        if self.stats.l2_misses:
            metrics.counter("tapeworm.l2_misses").inc(self.stats.l2_misses)
        if self.overhead_cycles:
            metrics.counter("tapeworm.overhead_cycles").inc(
                self.overhead_cycles
            )
        if self.true_errors_detected:
            metrics.counter("tapeworm.true_errors").inc(
                self.true_errors_detected
            )
        metrics.gauge("tapeworm.estimated_misses").set(
            self.estimated_total_misses()
        )

    def reset_stats(self) -> None:
        self.stats = CacheStats()
        self.overhead_cycles = 0

    def estimated_total_misses(self) -> float:
        """Sampled miss counts scaled to a full-structure estimate."""
        return self.sampler.estimate(self.stats.total_misses)
