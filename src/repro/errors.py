"""Exception hierarchy for the Tapeworm II reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A simulation configuration is invalid (bad cache geometry, etc.)."""


class MachineError(ReproError):
    """The simulated machine was used incorrectly."""


class MemoryFault(MachineError):
    """An access touched an unmapped or invalid physical address."""


class DoubleBitError(MachineError):
    """The ECC logic detected an uncorrectable (double-bit) memory error.

    Carries the structured :class:`~repro.machine.ecc.ECCDiagnostic`
    produced by the controller's SEC-DED decode — the physical address,
    granule, corrupted bit positions and classification — so handlers
    and chaos reports can name exactly what died instead of guessing
    from a message string.
    """

    def __init__(self, message: str, diagnostic=None) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


class KernelError(ReproError):
    """The simulated kernel was driven into an invalid state."""


class NoSuchTask(KernelError):
    """A task id does not name a live task."""


class TapewormError(ReproError):
    """Tapeworm itself was misused (bad primitive arguments, etc.)."""


class TraceError(ReproError):
    """A trace file or trace buffer is malformed."""


class FarmError(ReproError):
    """The execution farm could not complete a job batch.

    Raised when a job keeps crashing its worker (or timing out) after the
    configured retries, or when a job names an unknown measure.
    """


class PoisonedJobsError(FarmError):
    """A batch finished except for jobs quarantined as poisoned.

    Raised only under supervision (a plain farm retries/raises as
    before).  Carries the machine-readable poison reasons and the
    partial results so a service can report per-job failure while still
    delivering every healthy job's value.
    """

    def __init__(
        self,
        message: str,
        poisoned: dict | None = None,
        results: list | None = None,
    ) -> None:
        super().__init__(message)
        #: job key -> machine-readable poison reason
        self.poisoned = poisoned or {}
        #: batch values in job order; poisoned slots hold None
        self.results = results or []


class FaultInjectionError(ReproError):
    """The fault-injection layer was misused (bad plan, double session
    activation, injecting into a structure the fault cannot target)."""


class TelemetryError(ReproError):
    """The observability layer was misused (bad metric name, duplicate
    session activation, mismatched histogram buckets, bad manifest)."""


class StreamStoreError(ReproError):
    """The compiled reference-stream store was misused (double session
    activation, a clear that would escape the cache directory, a blob
    that cannot be written)."""


class UnsupportedStructure(ReproError):
    """The requested structure cannot be simulated by this driver.

    Raised, e.g., when asking the trap-driven simulator for a write buffer
    or a write-allocate data cache on the DECstation machine model (paper
    section 4.4 discusses exactly these flexibility limits).
    """
