"""One module per table/figure of the paper's evaluation (section 4).

Each module exposes ``run_*(budget=...)`` returning a structured result,
and ``render(result)`` producing a paper-style text table.  ``budget``
selects the reference volume: ``"quick"`` for CI-scale runs (seconds),
``"full"`` for calibration-grade runs (minutes).  Shapes — orderings,
crossovers, variance structure — are stable across budgets; absolute
counts scale with run length.
"""

from repro.errors import ConfigError

#: total simulated references per budget tier; ``tiny`` exists for
#: telemetry/CI smoke runs that only need artifacts, not statistics
BUDGET_REFS = {
    "tiny": 20_000,
    "smoke": 60_000,
    "quick": 300_000,
    "full": 2_000_000,
}


def budget_refs(budget: str) -> int:
    try:
        return BUDGET_REFS[budget]
    except KeyError:
        raise ConfigError(
            f"unknown budget {budget!r}; choose from {sorted(BUDGET_REFS)}"
        ) from None
