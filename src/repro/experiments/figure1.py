"""Figure 1: the two core simulation loops, demonstrated live.

The paper's first figure contrasts the algorithms::

    Trace-driven                      Trap-driven
    ------------                      -----------
    while (address = next(trace)){    kernel traps invoke tw_miss(a):
        if (search(address)) hit++;   tw_miss(a){
        else { miss++;                    miss++;
               replace(address); }        tw_clear_trap(a);
    }                                     displaced = tw_replace(a);
                                          tw_set_trap(displaced);
                                      }

This module runs both on the same short reference string against the
same tiny cache, logging every event, so the structural difference is
observable rather than asserted: the trace loop acts on *all* N
references; the trap loop acts only on the M misses, and its per-miss
log shows exactly the clear-replace-set sequence above.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._types import Component
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig

#: a reference string with a hit, a conflict, and a re-miss
DEMO_ADDRESSES = (0x000, 0x004, 0x040, 0x000, 0x040, 0x010)

#: a 4-set direct-mapped toy cache: 0x000 and 0x040 conflict
DEMO_CACHE = CacheConfig(size_bytes=64, line_bytes=16)


@dataclass(frozen=True)
class Figure1Result:
    trace_events: tuple[str, ...]
    trap_events: tuple[str, ...]
    trace_misses: int
    trap_misses: int
    trace_work: int  # searches performed
    trap_work: int   # handler invocations


def _run_trace_side() -> tuple[list[str], int, int]:
    cache = SetAssociativeCache(DEMO_CACHE)
    events, misses = [], 0
    for address in DEMO_ADDRESSES:
        hit, displaced = cache.access(0, address)
        if hit:
            events.append(f"search({address:#05x}) -> hit")
        else:
            misses += 1
            note = (
                f", replace displaced {displaced[1]:#05x}"
                if displaced
                else ", replace"
            )
            events.append(f"search({address:#05x}) -> miss{note}")
    return events, misses, cache.searches


def _run_trap_side() -> tuple[list[str], int, int]:
    machine = Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=64))
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(kernel, TapewormConfig(cache=DEMO_CACHE))
    tapeworm.install()
    task = kernel.spawn("demo", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)

    events: list[str] = []
    original = tapeworm._cache_miss

    def logging_handler(frame):
        line = frame.pa & ~(DEMO_CACHE.line_bytes - 1)
        before = tapeworm.stats.total_misses
        cycles = original(frame)
        set_calls = tapeworm.primitives.set_calls
        events.append(
            f"trap at pa {line:#05x}: miss++, tw_clear_trap({line:#05x}), "
            f"tw_replace -> tw_set_trap on displaced"
            if tapeworm.stats.total_misses > before
            else f"trap at pa {line:#05x}: classified, no miss"
        )
        return cycles

    tapeworm._cache_miss = logging_handler
    kernel.run_chunk(task, np.array(DEMO_ADDRESSES, dtype=np.int64))
    return events, tapeworm.stats.total_misses, len(events)


def run_figure1() -> Figure1Result:
    trace_events, trace_misses, trace_work = _run_trace_side()
    trap_events, trap_misses, trap_work = _run_trap_side()
    return Figure1Result(
        trace_events=tuple(trace_events),
        trap_events=tuple(trap_events),
        trace_misses=trace_misses,
        trap_misses=trap_misses,
        trace_work=trace_work,
        trap_work=trap_work,
    )


def render(result: Figure1Result) -> str:
    lines = [
        "Figure 1: trace-driven vs trap-driven core loops "
        f"(references: {', '.join(f'{a:#05x}' for a in DEMO_ADDRESSES)})",
        "",
        "trace-driven (every reference searched):",
    ]
    lines += [f"  {event}" for event in result.trace_events]
    lines += ["", "trap-driven (only misses enter the kernel):"]
    lines += [f"  {event}" for event in result.trap_events]
    lines += [
        "",
        f"identical miss counts: {result.trace_misses} == {result.trap_misses}",
        f"work: {result.trace_work} searches vs "
        f"{result.trap_work} kernel traps",
    ]
    return "\n".join(lines)
