"""Figure 2: Tapeworm vs Cache2000 slowdowns across cache sizes.

The paper simulates mpeg_play's user task (Tapeworm attributes exclude
the X/BSD servers and kernel) in direct-mapped I-caches with 4-word lines
from 1 KB to 1 MB, and reports the miss ratio plus both simulators'
slowdowns.  The expected shape: Cache2000 stays at ~20-30x regardless of
cache size, while Tapeworm starts ~3-5x cheaper and falls toward zero as
the miss ratio vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trace_driven, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

#: the paper's cache-size sweep, in KB
CACHE_SIZES_KB = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Figure 2's published rows for comparison in EXPERIMENTS.md
PAPER_ROWS = {
    1: (0.118, 30.2, 6.27),
    2: (0.097, 28.8, 5.16),
    4: (0.064, 27.0, 3.84),
    8: (0.023, 24.2, 1.20),
    16: (0.017, 23.5, 0.87),
    32: (0.002, 22.4, 0.11),
    64: (0.002, 22.3, 0.10),
    128: (0.000, 22.0, 0.01),
    256: (0.000, 22.1, 0.00),
    512: (0.000, 22.1, 0.00),
    1024: (0.000, 22.3, 0.00),
}


@dataclass(frozen=True)
class Figure2Row:
    size_kb: int
    miss_ratio: float
    cache2000_slowdown: float
    tapeworm_slowdown: float


@dataclass(frozen=True)
class Figure2Result:
    rows: tuple[Figure2Row, ...]
    total_refs: int
    user_refs: int


def run_figure2(
    budget: str = "quick",
    workload: str = "mpeg_play",
    trial_seed: int = 3,
    sizes_kb: tuple[int, ...] = CACHE_SIZES_KB,
) -> Figure2Result:
    """Regenerate Figure 2's table."""
    spec = get_workload(workload)
    total_refs = budget_refs(budget)
    options = RunOptions(
        total_refs=total_refs,
        trial_seed=trial_seed,
        simulate=frozenset({Component.USER}),
    )
    rows = []
    user_refs = 0
    for size_kb in sizes_kb:
        config = CacheConfig(size_bytes=size_kb * 1024)
        trap = run_trap_driven(spec, TapewormConfig(cache=config), options)
        user_refs = trap.refs[Component.USER]
        trace = run_trace_driven(spec, config, user_refs)
        rows.append(
            Figure2Row(
                size_kb=size_kb,
                miss_ratio=trap.local_miss_ratio(Component.USER),
                cache2000_slowdown=trace.slowdown,
                tapeworm_slowdown=trap.slowdown,
            )
        )
    return Figure2Result(
        rows=tuple(rows), total_refs=total_refs, user_refs=user_refs
    )


def render(result: Figure2Result) -> str:
    table_rows = []
    for row in result.rows:
        paper = PAPER_ROWS.get(row.size_kb)
        table_rows.append(
            [
                f"{row.size_kb}K",
                row.miss_ratio,
                row.cache2000_slowdown,
                row.tapeworm_slowdown,
                paper[1] if paper else "",
                paper[2] if paper else "",
            ]
        )
    return format_table(
        [
            "Cache Size",
            "Miss Ratio",
            "Cache2000 Slowdown",
            "Tapeworm Slowdown",
            "(paper C2000)",
            "(paper TW)",
        ],
        table_rows,
        title=(
            "Figure 2: trace-driven vs trap-driven slowdowns "
            "(mpeg_play user task, direct-mapped, 4-word lines)"
        ),
    )
