"""Figure 3: Tapeworm slowdowns across simulation configurations.

Three sweeps over mpeg_play at small cache sizes:

* associativity 1 / 2 / 4 — higher associativity costs slightly more per
  miss but misses less, so simulations get *faster*;
* line size 4 / 8 / 16 words — same effect;
* set sampling 1, 1/2, 1/4, 1/8 — "slowdowns decrease in direct
  proportion to the fraction of sets sampled."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

SIZES_KB = (1, 2, 4, 8)
ASSOCIATIVITIES = (1, 2, 4)
LINE_BYTES = (16, 32, 64)
SAMPLING = (1, 2, 4, 8)


@dataclass(frozen=True)
class SweepPoint:
    dimension: str
    value: int
    size_kb: int
    slowdown: float
    misses: int


@dataclass(frozen=True)
class Figure3Result:
    points: tuple[SweepPoint, ...]

    def series(self, dimension: str, value: int) -> list[SweepPoint]:
        return [
            p
            for p in self.points
            if p.dimension == dimension and p.value == value
        ]

    def point(self, dimension: str, value: int, size_kb: int) -> SweepPoint:
        for p in self.series(dimension, value):
            if p.size_kb == size_kb:
                return p
        raise KeyError((dimension, value, size_kb))


def run_figure3(
    budget: str = "quick",
    workload: str = "mpeg_play",
    trial_seed: int = 3,
) -> Figure3Result:
    spec = get_workload(workload)
    options = RunOptions(
        total_refs=budget_refs(budget),
        trial_seed=trial_seed,
        simulate=frozenset({Component.USER}),
    )
    points = []
    for assoc in ASSOCIATIVITIES:
        for size_kb in SIZES_KB:
            config = TapewormConfig(
                cache=CacheConfig(size_bytes=size_kb * 1024, associativity=assoc)
            )
            report = run_trap_driven(spec, config, options)
            points.append(
                SweepPoint(
                    "associativity", assoc, size_kb,
                    report.slowdown, report.stats.total_misses,
                )
            )
    for line in LINE_BYTES:
        for size_kb in SIZES_KB:
            config = TapewormConfig(
                cache=CacheConfig(size_bytes=size_kb * 1024, line_bytes=line)
            )
            report = run_trap_driven(spec, config, options)
            points.append(
                SweepPoint(
                    "line_bytes", line, size_kb,
                    report.slowdown, report.stats.total_misses,
                )
            )
    for denominator in SAMPLING:
        for size_kb in SIZES_KB:
            config = TapewormConfig(
                cache=CacheConfig(size_bytes=size_kb * 1024),
                sampling=denominator,
                sampling_seed=trial_seed,
            )
            report = run_trap_driven(spec, config, options)
            points.append(
                SweepPoint(
                    "sampling", denominator, size_kb,
                    report.slowdown, report.stats.total_misses,
                )
            )
    return Figure3Result(points=tuple(points))


def render(result: Figure3Result) -> str:
    sections = []
    for dimension, values, label in (
        ("associativity", ASSOCIATIVITIES, "way"),
        ("line_bytes", LINE_BYTES, "byte lines"),
        ("sampling", SAMPLING, "1/k sampling"),
    ):
        rows = []
        for size_kb in SIZES_KB:
            row = [f"{size_kb}K"]
            for value in values:
                row.append(result.point(dimension, value, size_kb).slowdown)
            rows.append(row)
        sections.append(
            format_table(
                ["Size"] + [f"{v} {label}" for v in values],
                rows,
                title=f"Figure 3 ({dimension}): Tapeworm slowdowns",
            )
        )
    return "\n\n".join(sections)
