"""Figure 4: error due to time dilation.

Tapeworm's slowdown stretches a workload's wall-clock time, so more
clock interrupts fire per unit of workload progress; the interrupt
handler's cache pollution then inflates measured misses.  As in the
paper, dilation is varied "by changing the degree of sampling" — heavier
sampling means fewer traps, lower slowdown, fewer extra ticks — while
measuring mpeg_play with all system activity in a physically-addressed
4 KB direct-mapped I-cache.

Expected shape: error grows steepest over slowdowns 0–2 and levels off,
reaching roughly +10–15% at slowdowns near 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

#: paper's (slowdown, % miss increase) points
PAPER_POINTS = ((0.43, 0.0), (0.96, 1.2), (2.08, 5.7), (4.42, 10.1), (9.29, 14.4))

#: sampling degrees used to vary dilation (heavier sampling = less dilation)
SAMPLING_SWEEP = (32, 16, 8, 4, 2, 1)


@dataclass(frozen=True)
class DilationPoint:
    sampling: int
    slowdown: float
    estimated_misses: float
    ticks: int
    increase_pct: float


@dataclass(frozen=True)
class Figure4Result:
    points: tuple[DilationPoint, ...]


def run_figure4(
    budget: str = "quick",
    workload: str = "mpeg_play",
    n_trials: int = 3,
    sweep: tuple[int, ...] = SAMPLING_SWEEP,
) -> Figure4Result:
    """Sweep dilation via sampling degree; averages ``n_trials`` trials
    per point to tame the sampling estimator's own variance."""
    spec = get_workload(workload)
    total_refs = budget_refs(budget)
    raw = []
    for denominator in sweep:
        slowdowns, estimates, ticks = [], [], []
        for trial in range(n_trials):
            report = run_trap_driven(
                spec,
                TapewormConfig(
                    cache=CacheConfig(size_bytes=4096),
                    sampling=denominator,
                    sampling_seed=400 + trial,
                ),
                RunOptions(total_refs=total_refs, trial_seed=400 + trial),
            )
            slowdowns.append(report.slowdown)
            estimates.append(report.estimated_misses)
            ticks.append(report.ticks)
        raw.append(
            (
                denominator,
                sum(slowdowns) / n_trials,
                sum(estimates) / n_trials,
                int(sum(ticks) / n_trials),
            )
        )
    baseline = raw[0][2]  # least-dilated point is the reference
    points = tuple(
        DilationPoint(
            sampling=denominator,
            slowdown=slowdown,
            estimated_misses=estimate,
            ticks=tick_count,
            increase_pct=100.0 * (estimate - baseline) / baseline,
        )
        for denominator, slowdown, estimate, tick_count in raw
    )
    return Figure4Result(points=points)


def render(result: Figure4Result) -> str:
    rows = [
        [
            f"1/{p.sampling}" if p.sampling > 1 else "none",
            p.slowdown,
            p.estimated_misses,
            p.ticks,
            f"{p.increase_pct:+.1f}%",
        ]
        for p in result.points
    ]
    table = format_table(
        ["Sampling", "Dilation (slowdown)", "Misses (est)", "Ticks", "Increase"],
        rows,
        title=(
            "Figure 4: error due to time dilation (mpeg_play, all "
            "activity, 4 KB physically-addressed direct-mapped)"
        ),
    )
    paper = ", ".join(f"{s}x -> +{e}%" for s, e in PAPER_POINTS)
    return table + f"\npaper: {paper}"
