"""Table 10: measurement variation removed.

The Table 7 measurement repeated with both controllable variance sources
off — virtually-indexed caches (no page-allocation effects) and no set
sampling.  Residual variance comes only from dynamic OS effects
(scheduling jitter), and the paper's standard deviations collapse from
7–76% to 0–4%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._types import Indexing
from repro.caches.config import CacheConfig
from repro.experiments import budget_refs
from repro.experiments.table7 import measure_once
from repro.harness.experiment import TrialStats, run_trials, run_trials_farm
from repro.harness.tables import format_table, pct
from repro.workloads.registry import WORKLOAD_NAMES

if TYPE_CHECKING:
    from repro.farm.pool import Farm

#: paper's residual s% per workload
PAPER_STDEV_PCT = {
    "eqntott": 2, "espresso": 1, "jpeg_play": 0, "kenbus": 0,
    "mpeg_play": 0, "ousterhout": 4, "sdet": 0, "xlisp": 1,
}


@dataclass(frozen=True)
class Table10Result:
    stats: dict[str, TrialStats]
    n_trials: int


def run_table10(
    budget: str = "quick",
    n_trials: int = 4,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    farm: "Farm | None" = None,
) -> Table10Result:
    total_refs = budget_refs(budget)
    cache = CacheConfig(size_bytes=16 * 1024, indexing=Indexing.VIRTUAL)
    stats = {}
    for name in workloads:
        if farm is not None:
            stats[name] = run_trials_farm(
                "table7.measure",
                {
                    "workload": name,
                    "total_refs": total_refs,
                    "cache": cache,
                    "sampling": 1,
                },
                n_trials,
                base_seed=100,
                farm=farm,
            )
        else:
            stats[name] = run_trials(
                lambda seed, name=name: measure_once(
                    name, seed, total_refs, cache=cache, sampling=1
                ),
                n_trials,
                base_seed=100,
            )
    return Table10Result(stats=stats, n_trials=n_trials)


def render(result: Table10Result) -> str:
    rows = []
    for name in sorted(result.stats):
        s = result.stats[name]
        rows.append(
            [
                name,
                s.mean,
                f"{s.stdev:.0f} {pct(s.stdev_pct)}",
                f"{s.value_range:.0f} {pct(s.range_pct)}",
                pct(PAPER_STDEV_PCT.get(name, 0)),
            ]
        )
    return format_table(
        ["Workload", "Misses (mean)", "s", "Range", "paper s%"],
        rows,
        title=(
            f"Table 10: variation removed ({result.n_trials} trials, "
            "16 KB virtually-indexed, no sampling, all activity)"
        ),
        precision=0,
    )
