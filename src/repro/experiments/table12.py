"""Table 12: privileged operations on modern (1994) microprocessors.

Renders the survey matrix from :mod:`repro.machine.ops` and, beyond the
paper's table, runs the port-feasibility assessment on every column —
reproducing section 4.3's conclusions (the R3000 DECstation does cache +
TLB simulation; the 486 port is TLB-only).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.tables import format_table
from repro.machine.ops import (
    PortAssessment,
    PRIVILEGED_OPS,
    PROCESSORS,
    assess_port,
    supports,
)


@dataclass(frozen=True)
class Table12Result:
    assessments: tuple[PortAssessment, ...]

    def assessment(self, processor: str) -> PortAssessment:
        for item in self.assessments:
            if item.processor == processor:
                return item
        raise KeyError(processor)


def run_table12() -> Table12Result:
    return Table12Result(
        assessments=tuple(assess_port(cpu) for cpu in PROCESSORS)
    )


def _cell(value: bool | None) -> str:
    if value is None:
        return ""
    return "Yes" if value else "No"


def render(result: Table12Result) -> str:
    rows = [
        [op] + [_cell(supports(cpu, op)) for cpu in PROCESSORS]
        for op in PRIVILEGED_OPS
    ]
    matrix = format_table(
        ["Privileged Operation"] + list(PROCESSORS),
        rows,
        title="Table 12: privileged operations on modern microprocessors",
    )
    feasibility = format_table(
        ["Processor", "Cache sim?", "TLB sim?", "Finest trap (bytes)"],
        [
            [
                a.processor,
                "Yes" if a.can_simulate_caches else "No",
                "Yes" if a.can_simulate_tlbs else "No",
                a.finest_granularity_bytes or "-",
            ]
            for a in result.assessments
        ],
        title="Port feasibility (section 4.3 reasoning)",
    )
    return matrix + "\n\n" + feasibility
