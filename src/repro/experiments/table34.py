"""Tables 3 and 4: workload descriptions and Monster measurements.

Table 3 is the workload catalogue; Table 4 reports what the Monster
monitor measured: instruction counts, run time, per-component time
fractions, and the user-task count.  Here the same quantities are read
off the simulated machine after an uninstrumented run, and shown next to
the paper's numbers (which the specs are calibrated to).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import budget_refs
from repro.harness.monster import Monster, MonsterReading
from repro.harness.runner import RunOptions, run_uninstrumented
from repro.harness.tables import format_table
from repro.workloads.base import WorkloadMeta
from repro.workloads.registry import all_workloads


@dataclass(frozen=True)
class Table4Row:
    meta: WorkloadMeta
    measured: MonsterReading


@dataclass(frozen=True)
class Table4Result:
    rows: tuple[Table4Row, ...]
    total_refs: int


def run_table34(budget: str = "quick", trial_seed: int = 0) -> Table4Result:
    total_refs = budget_refs(budget)
    rows = []
    for spec in all_workloads():
        kernel = run_uninstrumented(
            spec, RunOptions(total_refs=total_refs, trial_seed=trial_seed)
        )
        rows.append(
            Table4Row(meta=spec.meta, measured=Monster(kernel).reading(spec))
        )
    return Table4Result(rows=tuple(rows), total_refs=total_refs)


def render(result: Table4Result) -> str:
    table_rows = []
    for row in result.rows:
        meta, measured = row.meta, row.measured
        table_rows.append(
            [
                meta.name,
                measured.instructions,
                f"{measured.frac_kernel:.1%}/{meta.frac_kernel:.1%}",
                f"{measured.frac_bsd:.1%}/{meta.frac_bsd:.1%}",
                f"{measured.frac_x:.1%}/{meta.frac_x:.1%}",
                f"{measured.frac_user:.1%}/{meta.frac_user:.1%}",
                f"{measured.user_task_count}/{meta.user_task_count}",
            ]
        )
    return format_table(
        [
            "Workload",
            "Instr (scaled)",
            "Kernel (ours/paper)",
            "BSD (ours/paper)",
            "X (ours/paper)",
            "User (ours/paper)",
            "Tasks (ours/paper)",
        ],
        table_rows,
        title="Table 3/4: workload and operating system summary",
    )
