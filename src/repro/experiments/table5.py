"""Table 5: Tapeworm miss-handling time.

The per-routine breakdown of the optimized 246-cycle handler, plus the
measured average cycles per address of a Cache2000 run for comparison —
which yields the paper's "rough break-even ratio of 4 hits to 1 miss".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.config import CacheConfig
from repro.core.costs import CostBreakdown, HandlerCostModel
from repro.harness.runner import run_trace_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

#: Table 5's published instruction counts, for side-by-side rendering
PAPER_INSTRUCTIONS = {
    "kernel trap and return": 53,
    "tw_cache_miss()": 23,
    "tw_replace()": 20,
    "tw_set_trap()": 35,
    "tw_clear_trap()": 6,
}


@dataclass(frozen=True)
class Table5Result:
    breakdown: CostBreakdown
    tapeworm_cycles_per_miss: int
    cache2000_cycles_per_address: float
    break_even_hits_per_miss: float


def run_table5(
    budget: str = "quick",
    config: CacheConfig | None = None,
    workload: str = "mpeg_play",
) -> Table5Result:
    config = config or CacheConfig(size_bytes=4096)
    model = HandlerCostModel()
    tapeworm_cycles = model.cycles_per_cache_miss(config)
    # measure Cache2000's average per-address cost on a real stream
    trace = run_trace_driven(get_workload(workload), config, 100_000)
    per_address = (
        trace.overhead_cycles / trace.refs_traced
        if trace.refs_traced
        else 0.0
    )
    # the paper's break-even arithmetic: one ~250-cycle trap amortizes
    # against ~53-cycle per-address processing, so Tapeworm wins until
    # misses are more frequent than about 1 in 4-5 addresses
    from repro.tracing.cache2000 import CACHE2000_CYCLES_PER_HIT

    return Table5Result(
        breakdown=model.breakdown(config),
        tapeworm_cycles_per_miss=tapeworm_cycles,
        cache2000_cycles_per_address=per_address,
        break_even_hits_per_miss=tapeworm_cycles / CACHE2000_CYCLES_PER_HIT - 1,
    )


def render(result: Table5Result) -> str:
    rows = [
        [name, cycles, PAPER_INSTRUCTIONS[name]]
        for name, cycles in result.breakdown.rows()
    ]
    table = format_table(
        ["Routine", "Cycles", "(paper instr)"],
        rows,
        title="Table 5: Tapeworm miss handling time",
    )
    footer = (
        f"\nCycles per miss in Tapeworm       {result.tapeworm_cycles_per_miss}"
        f"\nCycles per address in Cache2000   "
        f"{result.cache2000_cycles_per_address:.1f} (incl. Pixie generation)"
        f"\nBreak-even hits per miss          "
        f"{result.break_even_hits_per_miss:.1f} (paper: ~4)"
    )
    return table + footer
