"""Table 6: miss contributions of the workload components.

Per workload, five trap-driven runs of a 4 KB direct-mapped I-cache:

* four *dedicated-cache* runs, each simulating one component alone
  (user tasks / servers / kernel), realized by setting Tapeworm
  attributes so only that component's pages are registered;
* one *all-activity* run where every component shares the cache.

Interference is the all-activity count minus the dedicated sum.  For the
single-task workloads, a Pixie+Cache2000 run fills the paper's "From
Traces" column; the multi-task workloads get a blank there, exactly as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trace_driven, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

#: the paper's Table 6 misses in millions (miss ratios in parentheses
#: there), for EXPERIMENTS.md comparison: (user, servers, kernel, all)
PAPER_MILLIONS = {
    "eqntott": (0.07, 2.52, 2.44, 8.44),
    "espresso": (1.80, 2.28, 1.96, 9.53),
    "jpeg_play": (3.14, 14.58, 9.21, 36.28),
    "kenbus": (7.50, 11.89, 12.78, 45.70),
    "mpeg_play": (37.91, 33.92, 19.27, 112.5),
    "ousterhout": (1.93, 18.62, 21.72, 61.39),
    "sdet": (20.14, 25.18, 18.09, 104.6),
    "xlisp": (90.02, 6.31, 2.98, 135.8),
}

SERVER_COMPONENTS = frozenset(
    {Component.BSD_SERVER, Component.X_SERVER}
)

#: which workloads Pixie can trace (single user task)
SINGLE_TASK = ("xlisp", "espresso", "eqntott", "mpeg_play", "jpeg_play")


@dataclass(frozen=True)
class Table6Row:
    workload: str
    from_traces: int | None
    user: int
    servers: int
    kernel: int
    all_activity: int
    total_refs: int

    @property
    def interference(self) -> int:
        return self.all_activity - (self.user + self.servers + self.kernel)

    def ratio(self, count: int) -> float:
        return count / self.total_refs if self.total_refs else 0.0


@dataclass(frozen=True)
class Table6Result:
    rows: tuple[Table6Row, ...]

    def row(self, workload: str) -> Table6Row:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)


def _dedicated_misses(spec, components, options, cache) -> tuple[int, int]:
    report = run_trap_driven(
        spec,
        TapewormConfig(cache=cache),
        RunOptions(
            total_refs=options.total_refs,
            trial_seed=options.trial_seed,
            simulate=frozenset(components),
        ),
    )
    return report.stats.total_misses, report.total_refs


def run_table6(
    budget: str = "quick",
    trial_seed: int = 5,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
) -> Table6Result:
    cache = CacheConfig(size_bytes=4096)
    options = RunOptions(total_refs=budget_refs(budget), trial_seed=trial_seed)
    rows = []
    for name in workloads:
        spec = get_workload(name)
        user, _ = _dedicated_misses(spec, {Component.USER}, options, cache)
        servers, _ = _dedicated_misses(spec, SERVER_COMPONENTS, options, cache)
        kernel, _ = _dedicated_misses(spec, {Component.KERNEL}, options, cache)
        all_activity, total_refs = _dedicated_misses(
            spec, set(Component), options, cache
        )
        from_traces = None
        if name in SINGLE_TASK:
            user_refs = int(round(options.total_refs * spec.meta.frac_user))
            from_traces = run_trace_driven(spec, cache, user_refs).misses
        rows.append(
            Table6Row(
                workload=name,
                from_traces=from_traces,
                user=user,
                servers=servers,
                kernel=kernel,
                all_activity=all_activity,
                total_refs=total_refs,
            )
        )
    return Table6Result(rows=tuple(rows))


def render(result: Table6Result) -> str:
    table_rows = []
    for row in sorted(result.rows, key=lambda r: r.workload):
        table_rows.append(
            [
                row.workload,
                row.from_traces if row.from_traces is not None else "",
                f"{row.user} ({row.ratio(row.user):.3f})",
                f"{row.servers} ({row.ratio(row.servers):.3f})",
                f"{row.kernel} ({row.ratio(row.kernel):.3f})",
                f"{row.all_activity} ({row.ratio(row.all_activity):.3f})",
                f"{row.interference} ({row.ratio(row.interference):.3f})",
            ]
        )
    return format_table(
        [
            "Workload",
            "From Traces",
            "User Tasks",
            "Servers",
            "Kernel",
            "All Activity",
            "Interference",
        ],
        table_rows,
        title=(
            "Table 6: miss count (miss ratio) contributions, "
            "4 KB direct-mapped I-cache, 4-word lines"
        ),
    )
