"""Table 7: variation in measured memory system performance.

Sixteen trials per workload of a 16 KB, 4-word-line, direct-mapped,
*physically-indexed* cache with 1/8 set sampling, all activity included.
Every variance source is live: page allocation, the sampling pattern, and
OS scheduling jitter.  The paper's standard deviations run from ~7% to
~76% of the mean; minima and maxima can differ from the mean by 2x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.experiment import TrialStats, run_trials, run_trials_farm
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table, pct
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

if TYPE_CHECKING:
    from repro.farm.pool import Farm

#: paper's s as a percent of the mean, per workload
PAPER_STDEV_PCT = {
    "eqntott": 57, "espresso": 60, "jpeg_play": 7, "kenbus": 25,
    "mpeg_play": 12, "ousterhout": 8, "sdet": 21, "xlisp": 76,
}


@dataclass(frozen=True)
class Table7Result:
    stats: dict[str, TrialStats]
    n_trials: int


def measure_once(
    workload: str,
    seed: int,
    total_refs: int,
    cache: CacheConfig | None = None,
    sampling: int = 8,
) -> float:
    """One Table 7 trial: estimated total misses, all variance live."""
    spec = get_workload(workload)
    report = run_trap_driven(
        spec,
        TapewormConfig(
            cache=cache or CacheConfig(size_bytes=16 * 1024),
            sampling=sampling,
            sampling_seed=seed,
        ),
        RunOptions(total_refs=total_refs, trial_seed=seed),
    )
    return report.estimated_misses


def run_table7(
    budget: str = "quick",
    n_trials: int = 8,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    farm: "Farm | None" = None,
) -> Table7Result:
    total_refs = budget_refs(budget)
    stats = {}
    for name in workloads:
        if farm is not None:
            stats[name] = run_trials_farm(
                "table7.measure",
                {"workload": name, "total_refs": total_refs},
                n_trials,
                base_seed=100,
                farm=farm,
            )
        else:
            stats[name] = run_trials(
                lambda seed, name=name: measure_once(name, seed, total_refs),
                n_trials,
                base_seed=100,
            )
    return Table7Result(stats=stats, n_trials=n_trials)


def render(result: Table7Result) -> str:
    rows = []
    for name in sorted(result.stats):
        s = result.stats[name]
        rows.append(
            [
                name,
                s.mean,
                f"{s.stdev:.0f} {pct(s.stdev_pct)}",
                f"{s.minimum:.0f} {pct(s.minimum_pct)}",
                f"{s.maximum:.0f} {pct(s.maximum_pct)}",
                f"{s.value_range:.0f} {pct(s.range_pct)}",
                pct(PAPER_STDEV_PCT.get(name, 0)),
            ]
        )
    return format_table(
        ["Workload", "Misses (mean)", "s", "Min", "Max", "Range", "paper s%"],
        rows,
        title=(
            f"Table 7: measurement variation over {result.n_trials} trials "
            "(16 KB physically-indexed, 1/8 sampling, all activity)"
        ),
        precision=0,
    )
