"""Table 7: variation in measured memory system performance.

Sixteen trials per workload of a 16 KB, 4-word-line, direct-mapped,
*physically-indexed* cache with 1/8 set sampling, all activity included.
Every variance source is live: page allocation, the sampling pattern, and
OS scheduling jitter.  The paper's standard deviations run from ~7% to
~76% of the mean; minima and maxima can differ from the mean by 2x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.experiment import TrialStats, run_trials, run_trials_farm
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table, pct
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

if TYPE_CHECKING:
    from repro.farm.pool import Farm
    from repro.sampling.runner import SampledRunResult

#: paper's s as a percent of the mean, per workload
PAPER_STDEV_PCT = {
    "eqntott": 57, "espresso": 60, "jpeg_play": 7, "kenbus": 25,
    "mpeg_play": 12, "ousterhout": 8, "sdet": 21, "xlisp": 76,
}


@dataclass(frozen=True)
class Table7Result:
    stats: dict[str, TrialStats]
    n_trials: int


def measure_once(
    workload: str,
    seed: int,
    total_refs: int,
    cache: CacheConfig | None = None,
    sampling: int = 8,
) -> float:
    """One Table 7 trial: estimated total misses, all variance live."""
    spec = get_workload(workload)
    report = run_trap_driven(
        spec,
        TapewormConfig(
            cache=cache or CacheConfig(size_bytes=16 * 1024),
            sampling=sampling,
            sampling_seed=seed,
        ),
        RunOptions(total_refs=total_refs, trial_seed=seed),
    )
    return report.estimated_misses


def run_table7(
    budget: str = "quick",
    n_trials: int = 8,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    farm: "Farm | None" = None,
) -> Table7Result:
    total_refs = budget_refs(budget)
    stats = {}
    for name in workloads:
        if farm is not None:
            stats[name] = run_trials_farm(
                "table7.measure",
                {"workload": name, "total_refs": total_refs},
                n_trials,
                base_seed=100,
                farm=farm,
            )
        else:
            stats[name] = run_trials(
                lambda seed, name=name: measure_once(name, seed, total_refs),
                n_trials,
                base_seed=100,
            )
    return Table7Result(stats=stats, n_trials=n_trials)


@dataclass(frozen=True)
class Table7SampledResult:
    """Table 7 via interval sampling: estimates instead of exact stats."""

    results: dict[str, "SampledRunResult"]
    n_trials: int


def default_interval_refs(total_refs: int, chunk_refs: int = 4096) -> int:
    """A serviceable default interval size: ~32 intervals per run, never
    smaller than a scheduler chunk (the runner's hard floor)."""
    return max(chunk_refs, total_refs // 32)


def run_table7_sampled(
    budget: str = "quick",
    n_trials: int = 8,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    farm: "Farm | None" = None,
    interval_refs: int | None = None,
    max_phases: int = 4,
    per_phase: int = 3,
) -> Table7SampledResult:
    """Table 7 with interval sampling: same configuration and seed
    ladder, but each trial simulates only the plan's representative
    intervals and the estimator reassembles full-run estimates with CIs.

    The Tapeworm sampling seed is pinned to the base seed (all trials
    share the warmed boundary snapshots, so they share the set-sampling
    pattern by construction — exactly the PR 5 warm-trial contract);
    per-trial variance comes from scheduler jitter, tick jitter and
    frame allocation, re-armed per (trial, interval) at each fork.
    """
    from repro.sampling import build_plan, profile_workload, run_sampled_trials

    total_refs = budget_refs(budget)
    base_seed = 100
    options = RunOptions(total_refs=total_refs, trial_seed=base_seed)
    interval = (
        interval_refs
        if interval_refs is not None
        else default_interval_refs(total_refs, options.chunk_refs)
    )
    results = {}
    for name in workloads:
        spec = get_workload(name)
        profile = profile_workload(spec, total_refs, interval)
        plan = build_plan(
            profile, max_phases=max_phases, per_phase=per_phase, seed=base_seed
        )
        results[name] = run_sampled_trials(
            spec,
            TapewormConfig(
                cache=CacheConfig(size_bytes=16 * 1024),
                sampling=8,
                sampling_seed=base_seed,
            ),
            options,
            plan,
            n_trials=n_trials,
            base_seed=base_seed,
            warm_seed=base_seed,
            farm=farm,
        )
    return Table7SampledResult(results=results, n_trials=n_trials)


def render_sampled(result: Table7SampledResult) -> str:
    rows = []
    for name in sorted(result.results):
        r = result.results[name]
        misses = r.estimates["misses"]
        boot = r.estimates["misses.bootstrap"]
        # rendered reduction counts measured refs only: warm accounting
        # depends on execution topology (serial vs farm, worker count),
        # and rendered tables must be byte-identical across all of them
        rows.append(
            [
                name,
                misses.value,
                f"[{misses.ci_low:.0f}, {misses.ci_high:.0f}]",
                f"[{boot.ci_low:.0f}, {boot.ci_high:.0f}]",
                f"{r.plan.n_phases}/{len(r.plan.samples)}",
                f"{100.0 * r.refs_simulated / r.exact_refs:.0f}%",
            ]
        )
    return format_table(
        [
            "Workload", "Misses (est)", "95% CI (t)", "95% CI (boot)",
            "Phases/Samples", "Refs simulated",
        ],
        rows,
        title=(
            f"Table 7 (interval-sampled): estimates over "
            f"{result.n_trials} trials — every value is estimated, "
            "not measured"
        ),
        precision=0,
    )


def render(result: Table7Result) -> str:
    rows = []
    for name in sorted(result.stats):
        s = result.stats[name]
        rows.append(
            [
                name,
                s.mean,
                f"{s.stdev:.0f} {pct(s.stdev_pct)}",
                f"{s.minimum:.0f} {pct(s.minimum_pct)}",
                f"{s.maximum:.0f} {pct(s.maximum_pct)}",
                f"{s.value_range:.0f} {pct(s.range_pct)}",
                pct(PAPER_STDEV_PCT.get(name, 0)),
            ]
        )
    return format_table(
        ["Workload", "Misses (mean)", "s", "Min", "Max", "Range", "paper s%"],
        rows,
        title=(
            f"Table 7: measurement variation over {result.n_trials} trials "
            "(16 KB physically-indexed, 1/8 sampling, all activity)"
        ),
        precision=0,
    )
