"""Table 8: measurement variation due to set sampling, isolated.

Page-allocation effects are removed by simulating a *virtually-indexed*
cache; only espresso's user task is simulated.  Trials with and without
1/8 sampling then show: zero variance unsampled, nonzero variance
sampled, with sampled estimates centered near the unsampled truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.experiment import TrialStats, run_trials
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table, pct
from repro.workloads.registry import get_workload

if TYPE_CHECKING:
    from repro.farm.pool import Farm

SIZES_KB = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Table8Result:
    sampled: dict[int, TrialStats]
    unsampled: dict[int, TrialStats]
    n_trials: int


def _measure(workload, size_kb, sampling, seed, total_refs):
    spec = get_workload(workload)
    report = run_trap_driven(
        spec,
        TapewormConfig(
            cache=CacheConfig(
                size_bytes=size_kb * 1024, indexing=Indexing.VIRTUAL
            ),
            sampling=sampling,
            sampling_seed=seed,
        ),
        RunOptions(
            total_refs=total_refs,
            trial_seed=seed,
            simulate=frozenset({Component.USER}),
        ),
    )
    return report.estimated_misses


def run_table8(
    budget: str = "quick",
    workload: str = "espresso",
    n_trials: int = 6,
    sizes_kb: tuple[int, ...] = SIZES_KB,
    farm: "Farm | None" = None,
) -> Table8Result:
    total_refs = budget_refs(budget)
    if farm is not None:
        return _run_table8_farm(farm, workload, n_trials, sizes_kb, total_refs)
    sampled, unsampled = {}, {}
    for size_kb in sizes_kb:
        sampled[size_kb] = run_trials(
            lambda seed, s=size_kb: _measure(workload, s, 8, seed, total_refs),
            n_trials,
            base_seed=200,
        )
        unsampled[size_kb] = run_trials(
            lambda seed, s=size_kb: _measure(workload, s, 1, seed, total_refs),
            n_trials,
            base_seed=200,
        )
    return Table8Result(sampled=sampled, unsampled=unsampled, n_trials=n_trials)


def _run_table8_farm(
    farm: "Farm",
    workload: str,
    n_trials: int,
    sizes_kb: tuple[int, ...],
    total_refs: int,
) -> Table8Result:
    """The whole size x sampling sweep as one job batch, so a pool of
    workers fills instead of draining per configuration."""
    from repro.farm.jobs import Job

    variants = [
        (size_kb, sampling) for size_kb in sizes_kb for sampling in (8, 1)
    ]
    jobs = [
        Job(
            "table8.measure",
            {
                "workload": workload,
                "size_kb": size_kb,
                "sampling": sampling,
                "total_refs": total_refs,
            },
            seed=200 + trial,
        )
        for size_kb, sampling in variants
        for trial in range(n_trials)
    ]
    values = iter(farm.run_jobs(jobs))
    sampled: dict[int, TrialStats] = {}
    unsampled: dict[int, TrialStats] = {}
    for size_kb, sampling in variants:
        stats = TrialStats(
            values=tuple(float(next(values)) for _ in range(n_trials))
        )
        (sampled if sampling == 8 else unsampled)[size_kb] = stats
    return Table8Result(sampled=sampled, unsampled=unsampled, n_trials=n_trials)


def render(result: Table8Result) -> str:
    rows = []
    for size_kb in sorted(result.sampled):
        s = result.sampled[size_kb]
        u = result.unsampled[size_kb]
        rows.append(
            [
                f"{size_kb}K",
                f"{s.mean:.0f}",
                f"{s.stdev:.0f} {pct(s.stdev_pct)}",
                f"{u.mean:.0f}",
                f"{u.stdev:.0f} {pct(u.stdev_pct)}",
            ]
        )
    return format_table(
        ["Size", "Sampled mean", "Sampled s", "Unsampled mean", "Unsampled s"],
        rows,
        title=(
            "Table 8: sampling-only variation (espresso user task, "
            "virtually-indexed, direct-mapped)"
        ),
    )
