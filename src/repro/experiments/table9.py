"""Table 9: measurement variation due to page allocation, isolated.

Sampling is off; only mpeg_play's user task runs.  The same simulation
is repeated for physically- and virtually-indexed caches from 4 KB to
128 KB.  Expectations from the paper:

* virtual indexing: zero variance at every size;
* physical indexing: zero variance at 4 KB ("all pages overlap in caches
  that are 4 K-bytes or smaller"), nonzero above, with the relative
  variance peaking near the workload's text size (~32 KB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.experiment import TrialStats, run_trials
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table, pct
from repro.workloads.registry import get_workload

if TYPE_CHECKING:
    from repro.farm.pool import Farm

SIZES_KB = (4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class Table9Result:
    physical: dict[int, TrialStats]
    virtual: dict[int, TrialStats]
    n_trials: int


def _measure(workload, size_kb, indexing, seed, total_refs):
    spec = get_workload(workload)
    report = run_trap_driven(
        spec,
        TapewormConfig(
            cache=CacheConfig(size_bytes=size_kb * 1024, indexing=indexing)
        ),
        RunOptions(
            total_refs=total_refs,
            trial_seed=seed,
            simulate=frozenset({Component.USER}),
        ),
    )
    return float(report.stats.total_misses)


def run_table9(
    budget: str = "quick",
    workload: str = "mpeg_play",
    n_trials: int = 4,
    sizes_kb: tuple[int, ...] = SIZES_KB,
    farm: "Farm | None" = None,
) -> Table9Result:
    total_refs = budget_refs(budget)
    if farm is not None:
        return _run_table9_farm(farm, workload, n_trials, sizes_kb, total_refs)
    physical, virtual = {}, {}
    for size_kb in sizes_kb:
        physical[size_kb] = run_trials(
            lambda seed, s=size_kb: _measure(
                workload, s, Indexing.PHYSICAL, seed, total_refs
            ),
            n_trials,
            base_seed=300,
        )
        virtual[size_kb] = run_trials(
            lambda seed, s=size_kb: _measure(
                workload, s, Indexing.VIRTUAL, seed, total_refs
            ),
            n_trials,
            base_seed=300,
        )
    return Table9Result(physical=physical, virtual=virtual, n_trials=n_trials)


def _run_table9_farm(
    farm: "Farm",
    workload: str,
    n_trials: int,
    sizes_kb: tuple[int, ...],
    total_refs: int,
) -> Table9Result:
    """Both indexings at every size as one job batch."""
    from repro.farm.jobs import Job

    variants = [
        (size_kb, indexing)
        for size_kb in sizes_kb
        for indexing in (Indexing.PHYSICAL, Indexing.VIRTUAL)
    ]
    jobs = [
        Job(
            "table9.measure",
            {
                "workload": workload,
                "size_kb": size_kb,
                "indexing": indexing,
                "total_refs": total_refs,
            },
            seed=300 + trial,
        )
        for size_kb, indexing in variants
        for trial in range(n_trials)
    ]
    values = iter(farm.run_jobs(jobs))
    physical: dict[int, TrialStats] = {}
    virtual: dict[int, TrialStats] = {}
    for size_kb, indexing in variants:
        stats = TrialStats(
            values=tuple(float(next(values)) for _ in range(n_trials))
        )
        target = physical if indexing is Indexing.PHYSICAL else virtual
        target[size_kb] = stats
    return Table9Result(physical=physical, virtual=virtual, n_trials=n_trials)


def render(result: Table9Result) -> str:
    rows = []
    for size_kb in sorted(result.physical):
        p = result.physical[size_kb]
        v = result.virtual[size_kb]
        rows.append(
            [
                f"{size_kb}K",
                f"{p.mean:.0f}",
                f"{p.stdev:.0f} {pct(p.stdev_pct)}",
                f"{v.mean:.0f}",
                f"{v.stdev:.0f} {pct(v.stdev_pct)}",
            ]
        )
    return format_table(
        ["Size", "Phys mean", "Phys s", "Virt mean", "Virt s"],
        rows,
        title=(
            "Table 9: page-allocation variation (mpeg_play user task, "
            "no sampling, direct-mapped)"
        ),
    )
