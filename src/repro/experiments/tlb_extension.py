"""Extension: the TLB studies Tapeworm was built for.

Tapeworm's first generation existed to study software-managed TLBs
under real OS load ([Nagle93], which the paper cites as the example of
actual studies performed with the tool).  This extension experiment
reproduces that study's flavor on the simulated substrate: sweep
simulated TLB sizes and page sizes over an OS-intensive and a
user-dominant workload, with instruction+data reference streams and all
components included — the coverage that made the original study
possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.config import TLBConfig
from repro.core.tapeworm import TapewormConfig
from repro.experiments import budget_refs
from repro.harness.runner import RunOptions, run_trap_driven
from repro.harness.tables import format_table
from repro.workloads.registry import get_workload

TLB_SIZES = (16, 32, 64, 128)
PAGE_KB = (4, 16, 64)
WORKLOADS = ("xlisp", "sdet")


@dataclass(frozen=True)
class TLBPoint:
    workload: str
    n_entries: int
    page_kb: int
    misses: int
    slowdown: float


@dataclass(frozen=True)
class TLBExtensionResult:
    points: tuple[TLBPoint, ...]

    def point(self, workload: str, n_entries: int, page_kb: int) -> TLBPoint:
        for p in self.points:
            if (
                p.workload == workload
                and p.n_entries == n_entries
                and p.page_kb == page_kb
            ):
                return p
        raise KeyError((workload, n_entries, page_kb))


def run_tlb_extension(
    budget: str = "quick", trial_seed: int = 4
) -> TLBExtensionResult:
    total_refs = budget_refs(budget) // 2  # TLB runs need fewer refs
    points = []
    for workload in WORKLOADS:
        spec = get_workload(workload)
        options = RunOptions(
            total_refs=total_refs,
            trial_seed=trial_seed,
            include_data_refs=True,
        )
        for n_entries in TLB_SIZES:
            for page_kb in PAGE_KB:
                config = TapewormConfig(
                    structure="tlb",
                    tlb=TLBConfig(
                        n_entries=n_entries, page_bytes=page_kb * 1024
                    ),
                )
                report = run_trap_driven(spec, config, options)
                points.append(
                    TLBPoint(
                        workload=workload,
                        n_entries=n_entries,
                        page_kb=page_kb,
                        misses=report.stats.total_misses,
                        slowdown=report.slowdown,
                    )
                )
    return TLBExtensionResult(points=tuple(points))


def render(result: TLBExtensionResult) -> str:
    sections = []
    for workload in WORKLOADS:
        rows = []
        for n_entries in TLB_SIZES:
            row = [str(n_entries)]
            for page_kb in PAGE_KB:
                row.append(result.point(workload, n_entries, page_kb).misses)
            rows.append(row)
        sections.append(
            format_table(
                ["Entries"] + [f"{kb}K pages" for kb in PAGE_KB],
                rows,
                title=f"TLB extension ({workload}): simulated TLB misses",
            )
        )
    return "\n\n".join(sections)
