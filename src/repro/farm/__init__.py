"""repro.farm — parallel trial execution with content-addressed caching.

The experiments in this library are embarrassingly parallel: every
trial is seeded (``base_seed + trial``) and fully deterministic, so the
serial loops in :mod:`repro.harness.experiment` are pure overhead.  The
farm turns a batch of trials into :class:`Job`\\ s, skips any whose
content-addressed key is already in the on-disk :class:`ResultCache`,
and shards the rest across a process pool — with output guaranteed
bit-for-bit identical to the serial path.

Quick start::

    from repro.farm import Farm, FarmConfig, Job

    farm = Farm(FarmConfig(max_workers=4))
    jobs = [
        Job("table7.measure",
            {"workload": "espresso", "total_refs": 300_000},
            seed=100 + trial)
        for trial in range(16)
    ]
    values = farm.run_jobs(jobs)        # parallel, cached
    print(farm.last_run.render())       # hits, latency, wall clock

``repro reproduce table7 --jobs 4`` drives the same machinery from the
command line; ``repro farm stats`` inspects the cache.

This module deliberately avoids importing :mod:`repro.farm.measures`
(which pulls in the full simulation stack) — measures resolve lazily by
import path when a job first needs them.
"""

from repro.farm.admission import AdmissionConfig, AdmissionController, Ticket
from repro.farm.cache import ResultCache
from repro.farm.gc import CacheGC, journal_pins
from repro.farm.jobs import CODE_VERSION, Job, canonical, fingerprint
from repro.farm.journal import JobJournal, StaleLeaseError
from repro.farm.pool import DEFAULT_CACHE_DIR, Farm, FarmConfig
from repro.farm.progress import FarmMetrics
from repro.farm.registry import (
    BUILTIN_MEASURES,
    execute_job,
    register,
    registered_names,
    resolve,
)
from repro.farm.service import FarmService, ServiceConfig
from repro.farm.supervisor import SupervisorConfig, WorkerSupervisor

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BUILTIN_MEASURES",
    "CODE_VERSION",
    "CacheGC",
    "DEFAULT_CACHE_DIR",
    "Farm",
    "FarmConfig",
    "FarmMetrics",
    "FarmService",
    "JobJournal",
    "Job",
    "ResultCache",
    "ServiceConfig",
    "StaleLeaseError",
    "SupervisorConfig",
    "Ticket",
    "WorkerSupervisor",
    "canonical",
    "execute_job",
    "fingerprint",
    "journal_pins",
    "register",
    "registered_names",
    "resolve",
]
