"""Admission control: bounded queues, fair share, shed-to-serial.

The service front door.  Clients submit batches as *tickets*; the
controller decides not *whether* they run — nothing is ever rejected —
but *how*:

bounded queue depth
    Total queued jobs are capped.  A submission that would burst the
    cap is still admitted, but marked *degraded*: the service runs it
    in-process serially (``max_workers=1``) instead of fanning it onto
    the pool.  By the farm determinism contract serial execution is
    bit-identical to pooled execution, so load shedding changes
    latency, never answers — the Ramulator-style contract that degraded
    modes must produce correct numbers, not fast wrong ones.

fair share
    Tickets drain round-robin across client ids, one ticket per client
    per turn, so a client that dumps a thousand batches cannot starve
    the client that submitted one.

breaker coupling
    The controller also carries the overload breaker: consecutive
    degraded admissions past ``shed_breaker`` keep the service in
    serial mode until a submission is admitted under the cap again
    (the same open/half-open shape as the PR 4 pool breaker, applied
    one layer up).

Single-threaded by design: the service loop owns the controller, and
"concurrency" here is the multiplexing of many clients' queued work
onto one farm — matching the paper's batch-simulation reality where one
master schedules everything.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ConfigError
from repro.farm.jobs import Job


@dataclass(frozen=True)
class AdmissionConfig:
    """Front-door knobs."""

    #: total queued jobs (across all clients) before shedding starts
    max_queue_depth: int = 64
    #: consecutive shed admissions that latch serial-degraded mode
    #: (0 disables the latch; each shed then degrades only itself)
    shed_breaker: int = 0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be at least 1, "
                f"got {self.max_queue_depth}"
            )
        if self.shed_breaker < 0:
            raise ConfigError(
                f"shed_breaker must be non-negative, got {self.shed_breaker}"
            )


@dataclass
class Ticket:
    """One client batch moving through the service."""

    ticket_id: int
    client: str
    jobs: list[Job]
    batch: str = ""
    #: run serially in-process (load shed) instead of on the pool
    degraded: bool = False
    state: str = "queued"
    results: list[Any] | None = None
    error: str = ""
    reasons: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        return {
            "ticket": self.ticket_id,
            "client": self.client,
            "batch": self.batch,
            "jobs": len(self.jobs),
            "degraded": self.degraded,
            "state": self.state,
            "error": self.error,
        }


class AdmissionController:
    """Bounded, fair-share, never-rejecting front end."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self._queues: dict[str, deque[Ticket]] = {}
        #: round-robin cursor over client ids, stable across mutation
        self._turn: deque[str] = deque()
        self._ids = itertools.count(1)
        self.admitted = 0
        self.shed = 0
        self._consecutive_shed = 0
        self._degraded_latched = False

    # -- intake

    @property
    def depth(self) -> int:
        """Total jobs currently queued across every client."""
        return sum(
            len(ticket.jobs)
            for queue in self._queues.values()
            for ticket in queue
        )

    @property
    def tickets_queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def degraded_latched(self) -> bool:
        """Whether the overload breaker is holding serial mode open."""
        return self._degraded_latched

    def submit(
        self,
        jobs: Sequence[Job],
        client: str = "default",
        batch: str = "",
    ) -> Ticket:
        """Admit a batch; never rejects.

        Over the depth cap the ticket is admitted *degraded*: it will
        run serially, trading latency for correctness under overload.
        """
        ticket = Ticket(
            ticket_id=next(self._ids),
            client=client,
            jobs=list(jobs),
            batch=batch,
        )
        overloaded = self.depth + len(ticket.jobs) > self.config.max_queue_depth
        if overloaded or self._degraded_latched:
            ticket.degraded = True
            if overloaded:
                self.shed += 1
                self._consecutive_shed += 1
                if (
                    self.config.shed_breaker
                    and self._consecutive_shed >= self.config.shed_breaker
                ):
                    self._degraded_latched = True
        else:
            self._consecutive_shed = 0
            self._degraded_latched = False
        self.admitted += 1
        if client not in self._queues:
            self._queues[client] = deque()
            self._turn.append(client)
        self._queues[client].append(ticket)
        return ticket

    # -- fair-share drain

    def next_ticket(self) -> Ticket | None:
        """The next ticket under round-robin fair share, or None."""
        for _ in range(len(self._turn)):
            client = self._turn[0]
            self._turn.rotate(-1)
            queue = self._queues.get(client)
            if queue:
                return queue.popleft()
        return None

    def drain_order(self) -> list[Ticket]:
        """Pop every queued ticket in fair-share order."""
        tickets = []
        while True:
            ticket = self.next_ticket()
            if ticket is None:
                return tickets
            tickets.append(ticket)

    # -- reporting

    def summary(self) -> dict[str, Any]:
        return {
            "queue_depth": self.depth,
            "tickets_queued": self.tickets_queued,
            "clients": len(self._queues),
            "admitted": self.admitted,
            "shed": self.shed,
            "degraded_latched": self._degraded_latched,
        }

    def publish(self, metrics) -> None:
        """Copy front-door totals under ``farm.service.*``."""
        metrics.gauge("farm.service.queue_depth").set(self.depth)
        metrics.gauge("farm.service.clients").set(len(self._queues))
        if self.admitted:
            metrics.counter("farm.service.admitted").inc(self.admitted)
        if self.shed:
            metrics.counter("farm.service.shed").inc(self.shed)
        metrics.gauge("farm.service.degraded").set(
            1 if self._degraded_latched else 0
        )
