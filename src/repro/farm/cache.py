"""On-disk result store, keyed by job fingerprints.

Layout under the cache directory (default ``.farm-cache/``):

``results.jsonl``
    One JSON object per cached result: ``{"key", "measure", "seed",
    "value", "elapsed"}``.  Append-only; on a duplicate key the latest
    line wins (results are deterministic, so duplicates agree anyway).
``stats.json``
    Cumulative farm counters across runs, maintained by
    :meth:`ResultCache.record_run` and read by ``repro farm stats``.

Only the scheduler process reads or writes the store — workers return
results to the master — so no file locking is needed.  Values must be
JSON-encodable (floats round-trip exactly through ``json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator, Mapping

RESULTS_FILE = "results.jsonl"
STATS_FILE = "stats.json"


class ResultCache:
    """Get/put store with hit/miss counters and a disable switch.

    With ``enabled=False`` (the ``--no-cache`` bypass) every lookup
    misses and puts are dropped, but counters still advance so metrics
    stay meaningful.
    """

    def __init__(
        self,
        directory: str | Path = ".farm-cache",
        enabled: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._index: dict[str, Any] | None = None

    # -- storage

    @property
    def _results_path(self) -> Path:
        return self.directory / RESULTS_FILE

    @property
    def _stats_path(self) -> Path:
        return self.directory / STATS_FILE

    def _load(self) -> dict[str, Any]:
        if self._index is None:
            self._index = {}
            if self._results_path.exists():
                for line in self._results_path.read_text().splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        self._index[record["key"]] = record["value"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        continue  # a torn write loses one entry, not the cache
        return self._index

    # -- the get/put surface

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; a miss returns ``(False, None)``."""
        if self.enabled and key in self._load():
            self.hits += 1
            return True, self._load()[key]
        self.misses += 1
        return False, None

    def put(
        self,
        key: str,
        value: Any,
        *,
        measure: str = "",
        seed: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        if not self.enabled:
            return
        record = {
            "key": key,
            "measure": measure,
            "seed": seed,
            "value": value,
            "elapsed": round(elapsed, 6),
        }
        line = json.dumps(record, sort_keys=True)
        self.directory.mkdir(parents=True, exist_ok=True)
        with self._results_path.open("a") as handle:
            handle.write(line + "\n")
        self._load()[key] = value

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return self.enabled and key in self._load()

    def entries(self) -> Iterator[dict[str, Any]]:
        """Yield the stored records (latest per key)."""
        if not self._results_path.exists():
            return
        latest: dict[str, dict[str, Any]] = {}
        for line in self._results_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                latest[record["key"]] = record
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
        yield from latest.values()

    def clear(self) -> int:
        """Drop every stored result; returns how many were dropped."""
        count = len(self._load())
        for path in (self._results_path, self._stats_path):
            if path.exists():
                path.unlink()
        self._index = {}
        return count

    # -- cumulative run statistics (the ``repro farm stats`` view)

    def read_stats(self) -> dict[str, Any]:
        if self._stats_path.exists():
            try:
                return json.loads(self._stats_path.read_text())
            except json.JSONDecodeError:
                pass
        return {
            "runs": 0,
            "jobs": 0,
            "cache_hits": 0,
            "executed": 0,
            "retries": 0,
            "wall_clock_secs": 0.0,
        }

    def record_run(self, summary: Mapping[str, Any]) -> None:
        """Fold one farm run's summary into the cumulative counters."""
        if not self.enabled:
            return
        stats = self.read_stats()
        stats["runs"] += 1
        stats["jobs"] += summary.get("jobs", 0)
        stats["cache_hits"] += summary.get("cache_hits", 0)
        stats["executed"] += summary.get("executed", 0)
        stats["retries"] += summary.get("retries", 0)
        stats["wall_clock_secs"] = round(
            stats["wall_clock_secs"] + summary.get("wall_clock_secs", 0.0), 6
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._stats_path.write_text(json.dumps(stats, indent=2) + "\n")
