"""On-disk result store, keyed by job fingerprints.

Layout under the cache directory (default ``.farm-cache/``):

``results.jsonl``
    One JSON object per cached result: ``{"key", "measure", "seed",
    "value", "elapsed", "crc"}``.  Append-only; on a duplicate key the
    latest line wins (results are deterministic, so duplicates agree
    anyway).  ``crc`` is a CRC32 over the record's canonical JSON
    (without the ``crc`` field itself); records failing the check — or
    failing to parse at all — are *quarantined*: skipped, copied to
    ``quarantine.jsonl``, counted under :attr:`ResultCache.corrupt`,
    and logged once.  A corrupt cache never crashes a run and never
    serves a damaged value; the job simply recomputes.
``stats.json``
    Cumulative farm counters across runs, maintained by
    :meth:`ResultCache.record_run` and read by ``repro farm stats``.
``quarantine.jsonl``
    Raw corrupt lines, kept for post-mortems.

All writes are crash-consistent (temp file + ``os.replace`` via
:mod:`repro.atomicio`), so a scheduler killed mid-write can tear at
most the final line of the *previous* format — and the loader tolerates
that too.  Only the scheduler process reads or writes the store —
workers return results to the master — so no file locking is needed.
Values must be JSON-encodable (floats round-trip exactly through
``json``).
"""

from __future__ import annotations

import json
import logging
import zlib
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.atomicio import RotatingLedger, atomic_append_line, atomic_write_text
from repro.errors import FarmError

RESULTS_FILE = "results.jsonl"
STATS_FILE = "stats.json"
QUARANTINE_FILE = "quarantine.jsonl"

logger = logging.getLogger(__name__)


def record_crc(record: Mapping[str, Any]) -> str:
    """CRC32 (hex) over a record's canonical JSON, ``crc`` excluded."""
    body = {name: value for name, value in record.items() if name != "crc"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(blob.encode('utf-8')) & 0xFFFFFFFF:08x}"


class ResultCache:
    """Get/put store with hit/miss counters and a disable switch.

    With ``enabled=False`` (the ``--no-cache`` bypass) every lookup
    misses and puts are dropped, but counters still advance so metrics
    stay meaningful.
    """

    def __init__(
        self,
        directory: str | Path = ".farm-cache",
        enabled: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        #: corrupt records skipped (quarantined) since this instance
        #: first read the store
        self.corrupt = 0
        self._corrupt_recorded = 0
        self._corruption_logged = False
        self._index: dict[str, Any] | None = None
        #: entries a clear/GC left in place because a journal lease
        #: still references them
        self.pinned_skips = 0
        # size-capped quarantine: a corruption storm rotates the file
        # instead of filling the disk (one generation of history kept)
        self._quarantine_ledger = RotatingLedger(self._quarantine_path)

    # -- storage

    @property
    def _results_path(self) -> Path:
        return self.directory / RESULTS_FILE

    @property
    def _stats_path(self) -> Path:
        return self.directory / STATS_FILE

    @property
    def _quarantine_path(self) -> Path:
        return self.directory / QUARANTINE_FILE

    def _quarantine(self, line: str, reason: str) -> None:
        self.corrupt += 1
        if not self._corruption_logged:
            self._corruption_logged = True
            logger.warning(
                "farm cache %s holds corrupt record(s) (%s); quarantining "
                "to %s and recomputing — further corruptions this run are "
                "counted silently",
                self._results_path, reason, self._quarantine_path,
            )
        self._quarantine_ledger.append(line)

    def _read_records(self) -> Iterator[dict[str, Any]]:
        """Yield verified records; corrupt lines are quarantined."""
        if not self._results_path.exists():
            return
        for line in self._results_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # a torn or truncated trailing line, or garbage bytes
                self._quarantine(line, "not valid JSON")
                continue
            if not isinstance(record, dict) or "key" not in record or (
                "value" not in record
            ):
                self._quarantine(line, "missing key/value fields")
                continue
            if "crc" in record and record["crc"] != record_crc(record):
                self._quarantine(line, "CRC mismatch")
                continue
            # pre-CRC records (no "crc" field) are accepted as-is
            yield record

    def _load(self) -> dict[str, Any]:
        if self._index is None:
            self._index = {}
            for record in self._read_records():
                self._index[record["key"]] = record["value"]
        return self._index

    # -- the get/put surface

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; a miss returns ``(False, None)``."""
        if self.enabled and key in self._load():
            self.hits += 1
            return True, self._load()[key]
        self.misses += 1
        return False, None

    def put(
        self,
        key: str,
        value: Any,
        *,
        measure: str = "",
        seed: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        if not self.enabled:
            return
        record = {
            "key": key,
            "measure": measure,
            "seed": seed,
            "value": value,
            "elapsed": round(elapsed, 6),
        }
        record["crc"] = record_crc(record)
        atomic_append_line(
            self._results_path, json.dumps(record, sort_keys=True)
        )
        self._load()[key] = value

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return self.enabled and key in self._load()

    def entries(self) -> Iterator[dict[str, Any]]:
        """Yield the stored verified records (latest per key)."""
        latest: dict[str, dict[str, Any]] = {}
        for record in self._read_records():
            latest[record["key"]] = record
        yield from latest.values()

    def _contained(self, path: Path) -> bool:
        """Whether ``path`` resolves to inside the cache directory."""
        root = self.directory.resolve()
        try:
            path.resolve().relative_to(root)
        except ValueError:
            return False
        return True

    def clear(self, pinned: frozenset[str] | set[str] = frozenset()) -> int:
        """Drop every stored result; returns how many were dropped.

        Refuses (raising :class:`FarmError`) to unlink anything that
        does not resolve to inside the cache directory — a symlink
        planted at ``results.jsonl`` cannot steer the delete at an
        unrelated file, and a mis-set ``--dir`` cannot silently eat one.

        Entries named in ``pinned`` — keys a live journal lease still
        references — survive the clear (counted in
        :attr:`pinned_skips`): deleting a result out from under an
        in-flight resume would turn exactly-once replay into silent
        re-execution.
        """
        count = len(self._load())
        victims = [
            self._results_path, self._stats_path, self._quarantine_path
        ]
        for path in victims:
            if path.exists() and (
                path.is_symlink() or not self._contained(path)
            ):
                raise FarmError(
                    f"refusing to clear {path}: it escapes the farm cache "
                    f"directory {self.directory}"
                )
        survivors = []
        if pinned:
            survivors = [
                record
                for record in self.entries()
                if record["key"] in pinned
            ]
            self.pinned_skips += len(survivors)
        for path in victims:
            if path.exists():
                path.unlink()
        self._index = {}
        if survivors:
            lines = [
                json.dumps(record, sort_keys=True) for record in survivors
            ]
            atomic_write_text(self._results_path, "\n".join(lines) + "\n")
            for record in survivors:
                self._index[record["key"]] = record["value"]
        return count - len(survivors)

    # -- cumulative run statistics (the ``repro farm stats`` view)

    def read_stats(self) -> dict[str, Any]:
        stats = {
            "runs": 0,
            "jobs": 0,
            "cache_hits": 0,
            "executed": 0,
            "retries": 0,
            "cache_corrupt": 0,
            "wall_clock_secs": 0.0,
        }
        if self._stats_path.exists():
            try:
                stats.update(json.loads(self._stats_path.read_text()))
            except json.JSONDecodeError:
                pass
        return stats

    def record_run(self, summary: Mapping[str, Any]) -> None:
        """Fold one farm run's summary into the cumulative counters."""
        if not self.enabled:
            return
        stats = self.read_stats()
        stats["runs"] += 1
        stats["jobs"] += summary.get("jobs", 0)
        stats["cache_hits"] += summary.get("cache_hits", 0)
        stats["executed"] += summary.get("executed", 0)
        stats["retries"] += summary.get("retries", 0)
        stats["cache_corrupt"] += self.corrupt - self._corrupt_recorded
        self._corrupt_recorded = self.corrupt
        stats["wall_clock_secs"] = round(
            stats["wall_clock_secs"] + summary.get("wall_clock_secs", 0.0), 6
        )
        atomic_write_text(
            self._stats_path, json.dumps(stats, indent=2) + "\n"
        )
