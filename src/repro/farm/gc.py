"""Size-budgeted shard/GC layer over the three cache tiers.

A service that runs for days accretes three on-disk caches: the farm
result store (``.farm-cache/results.jsonl``), the compiled-stream store
(``.stream-cache/*.npy`` + sidecars) and the kernel compile ledger
(``.kernel-cache/compiles.jsonl``).  All three are content-addressed by
SHA-256-derived keys and append-only, so left alone they only grow.
:class:`CacheGC` brings each tier under a byte budget without ever
breaking the reproducibility contract:

LRU by atime
    Blob tiers evict least-recently-*used* first (``st_atime`` of the
    blob, which every verified ``get`` touches), so the hot working set
    survives.  Ledger tiers drop oldest records first (append order is
    recency order for JSONL stores whose latest-per-key record wins).

pinning
    Keys named by a live journal lease (queued or leased jobs in the
    write-ahead journal) are never evicted — evicting a result out from
    under an in-flight resume would turn exactly-once replay into
    re-execution mid-recovery.  Skips are counted under
    ``cache.gc.pinned_skips`` so the race is observable, not silent.

crash-consistent deletion ordering
    A stream entry dies sidecar-first, blob-last: the sidecar is the
    commit point, so a crash mid-eviction leaves an *uncommitted* blob
    that reads as a clean miss (and is swept as an orphan by the next
    GC), never a sidecar pointing at a vanished blob.

two-level shard dirs
    With ``shard=True`` the stream tier is migrated from a flat
    directory into ``<key[:2]>/<key[2:4]>/`` shard dirs (256*256
    buckets over the existing hex keys), keeping per-directory entry
    counts bounded however large the store grows.  The store reads
    both layouts, so migration order never makes an entry unreadable.

GC racing a reader is benign by construction: POSIX unlink removes the
name, not the pages — an ``np.load(..., mmap_mode="r")`` mapping taken
before the eviction stays valid, and a lookup after it is a clean miss
that recompiles.  The chaos suite pins this.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.atomicio import atomic_write_text

logger = logging.getLogger(__name__)

#: hex chars per shard level: ``key[:2]/key[2:4]/<key>.npy``
SHARD_GLOB = "[0-9a-f][0-9a-f]"


def shard_dir(root: Path, key: str) -> Path:
    """The two-level shard directory for ``key`` under ``root``."""
    return root / key[:2] / key[2:4]


@dataclass
class TierReport:
    """What one GC pass did to one cache tier."""

    tier: str
    directory: str = ""
    scanned: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    evicted: int = 0
    orphans_swept: int = 0
    pinned_skips: int = 0
    migrated: int = 0

    @property
    def bytes_freed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tier": self.tier,
            "directory": self.directory,
            "scanned": self.scanned,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "bytes_freed": self.bytes_freed,
            "evicted": self.evicted,
            "orphans_swept": self.orphans_swept,
            "pinned_skips": self.pinned_skips,
            "migrated": self.migrated,
        }


@dataclass
class _StreamEntry:
    key: str
    sidecar: Path
    blob: Path
    nbytes: int
    atime: float


class CacheGC:
    """One GC pass over the cache tiers, budgeted per tier."""

    def __init__(
        self,
        budget_bytes: int | None,
        pins: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        #: per-tier byte budget; None means sweep orphans/migrate only
        self.budget_bytes = budget_bytes
        #: keys a live journal lease protects from eviction
        self.pins = frozenset(pins)
        self.reports: list[TierReport] = []

    # -- the stream blob tier

    def _stream_entries(self, directory: Path) -> list[_StreamEntry]:
        entries: dict[str, _StreamEntry] = {}
        sidecars: list[Path] = sorted(directory.glob("*.json"))
        sidecars += sorted(
            directory.glob(f"{SHARD_GLOB}/{SHARD_GLOB}/*.json")
        )
        for sidecar in sidecars:
            key = sidecar.stem
            blob = sidecar.with_suffix(".npy")
            if not blob.exists():
                continue  # uncommitted tail; the orphan sweep ignores
            try:
                stat = blob.stat()
                nbytes = stat.st_size + sidecar.stat().st_size
                entries[key] = _StreamEntry(
                    key=key,
                    sidecar=sidecar,
                    blob=blob,
                    nbytes=nbytes,
                    atime=stat.st_atime,
                )
            except OSError:
                continue
        return sorted(entries.values(), key=lambda e: (e.atime, e.key))

    def _sweep_stream_orphans(
        self, directory: Path, report: TierReport
    ) -> None:
        """Delete blobs with no sidecar: interrupted puts, or the
        blob-last half of an interrupted eviction."""
        blobs: list[Path] = sorted(directory.glob("*.npy"))
        blobs += sorted(directory.glob(f"{SHARD_GLOB}/{SHARD_GLOB}/*.npy"))
        for blob in blobs:
            if blob.with_suffix(".json").exists():
                continue
            try:
                blob.unlink()
                report.orphans_swept += 1
            except OSError:
                pass

    def _migrate_stream_entry(
        self, directory: Path, entry: _StreamEntry, report: TierReport
    ) -> _StreamEntry:
        """Move one flat entry into its shard dir, blob then sidecar."""
        target = shard_dir(directory, entry.key)
        try:
            target.mkdir(parents=True, exist_ok=True)
            new_blob = target / entry.blob.name
            new_sidecar = target / entry.sidecar.name
            os.replace(entry.blob, new_blob)
            os.replace(entry.sidecar, new_sidecar)
        except OSError:
            return entry
        report.migrated += 1
        return _StreamEntry(
            key=entry.key,
            sidecar=new_sidecar,
            blob=new_blob,
            nbytes=entry.nbytes,
            atime=entry.atime,
        )

    def collect_stream_tier(
        self, directory: str | Path, shard: bool = False
    ) -> TierReport:
        """Sweep orphans, optionally shard-migrate, then evict LRU
        until the tier fits the budget (pinned keys excepted)."""
        directory = Path(directory)
        report = TierReport(tier="stream", directory=str(directory))
        self.reports.append(report)
        if not directory.is_dir():
            return report
        self._sweep_stream_orphans(directory, report)
        entries = self._stream_entries(directory)
        if shard:
            entries = [
                self._migrate_stream_entry(directory, e, report)
                if e.sidecar.parent == directory
                else e
                for e in entries
            ]
        report.scanned = len(entries)
        total = sum(e.nbytes for e in entries)
        report.bytes_before = total
        if self.budget_bytes is not None:
            for entry in entries:  # LRU first
                if total <= self.budget_bytes:
                    break
                if entry.key in self.pins:
                    report.pinned_skips += 1
                    continue
                # sidecar first (uncommit), blob last: a crash between
                # the two leaves an orphan blob = a clean miss
                try:
                    entry.sidecar.unlink()
                    entry.blob.unlink()
                except OSError:
                    continue
                total -= entry.nbytes
                report.evicted += 1
        report.bytes_after = total
        return report

    # -- the JSONL ledger tiers (farm results, kernel compiles)

    def _collect_ledger(
        self,
        tier: str,
        path: Path,
        key_field: str,
        pinned: frozenset[str],
    ) -> TierReport:
        report = TierReport(tier=tier, directory=str(path.parent))
        self.reports.append(report)
        if not path.exists():
            return report
        try:
            raw_lines = path.read_text().splitlines()
        except OSError:
            return report
        report.bytes_before = path.stat().st_size
        records: list[tuple[str, str]] = []  # (key, line), append order
        for line in raw_lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tails die in the rewrite
            if not isinstance(record, dict):
                continue
            records.append((str(record.get(key_field, "")), line))
        report.scanned = len(records)
        if (
            self.budget_bytes is None
            or report.bytes_before <= self.budget_bytes
        ):
            report.bytes_after = report.bytes_before
            return report
        # newest-first keep list: later lines supersede earlier ones
        kept: list[tuple[str, str]] = []
        seen: set[str] = set()
        budget = self.budget_bytes
        total = 0
        for key, line in reversed(records):
            if key and key in seen:
                continue  # an older duplicate of a kept record
            cost = len(line) + 1
            if key and key in pinned:
                report.pinned_skips += 1
            elif total + cost > budget:
                report.evicted += 1
                continue
            seen.add(key)
            kept.append((key, line))
            total += cost
        kept.reverse()  # restore append order
        body = "".join(line + "\n" for _, line in kept)
        atomic_write_text(path, body)
        report.bytes_after = len(body.encode("utf-8"))
        return report

    def collect_farm_tier(self, directory: str | Path) -> TierReport:
        """Budget the farm result store, honoring journal pins."""
        from repro.farm.cache import RESULTS_FILE

        return self._collect_ledger(
            "farm",
            Path(directory) / RESULTS_FILE,
            key_field="key",
            pinned=self.pins,
        )

    def collect_kernel_tier(self, directory: str | Path) -> TierReport:
        """Budget the kernel compile ledger (no pinning: records are
        provenance, not inputs to in-flight jobs)."""
        from repro.caches.pipeline.registry import LEDGER_NAME

        return self._collect_ledger(
            "kernel",
            Path(directory) / LEDGER_NAME,
            key_field="fingerprint",
            pinned=frozenset(),
        )

    # -- the all-tiers entry point

    def collect(
        self,
        farm_dir: str | Path | None = None,
        stream_dir: str | Path | None = None,
        kernel_dir: str | Path | None = None,
        shard: bool = False,
    ) -> list[TierReport]:
        """One pass over every named tier; returns the tier reports."""
        if farm_dir is not None:
            self.collect_farm_tier(farm_dir)
        if stream_dir is not None:
            self.collect_stream_tier(stream_dir, shard=shard)
        if kernel_dir is not None:
            self.collect_kernel_tier(kernel_dir)
        return self.reports

    def summary(self) -> dict[str, Any]:
        return {
            "budget_bytes": self.budget_bytes,
            "pins": len(self.pins),
            "tiers": [report.to_dict() for report in self.reports],
            "evicted": sum(r.evicted for r in self.reports),
            "pinned_skips": sum(r.pinned_skips for r in self.reports),
            "bytes_freed": sum(r.bytes_freed for r in self.reports),
        }

    def publish(self, metrics) -> None:
        """Copy GC totals under ``cache.gc.*``."""
        for report in self.reports:
            if report.evicted:
                metrics.counter(
                    "cache.gc.evicted", tier=report.tier
                ).inc(report.evicted)
            if report.bytes_freed:
                metrics.counter(
                    "cache.gc.bytes_freed", tier=report.tier
                ).inc(report.bytes_freed)
            if report.pinned_skips:
                metrics.counter("cache.gc.pinned_skips").inc(
                    report.pinned_skips
                )
            if report.migrated:
                metrics.counter("cache.gc.migrated").inc(report.migrated)
            if report.orphans_swept:
                metrics.counter("cache.gc.orphans_swept").inc(
                    report.orphans_swept
                )


def journal_pins(cache_dir: str | Path) -> frozenset[str]:
    """The pin set a journal in ``cache_dir`` imposes (empty if none)."""
    from repro.farm.journal import JobJournal

    journal = JobJournal(cache_dir)
    if not journal.path.exists():
        return frozenset()
    return journal.live_keys()
