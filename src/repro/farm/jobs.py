"""Jobs and their content-addressed keys.

A :class:`Job` names one independent unit of work: a registered measure
(see :mod:`repro.farm.registry`), its parameters, and a trial seed.  Two
jobs with the same measure, parameters and seed compute the same value —
every simulation in this library is deterministic given its seed — so a
job's identity *is* its result's identity.  The farm exploits that with
a stable SHA-256 key over a canonical JSON encoding of the job, salted
with a code-version string so cached results are invalidated wholesale
whenever measurement semantics change.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigError

#: Salt mixed into every job key.  Bump the version suffix whenever a
#: change alters what any measure computes — old cache entries then stop
#: matching and are recomputed instead of silently served stale.
CODE_VERSION = "repro-farm-v1"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-encodable structure with one spelling.

    Handles the parameter types that appear in simulation configs:
    dataclasses (``CacheConfig``, ``TLBConfig``, ...), enums
    (``Indexing``, ``Component``), mappings, sequences and sets, plus the
    JSON scalars.  Anything else is rejected loudly — a silently
    unstable key is worse than no key.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__qualname__}.{value.name}"}
    if isinstance(value, Mapping):
        return {str(key): canonical(val) for key, val in value.items()}
    if isinstance(value, (frozenset, set)):
        encoded = [canonical(item) for item in value]
        return sorted(encoded, key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(
        f"cannot fingerprint a {type(value).__name__} job parameter: {value!r}"
    )


def fingerprint(
    measure: str, params: Mapping[str, Any], seed: int, salt: str = CODE_VERSION
) -> str:
    """SHA-256 hex digest over the canonical encoding of one job."""
    payload = {
        "measure": measure,
        "params": canonical(params),
        "seed": seed,
        "salt": salt,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Job:
    """One schedulable trial: a registered measure, parameters, a seed."""

    measure: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.measure:
            raise ConfigError("Job needs a measure name")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigError(f"Job seed must be an integer, got {self.seed!r}")

    def key(self, salt: str = CODE_VERSION) -> str:
        """Content-addressed cache key for this job's result."""
        return fingerprint(self.measure, self.params, self.seed, salt)
