"""The write-ahead job journal: crash-recoverable batch state.

A batch that matters is *journaled before it runs*.  Every job passes
through the state machine::

    queued ──> leased ──> done
                  │  └──> failed
                  └─────> poisoned

Each transition is one CRC-guarded JSONL record appended crash-
consistently (``repro.atomicio``) to ``journal.jsonl`` in the farm
cache directory, so a master SIGKILLed at any instant leaves either the
previous complete journal or the new complete journal on disk — never a
torn record.  On restart, :meth:`JobJournal.incomplete` names exactly
the jobs whose value was never durably committed, and carries enough of
each job (measure, params, seed) to rebuild and re-run it.

Lease epochs and fencing
------------------------

Every lease increments the job's *epoch*.  A commit must present the
epoch it was leased under; a commit carrying a stale epoch is refused
with :class:`StaleLeaseError` and counted, never applied.  This is the
fencing token pattern: if a job times out, is re-leased to a second
worker, and the first (presumed-dead) worker's result then surfaces, it
cannot double-commit — exactly one lease per epoch can retire a job.

Exactly-once contract
---------------------

The commit ordering is: execute, then write the result cache record,
then journal ``done``.  A crash between cache write and ``done`` leaves
a leased job whose value *is* in the cache — resume reconciles it (the
``reconcile`` op) without re-executing.  A crash before the cache write
re-executes the job, which is observationally identical because every
job is deterministic in its seed.  Hence journal replay composed with
cache reconciliation is the identity on batch results.

The journal is owned by one master process at a time; it is not a
multi-writer lock file.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.atomicio import RotatingLedger, atomic_append_lines, atomic_write_text
from repro.errors import FarmError
from repro.farm.cache import record_crc

JOURNAL_FILE = "journal.jsonl"
JOURNAL_QUARANTINE_FILE = "journal.quarantine.jsonl"

#: journal record schema version
JOURNAL_VERSION = 1

#: job states, in lifecycle order
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
POISONED = "poisoned"

#: states with a live claim on cache entries (GC/clear must not evict)
LIVE_STATES = frozenset({QUEUED, LEASED})
#: states a resume must pick up and drive to completion
INCOMPLETE_STATES = frozenset({QUEUED, LEASED})
#: states that never run again without an explicit requeue
TERMINAL_STATES = frozenset({DONE, FAILED, POISONED})

logger = logging.getLogger(__name__)


class StaleLeaseError(FarmError):
    """A commit presented an epoch older than the job's current lease.

    The fencing failure mode: a resurrected worker trying to retire a
    job that has since been re-leased.  The commit is refused; the
    caller's value must be discarded.
    """


@dataclass
class JournalEntry:
    """The reconstructed latest state of one journaled job."""

    key: str
    state: str = QUEUED
    measure: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    batch: str = ""
    client: str = ""
    epoch: int = 0
    reason: dict[str, Any] = field(default_factory=dict)
    #: whether the stored params survive a JSON round trip (replayable)
    replayable: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "state": self.state,
            "measure": self.measure,
            "seed": self.seed,
            "batch": self.batch,
            "client": self.client,
            "epoch": self.epoch,
            "reason": self.reason,
            "replayable": self.replayable,
        }


def _encode_params(params: Mapping[str, Any]) -> tuple[dict[str, Any], bool]:
    """Params as stored in the journal, plus whether they round-trip.

    Farmed experiment params are plain JSON scalars today; anything
    fancier is stored best-effort (``repr``) and marked non-replayable —
    resume can still reconcile such a job from the cache, it just cannot
    re-execute it.
    """
    try:
        encoded = json.loads(json.dumps(dict(params)))
        return encoded, True
    except (TypeError, ValueError):
        return {name: repr(value) for name, value in params.items()}, False


class JobJournal:
    """Append-only journal over one farm cache directory."""

    def __init__(
        self,
        directory: str | Path,
        enabled: bool = True,
        quarantine_budget_bytes: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.enabled = enabled
        #: commits refused by lease fencing since this instance loaded
        self.fenced_commits = 0
        #: corrupt journal lines quarantined since this instance loaded
        self.corrupt = 0
        self._corruption_logged = False
        self._entries: dict[str, JournalEntry] | None = None
        quarantine = self.directory / JOURNAL_QUARANTINE_FILE
        self._quarantine = (
            RotatingLedger(quarantine, quarantine_budget_bytes)
            if quarantine_budget_bytes is not None
            else RotatingLedger(quarantine)
        )

    # -- storage

    @property
    def path(self) -> Path:
        return self.directory / JOURNAL_FILE

    def _quarantine_line(self, line: str, reason: str) -> None:
        self.corrupt += 1
        if not self._corruption_logged:
            self._corruption_logged = True
            logger.warning(
                "job journal %s holds corrupt record(s) (%s); quarantining "
                "to %s — further corruptions this run are counted silently",
                self.path, reason, self._quarantine.path,
            )
        self._quarantine.append(line)

    def _read_ops(self) -> Iterator[dict[str, Any]]:
        """Yield verified journal operations in append order."""
        if not self.path.exists():
            return
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self._quarantine_line(line, "not valid JSON")
                continue
            if not isinstance(record, dict) or "op" not in record or (
                "key" not in record
            ):
                self._quarantine_line(line, "missing op/key fields")
                continue
            if record.get("crc") != record_crc(record):
                self._quarantine_line(line, "CRC mismatch")
                continue
            yield record

    def _replay(self) -> dict[str, JournalEntry]:
        """Fold the op log into the latest per-job state."""
        entries: dict[str, JournalEntry] = {}
        for record in self._read_ops():
            op = record["op"]
            key = record["key"]
            if op == "queue":
                entry = entries.get(key) or JournalEntry(key=key)
                entry.state = QUEUED
                entry.measure = str(record.get("measure", entry.measure))
                entry.seed = int(record.get("seed", entry.seed))
                entry.batch = str(record.get("batch", entry.batch))
                entry.client = str(record.get("client", entry.client))
                entry.reason = {}
                params = record.get("params")
                if isinstance(params, dict):
                    entry.params = params
                entry.replayable = bool(record.get("replayable", True))
                entries[key] = entry
                continue
            entry = entries.get(key)
            if entry is None:
                # a transition without its queue record (pre-compaction
                # tail or cross-directory copy): synthesize a shell so
                # state still resolves
                entry = JournalEntry(key=key, replayable=False)
                entries[key] = entry
            if op == "lease":
                entry.state = LEASED
                entry.epoch = int(record.get("epoch", entry.epoch + 1))
            elif op in (DONE, "reconcile"):
                entry.state = DONE
            elif op == "fail":
                entry.state = FAILED
                reason = record.get("reason")
                entry.reason = reason if isinstance(reason, dict) else {}
            elif op == "poison":
                entry.state = POISONED
                reason = record.get("reason")
                entry.reason = reason if isinstance(reason, dict) else {}
            elif op == "requeue":
                entry.state = QUEUED
                entry.reason = {}
        return entries

    def _load(self) -> dict[str, JournalEntry]:
        if self._entries is None:
            self._entries = self._replay()
        return self._entries

    def _append(self, records: list[dict[str, Any]]) -> None:
        if not self.enabled:
            return
        lines = []
        for record in records:
            record.setdefault("v", JOURNAL_VERSION)
            record.setdefault("ts", round(time.time(), 3))
            record["crc"] = record_crc(record)
            lines.append(json.dumps(record, sort_keys=True))
        atomic_append_lines(self.path, lines)

    # -- the write-ahead surface

    def queue(
        self,
        jobs_with_keys: Iterable[tuple[Any, str]],
        batch: str = "",
        client: str = "",
    ) -> None:
        """Journal a batch *before* any job runs (one atomic append)."""
        records = []
        entries = self._load()
        for job, key in jobs_with_keys:
            current = entries.get(key)
            if current is not None and current.state in LIVE_STATES:
                continue  # already journaled and incomplete: keep its epoch
            params, replayable = _encode_params(job.params)
            records.append(
                {
                    "op": "queue",
                    "key": key,
                    "measure": job.measure,
                    "params": params,
                    "seed": job.seed,
                    "batch": batch,
                    "client": client,
                    "replayable": replayable,
                }
            )
            entries[key] = JournalEntry(
                key=key,
                state=QUEUED,
                measure=job.measure,
                params=params,
                seed=job.seed,
                batch=batch,
                client=client,
                epoch=current.epoch if current is not None else 0,
                replayable=replayable,
            )
        self._append(records)

    def lease(self, key: str) -> int:
        """Claim a job for execution; returns the fencing epoch."""
        entry = self._require(key)
        entry.epoch += 1
        entry.state = LEASED
        self._append([{"op": "lease", "key": key, "epoch": entry.epoch}])
        return entry.epoch

    def commit(self, key: str, epoch: int) -> None:
        """Retire a leased job as done; refused under a stale epoch."""
        entry = self._require(key)
        if epoch != entry.epoch:
            self.fenced_commits += 1
            raise StaleLeaseError(
                f"commit for job {key[:12]} fenced: presented epoch {epoch}, "
                f"current lease epoch is {entry.epoch}"
            )
        entry.state = DONE
        self._append([{"op": "done", "key": key, "epoch": epoch}])

    def reconcile(self, key: str) -> None:
        """Retire a job whose value was found already durable in the
        result cache (a cache hit, or a resume after a crash that landed
        between cache write and ``done``)."""
        entry = self._require(key)
        entry.state = DONE
        self._append([{"op": "reconcile", "key": key, "epoch": entry.epoch}])

    def fail(self, key: str, epoch: int, reason: Mapping[str, Any]) -> None:
        entry = self._require(key)
        entry.state = FAILED
        entry.reason = dict(reason)
        self._append(
            [{"op": "fail", "key": key, "epoch": epoch, "reason": dict(reason)}]
        )

    def poison(self, key: str, epoch: int, reason: Mapping[str, Any]) -> None:
        """Quarantine a job that keeps destroying its workers."""
        entry = self._require(key)
        entry.state = POISONED
        entry.reason = dict(reason)
        self._append(
            [
                {
                    "op": "poison",
                    "key": key,
                    "epoch": epoch,
                    "reason": dict(reason),
                }
            ]
        )

    def requeue(self, key: str) -> None:
        """Put a failed/poisoned job back in play (``repro jobs retry``)."""
        entry = self._require(key)
        if entry.state in LIVE_STATES:
            return
        entry.state = QUEUED
        entry.reason = {}
        self._append([{"op": "requeue", "key": key}])

    def _require(self, key: str) -> JournalEntry:
        entry = self._load().get(key)
        if entry is None:
            raise FarmError(
                f"job {key[:12]} was never journaled; queue it first"
            )
        return entry

    # -- the recovery / inspection surface

    def entries(self) -> list[JournalEntry]:
        """Latest state of every journaled job, stable order."""
        return sorted(
            self._load().values(), key=lambda e: (e.batch, e.seed, e.key)
        )

    def get(self, key: str) -> JournalEntry | None:
        return self._load().get(key)

    def incomplete(self) -> list[JournalEntry]:
        """Jobs a resume must drive to completion (queued or leased)."""
        return [e for e in self.entries() if e.state in INCOMPLETE_STATES]

    def poisoned(self) -> list[JournalEntry]:
        return [e for e in self.entries() if e.state == POISONED]

    def live_keys(self) -> frozenset[str]:
        """Keys with a live claim on cache entries — the GC pin set."""
        return frozenset(
            e.key for e in self._load().values() if e.state in LIVE_STATES
        )

    def counts(self) -> dict[str, int]:
        counts = {QUEUED: 0, LEASED: 0, DONE: 0, FAILED: 0, POISONED: 0}
        for entry in self._load().values():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts

    def compact(self) -> int:
        """Drop retired (``done``) jobs; returns how many were dropped.

        Failed and poisoned jobs survive compaction — they are the
        operator's worklist (``repro jobs list|retry``).  The rewrite is
        atomic, so a crash mid-compaction loses nothing.
        """
        entries = self._load()
        keep = {
            key: entry
            for key, entry in entries.items()
            if entry.state != DONE
        }
        dropped = len(entries) - len(keep)
        if dropped == 0:
            return 0
        lines = []
        for entry in sorted(keep.values(), key=lambda e: (e.batch, e.seed, e.key)):
            record: dict[str, Any] = {
                "op": "queue",
                "key": entry.key,
                "measure": entry.measure,
                "params": entry.params,
                "seed": entry.seed,
                "batch": entry.batch,
                "client": entry.client,
                "replayable": entry.replayable,
                "v": JOURNAL_VERSION,
                "ts": round(time.time(), 3),
            }
            record["crc"] = record_crc(record)
            lines.append(json.dumps(record, sort_keys=True))
            if entry.state != QUEUED:
                tail: dict[str, Any] = {
                    "op": {
                        LEASED: "lease",
                        FAILED: "fail",
                        POISONED: "poison",
                    }[entry.state],
                    "key": entry.key,
                    "epoch": entry.epoch,
                    "v": JOURNAL_VERSION,
                    "ts": round(time.time(), 3),
                }
                if entry.reason:
                    tail["reason"] = entry.reason
                tail["crc"] = record_crc(tail)
                lines.append(json.dumps(tail, sort_keys=True))
        if lines:
            atomic_write_text(self.path, "\n".join(lines) + "\n")
        elif self.path.exists():
            self.path.unlink()
        self._entries = keep
        return dropped

    def clear(self) -> int:
        """Drop the whole journal (every state); returns entry count."""
        count = len(self._load())
        if self.path.exists():
            self.path.unlink()
        self._entries = {}
        return count

    def publish(self, metrics) -> None:
        """Snapshot journal health under ``farm.service.journal.*``."""
        for state, count in self.counts().items():
            metrics.gauge(f"farm.service.journal.{state}").set(count)
        if self.fenced_commits:
            metrics.counter("farm.service.fenced_commits").inc(
                self.fenced_commits
            )
        if self.corrupt:
            metrics.counter("farm.service.journal.corrupt").inc(self.corrupt)
