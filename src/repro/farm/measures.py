"""General-purpose farmable measures.

The table experiments register their own measure functions
(:data:`~repro.farm.registry.BUILTIN_MEASURES`); everything else — the
ablation benchmarks, ad-hoc sweeps — goes through :func:`trap_measure`,
a job-friendly wrapper around one trap-driven run.  Parameters are plain
JSON types (cache geometry as a dict, components as value strings) so
jobs fingerprint stably and survive the result cache.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig, TLBConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import ConfigError
from repro.harness.runner import RunOptions, run_trap_driven
from repro.workloads.registry import get_workload

#: report fields ``trap_measure`` can return
METRICS = ("total_misses", "estimated_misses", "slowdown")


def _cache_config(spec: Mapping[str, Any] | CacheConfig | None) -> CacheConfig | None:
    if spec is None or isinstance(spec, CacheConfig):
        return spec
    spec = dict(spec)
    if "indexing" in spec:
        spec["indexing"] = Indexing(spec["indexing"])
    return CacheConfig(**spec)


def _tlb_config(spec: Mapping[str, Any] | TLBConfig | None) -> TLBConfig | None:
    if spec is None or isinstance(spec, TLBConfig):
        return spec
    return TLBConfig(**dict(spec))


def trap_measure(
    seed: int,
    workload: str,
    total_refs: int,
    structure: str = "cache",
    cache: Mapping[str, Any] | CacheConfig | None = None,
    l2: Mapping[str, Any] | CacheConfig | None = None,
    tlb: Mapping[str, Any] | TLBConfig | None = None,
    sampling: int = 1,
    replacement: str = "lru",
    handler_variant: str = "optimized",
    alloc_policy: str = "random",
    components: tuple[str, ...] | list[str] | None = None,
    include_data_refs: bool = False,
    metric: str = "estimated_misses",
) -> Any:
    """One trap-driven run, reduced to ``metric`` (or a dict for ``"all"``).

    ``components`` is a sequence of :class:`Component` values
    (``"user"``, ``"kernel"``, ``"bsd_server"``, ``"x_server"``); ``None``
    simulates everything.  ``cache``/``l2``/``tlb`` accept the config
    dataclasses or plain dicts of their fields.
    """
    if metric != "all" and metric not in METRICS:
        raise ConfigError(
            f"unknown metric {metric!r}; choose from {METRICS + ('all',)}"
        )
    spec = get_workload(workload)
    config = TapewormConfig(
        structure=structure,
        cache=_cache_config(cache),
        l2=_cache_config(l2),
        tlb=_tlb_config(tlb),
        sampling=sampling,
        sampling_seed=seed,
        replacement=replacement,
        handler_variant=handler_variant,
    )
    simulate = (
        frozenset(Component(name) for name in components)
        if components is not None
        else frozenset(Component)
    )
    options = RunOptions(
        total_refs=total_refs,
        trial_seed=seed,
        alloc_policy=alloc_policy,
        simulate=simulate,
        include_data_refs=include_data_refs,
    )
    report = run_trap_driven(spec, config, options)
    values = {
        "total_misses": float(report.stats.total_misses),
        "estimated_misses": float(report.estimated_misses),
        "slowdown": float(report.slowdown),
    }
    return values if metric == "all" else values[metric]
