"""The farm scheduler: cache lookups, a process pool, retries.

:meth:`Farm.run_jobs` takes a batch of :class:`~repro.farm.jobs.Job`\\ s
and returns their values *in job order*, regardless of which worker
computed what when.  The contract is bit-for-bit equivalence with
running every job serially in-process:

* every job carries its own seed, so sharding cannot reorder randomness;
* results are reassembled by job index, so completion order is invisible;
* cached values round-trip through JSON, which is exact for floats.

Jobs found in the result cache are never executed.  Misses run either
in-process (``max_workers=1``, or when no process pool can be created —
restricted environments without ``fork``/semaphores) or on a
``ProcessPoolExecutor`` with deterministic submission order, a per-job
timeout, and bounded retry when a worker crashes mid-batch.
"""

from __future__ import annotations

import logging
import random
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ConfigError, FarmError, PoisonedJobsError, TelemetryError
from repro.farm.cache import ResultCache
from repro.farm.jobs import CODE_VERSION, Job
from repro.farm.progress import FarmMetrics
from repro.farm.registry import instrumented_execute, timed_execute
from repro.faults.infra import WorkerFaults, faulted_execute
from repro.telemetry.session import active as _telemetry
from repro.telemetry.spans import span as _span

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle via keys
    from repro.farm.journal import JobJournal
    from repro.farm.supervisor import WorkerSupervisor
    from repro.streams.transport import StreamTransport

#: default location of the on-disk result store
DEFAULT_CACHE_DIR = Path(".farm-cache")


@dataclass(frozen=True)
class FarmConfig:
    """Scheduler knobs."""

    #: worker processes; 1 means in-process serial execution
    max_workers: int = 1
    #: consult/populate the on-disk result store
    use_cache: bool = True
    cache_dir: str | Path = DEFAULT_CACHE_DIR
    #: seconds the master waits per job before declaring it failed
    job_timeout: float | None = None
    #: extra scheduling attempts after a worker crash or timeout
    max_retries: int = 2
    #: code-version salt mixed into every job key
    salt: str = CODE_VERSION
    #: first retry delay in seconds; doubles each attempt
    backoff_base: float = 0.05
    #: ceiling on any single retry delay
    backoff_max: float = 2.0
    #: jitter fraction added on top of the exponential delay (seeded)
    backoff_jitter: float = 0.25
    #: seed for the jitter stream, so retry timing replays exactly
    backoff_seed: int = 0
    #: consecutive no-progress pool failures before the circuit breaker
    #: degrades the rest of the batch to in-process serial execution
    #: (0 disables; must be <= max_retries to ever engage, since retry
    #: exhaustion raises first)
    breaker_threshold: int = 0
    #: worker-fault schedule injected by chaos runs (None = no faults)
    worker_faults: WorkerFaults | None = None
    #: compiled-stream handle shipped to every pool worker (None = each
    #: worker regenerates its streams); see :mod:`repro.streams.transport`.
    #: Fault-injected submissions ignore it — chaos paths measure the
    #: retry machinery, not stream delivery.
    stream_transport: StreamTransport | None = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ConfigError(
                f"max_workers must be at least 1, got {self.max_workers}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ConfigError(
                f"job_timeout must be positive, got {self.job_timeout}"
            )
        if self.backoff_base < 0:
            raise ConfigError(
                f"backoff_base must be non-negative, got {self.backoff_base}"
            )
        if self.backoff_max < self.backoff_base:
            raise ConfigError(
                f"backoff_max ({self.backoff_max}) must be >= "
                f"backoff_base ({self.backoff_base})"
            )
        if self.backoff_jitter < 0:
            raise ConfigError(
                f"backoff_jitter must be non-negative, got {self.backoff_jitter}"
            )
        if self.breaker_threshold < 0:
            raise ConfigError(
                f"breaker_threshold must be non-negative, "
                f"got {self.breaker_threshold}"
            )

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait before retry ``attempt`` (1-based):
        exponential with a seeded jitter fraction, capped."""
        base = min(self.backoff_max, self.backoff_base * 2 ** (attempt - 1))
        return round(base * (1.0 + self.backoff_jitter * rng.random()), 6)


class _PoolUnavailable(Exception):
    """Process pools cannot be created in this environment."""


class Farm:
    """Executes job batches against a shared result cache."""

    def __init__(self, config: FarmConfig | None = None) -> None:
        self.config = config or FarmConfig()
        self.cache = ResultCache(
            self.config.cache_dir, enabled=self.config.use_cache
        )
        #: cumulative metrics across every ``run_jobs`` call on this farm
        self.metrics = FarmMetrics(workers=self.config.max_workers)
        #: metrics of the most recent ``run_jobs`` call
        self.last_run: FarmMetrics | None = None
        #: optional service-plane attachments (set by the farm service):
        #: a write-ahead job journal and a worker supervisor.  Both
        #: default to None, leaving plain batch behavior untouched.
        self.journal: JobJournal | None = None
        self.supervisor: WorkerSupervisor | None = None
        #: label journaled batches carry (set by the service per ticket)
        self.batch_label = ""
        self.client_id = ""
        self._batch_started = 0.0
        self._telemetry_drop_logged = False
        self._epochs: dict[int, int] = {}
        self._poisoned: dict[str, dict[str, Any]] = {}

    # -- public surface

    def run_jobs(self, jobs: Sequence[Job]) -> list[Any]:
        """Return each job's value, in job order."""
        run = FarmMetrics(workers=self.config.max_workers)
        run.jobs = len(jobs)
        corrupt_before = self.cache.corrupt
        start = time.perf_counter()
        self._batch_started = start
        session = _telemetry()

        batch_span = (
            session.spans.span(
                "farm.batch",
                run_id=session.run_id,
                jobs=len(jobs),
                workers=self.config.max_workers,
            )
            if session is not None
            else nullcontext()
        )
        with batch_span:
            results: list[Any] = [None] * len(jobs)
            keys = [job.key(self.config.salt) for job in jobs]
            pending: dict[int, Job] = {}
            self._epochs = {}
            self._poisoned = {}
            if self.journal is not None:
                # write-ahead: the whole batch is durable before any
                # job runs, so a SIGKILL at any later instant leaves a
                # journal that names exactly the unfinished work
                self.journal.queue(
                    zip(jobs, keys),
                    batch=self.batch_label,
                    client=self.client_id,
                )
            for index, (job, key) in enumerate(zip(jobs, keys)):
                hit, value = self.cache.get(key)
                if hit:
                    results[index] = value
                    run.cache_hits += 1
                    if self.journal is not None:
                        self.journal.reconcile(key)
                    if session is not None:
                        session.trace.farm_job(
                            "cache_hit",
                            ts_secs=time.perf_counter() - start,
                            measure=job.measure,
                            seed=job.seed,
                        )
                else:
                    pending[index] = job

            if pending:
                if self.config.max_workers == 1:
                    self._run_serial(pending, keys, results, run)
                else:
                    try:
                        self._run_pool(pending, keys, results, run)
                    except _PoolUnavailable:
                        run.fallback_serial = True
                        self._run_serial(pending, keys, results, run)

            run.wall_clock_secs = time.perf_counter() - start
            run.cache_corrupt = self.cache.corrupt - corrupt_before
            run.poisoned = len(self._poisoned)
            self.last_run = run
            self.metrics.merge(run)
            self.cache.record_run(run.summary())
            if session is not None:
                run.publish(session.metrics)
                if self.supervisor is not None:
                    self.supervisor.publish(session.metrics)
                if self.journal is not None:
                    self.journal.publish(session.metrics)
        if self._poisoned:
            # everything healthy finished (and is cached/journaled);
            # report the quarantined stragglers with their reasons
            raise PoisonedJobsError(
                f"{len(self._poisoned)} job(s) poisoned "
                f"(quarantined after striking distinct workers); "
                f"{run.cache_hits + run.executed} of {run.jobs} completed",
                poisoned=dict(self._poisoned),
                results=results,
            )
        return results

    def run_job(self, job: Job) -> Any:
        """Convenience single-job entry point."""
        return self.run_jobs([job])[0]

    # -- execution strategies

    def _store(
        self,
        index: int,
        job: Job,
        key: str,
        value: Any,
        elapsed: float,
        results: list[Any],
        run: FarmMetrics,
    ) -> None:
        results[index] = value
        run.record_execution(elapsed)
        session = _telemetry()
        if session is not None:
            completed = time.perf_counter() - self._batch_started
            session.trace.farm_job(
                "job",
                ts_secs=max(0.0, completed - elapsed),
                dur_secs=elapsed,
                measure=job.measure,
                seed=job.seed,
            )
        with _span(
            "farm.cache_write", job_key=key[:12], measure=job.measure
        ):
            self.cache.put(
                key, value, measure=job.measure, seed=job.seed, elapsed=elapsed
            )
        if self.journal is not None:
            # commit strictly *after* the cache write: a crash in the
            # window leaves a leased job whose value is already durable,
            # which resume reconciles without re-executing (exactly-once
            # observable effect)
            epoch = self._epochs.get(index)
            if epoch is not None:
                self.journal.commit(key, epoch)
            else:
                self.journal.reconcile(key)

    def _run_serial(
        self,
        pending: dict[int, Job],
        keys: list[str],
        results: list[Any],
        run: FarmMetrics,
    ) -> None:
        for index in sorted(pending):
            job = pending[index]
            if self.journal is not None:
                self._epochs[index] = self.journal.lease(keys[index])
            with _span(
                "farm.job",
                job_key=keys[index][:12],
                measure=job.measure,
                seed=job.seed,
            ):
                try:
                    value, elapsed = timed_execute(
                        job.measure, dict(job.params), job.seed
                    )
                except Exception as exc:
                    if self.journal is not None:
                        self.journal.fail(
                            keys[index],
                            self._epochs.get(index, 0),
                            {"code": "execute_error", "error": repr(exc)},
                        )
                    raise
            self._store(index, job, keys[index], value, elapsed, results, run)
        pending.clear()

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        index: int,
        job: Job,
        key: str,
        attempt: int,
    ) -> Future:
        faults = self.config.worker_faults
        if faults is not None:
            return pool.submit(
                faulted_execute,
                faults.action_for(index, attempt),
                faults.hang_secs,
                job.measure,
                dict(job.params),
                job.seed,
            )
        transport = self._current_transport()
        session = _telemetry()
        if session is not None:
            # capture the worker's spans and metrics in the job result;
            # the transport (if any) composes underneath
            ctx = {
                "run_id": session.run_id,
                "job_key": key,
                "profile": session.profile,
            }
            return pool.submit(
                instrumented_execute,
                ctx,
                job.measure,
                dict(job.params),
                job.seed,
                transport,
            )
        if transport is not None:
            from repro.streams.transport import transported_execute

            return pool.submit(
                transported_execute,
                transport,
                job.measure,
                dict(job.params),
                job.seed,
            )
        return pool.submit(
            timed_execute, job.measure, dict(job.params), job.seed
        )

    def _absorb_envelope(self, envelope: Any, elapsed: float) -> None:
        """Fold one worker's telemetry envelope into the master session.

        An envelope the master cannot merge is a bug somewhere — fail
        loudly (one log line per farm, a ``farm.telemetry_dropped``
        counter per occurrence) instead of discarding it silently.
        """
        session = _telemetry()
        if session is None or envelope is None:
            return
        completed = time.perf_counter() - self._batch_started
        shift_us = max(0.0, completed - elapsed) * 1e6
        try:
            session.absorb_worker_envelope(envelope, shift_us=shift_us)
        except TelemetryError as exc:
            session.metrics.counter("farm.telemetry_dropped").inc()
            if not self._telemetry_drop_logged:
                self._telemetry_drop_logged = True
                logger.warning(
                    "worker result carried telemetry the master could not "
                    "merge (%s); counting under farm.telemetry_dropped", exc,
                )

    def _current_transport(self) -> StreamTransport | None:
        """The transport workers should use for this batch.

        Re-derived from the active stream session when there is one, so
        streams compiled (or shared-memory segments published) *after*
        the farm was configured — e.g. by a precompile step — still
        reach the workers.  Falls back to the configured snapshot.
        """
        if self.config.stream_transport is None:
            return None
        from repro.streams.session import active as _stream_session

        session = _stream_session()
        if session is not None:
            return session.transport()
        return self.config.stream_transport

    def _trip_breaker(
        self,
        pending: dict[int, Job],
        keys: list[str],
        results: list[Any],
        run: FarmMetrics,
    ) -> None:
        """Degrade the rest of the batch to in-process serial execution.

        Sound because jobs themselves are deterministic and the
        failures being counted are *pool-level* (workers dying, jobs
        never returning) — executing in the master sidesteps the pool
        entirely.  Worker-fault schedules never apply on this path.
        """
        run.breaker_tripped = True
        run.fallback_serial = True
        session = _telemetry()
        if session is not None:
            session.trace.farm_job(
                "breaker_open",
                ts_secs=time.perf_counter() - self._batch_started,
                pending=len(pending),
            )
        self._run_serial(pending, keys, results, run)

    def _run_pool(
        self,
        pending: dict[int, Job],
        keys: list[str],
        results: list[Any],
        run: FarmMetrics,
    ) -> None:
        config = self.config
        supervisor = self.supervisor
        attempts = 0
        consecutive_failures = 0
        jitter_rng = random.Random(config.backoff_seed)
        timeout = config.job_timeout
        if supervisor is not None:
            timeout = supervisor.effective_deadline(config.job_timeout)
        while pending:
            if (
                config.breaker_threshold
                and consecutive_failures >= config.breaker_threshold
            ):
                self._trip_breaker(pending, keys, results, run)
                return
            if supervisor is not None and supervisor.flapping:
                # the pool is crashing faster than it does work:
                # degrade to serial before burning more workers
                self._trip_breaker(pending, keys, results, run)
                return
            if self.journal is not None:
                # fresh lease epochs every round: a commit surfacing
                # from a previous (presumed-dead) round is fenced out
                for index in sorted(pending):
                    self._epochs[index] = self.journal.lease(keys[index])
            pool = self._make_pool(len(pending))
            futures: dict[int, Future] = {}
            progressed = False
            culprit: int | None = None
            try:
                # deterministic sharding: jobs enter the queue in index
                # (and therefore seed) order on every attempt
                with _span("farm.submit", jobs=len(pending), attempt=attempts):
                    for index in sorted(pending):
                        futures[index] = self._submit(
                            pool, index, pending[index], keys[index], attempts
                        )
                for index, future in futures.items():
                    culprit = index
                    with _span(
                        "farm.result", job_key=keys[index][:12]
                    ):
                        result = future.result(timeout=timeout)
                    value, elapsed = result[0], result[1]
                    self._store(
                        index, pending[index], keys[index], value, elapsed,
                        results, run,
                    )
                    if len(result) > 2:
                        self._absorb_envelope(result[2], elapsed)
                        if supervisor is not None:
                            supervisor.observe_heartbeat(result[2])
                    del pending[index]
                    progressed = True
                pool.shutdown(wait=True)
                if supervisor is not None:
                    supervisor.record_progress()
            except (BrokenProcessPool, FutureTimeoutError) as exc:
                # a worker died (or a job hung): drop the poisoned pool
                # without waiting on it, then back off and retry what's
                # still pending
                pool.shutdown(wait=False, cancel_futures=True)
                attempts += 1
                consecutive_failures = (
                    1 if progressed else consecutive_failures + 1
                )
                delay = config.backoff_delay(attempts, jitter_rng)
                run.record_retry(attempts, delay)
                if supervisor is not None:
                    delay += self._supervise_failure(
                        exc, culprit, pending, keys, attempts, progressed, run
                    )
                session = _telemetry()
                if session is not None:
                    session.trace.farm_job(
                        "retry",
                        ts_secs=time.perf_counter() - self._batch_started,
                        attempt=attempts,
                        backoff_secs=delay,
                        pending=len(pending),
                        error=type(exc).__name__,
                    )
                if not pending:
                    return  # the only survivors were poisoned away
                if attempts > config.max_retries:
                    if self.journal is not None:
                        for i in sorted(pending):
                            self.journal.fail(
                                keys[i],
                                self._epochs.get(i, 0),
                                {
                                    "code": "retries_exhausted",
                                    "attempts": attempts,
                                    "error": repr(exc),
                                },
                            )
                    failed = ", ".join(
                        f"{pending[i].measure}(seed={pending[i].seed})"
                        for i in sorted(pending)
                    )
                    raise FarmError(
                        f"{len(pending)} job(s) still failing after "
                        f"{attempts} attempt(s) [{failed}]: {exc!r}"
                    ) from exc
                time.sleep(delay)

    def _supervise_failure(
        self,
        exc: Exception,
        culprit: int | None,
        pending: dict[int, Job],
        keys: list[str],
        attempts: int,
        progressed: bool,
        run: FarmMetrics,
    ) -> float:
        """Strike the culprit job, poison it if it keeps killing
        workers, and meter the pool restart; returns the cool-down."""
        supervisor = self.supervisor
        assert supervisor is not None
        kind = (
            "deadline"
            if isinstance(exc, FutureTimeoutError)
            else "worker_crash"
        )
        if culprit is not None and culprit in pending:
            reason = supervisor.record_strike(
                keys[culprit], kind, repr(exc), generation=attempts
            )
            if reason is not None:
                if self.journal is not None:
                    self.journal.poison(
                        keys[culprit],
                        self._epochs.get(culprit, 0),
                        reason,
                    )
                self._poisoned[keys[culprit]] = reason
                del pending[culprit]
                session = _telemetry()
                if session is not None:
                    session.trace.farm_job(
                        "poisoned",
                        ts_secs=time.perf_counter() - self._batch_started,
                        job_key=keys[culprit][:12],
                        strikes=len(reason["strikes"]),
                    )
        return supervisor.record_round(progressed)

    def _make_pool(self, n_pending: int) -> ProcessPoolExecutor:
        workers = min(self.config.max_workers, n_pending)
        try:
            return ProcessPoolExecutor(max_workers=workers)
        except (ImportError, NotImplementedError, OSError, ValueError) as exc:
            raise _PoolUnavailable(str(exc)) from exc
