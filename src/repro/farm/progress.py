"""Structured metrics for one farm run (and cumulatively).

The farm's promise is "never recompute, never serialize what can
shard" — :class:`FarmMetrics` is how that promise is audited: wall
clock, per-job latency, cache hits vs. executions, retries, and whether
the pool fell back to in-process serial execution.

Per-job latencies live in a fixed-bucket
:class:`~repro.telemetry.registry.Histogram` rather than an unbounded
list: memory stays O(buckets) however many jobs a farm runs, while
``mean_latency_secs``/``max_latency_secs`` remain bit-exact (the
histogram tracks exact count, sum and extrema alongside its buckets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.registry import TIME_BUCKET_SECS, Histogram


def _latency_histogram() -> Histogram:
    return Histogram(TIME_BUCKET_SECS)


@dataclass
class FarmMetrics:
    """Counters and timings for a batch of jobs."""

    workers: int = 1
    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    fallback_serial: bool = False
    wall_clock_secs: float = 0.0
    #: master-observed seconds per executed job (bounded histogram)
    latency: Histogram = field(default_factory=_latency_histogram)

    def record_execution(self, elapsed: float) -> None:
        self.executed += 1
        self.latency.observe(elapsed)

    @property
    def mean_latency_secs(self) -> float:
        return self.latency.mean

    @property
    def max_latency_secs(self) -> float:
        return self.latency.maximum

    @property
    def hit_ratio(self) -> float:
        if self.jobs == 0:
            return 0.0
        return self.cache_hits / self.jobs

    def merge(self, other: "FarmMetrics") -> None:
        """Fold another run's metrics into this cumulative record."""
        self.jobs += other.jobs
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.retries += other.retries
        self.fallback_serial = self.fallback_serial or other.fallback_serial
        self.wall_clock_secs += other.wall_clock_secs
        self.latency.merge(other.latency)

    def summary(self) -> dict[str, Any]:
        """The structured summary emitted after each run."""
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "retries": self.retries,
            "fallback_serial": self.fallback_serial,
            "wall_clock_secs": round(self.wall_clock_secs, 6),
            "mean_latency_secs": round(self.mean_latency_secs, 6),
            "max_latency_secs": round(self.max_latency_secs, 6),
            "hit_ratio": round(self.hit_ratio, 4),
        }

    def publish(self, metrics) -> None:
        """Copy this run's totals into a metrics registry under the
        ``farm.*`` namespace."""
        metrics.gauge("farm.workers").set(self.workers)
        if self.jobs:
            metrics.counter("farm.jobs").inc(self.jobs)
        if self.cache_hits:
            metrics.counter("farm.jobs.cache_hits").inc(self.cache_hits)
        if self.executed:
            metrics.counter("farm.jobs.executed").inc(self.executed)
        if self.retries:
            metrics.counter("farm.retries").inc(self.retries)
        metrics.histogram(
            "farm.jobs.latency", bounds=self.latency.bounds
        ).merge(self.latency)

    def render(self) -> str:
        """Human-readable one-run report."""
        lines = [
            f"jobs          : {self.jobs}",
            f"cache hits    : {self.cache_hits} ({self.hit_ratio:.0%})",
            f"executed      : {self.executed}"
            + (f" on {self.workers} workers" if self.workers > 1 else " serially"),
            f"retries       : {self.retries}",
            f"wall clock    : {self.wall_clock_secs:.3f}s",
        ]
        if self.executed:
            lines.append(
                f"job latency   : mean {self.mean_latency_secs:.3f}s, "
                f"max {self.max_latency_secs:.3f}s"
            )
        if self.fallback_serial:
            lines.append("note          : process pool unavailable, ran serially")
        return "\n".join(lines)
