"""Structured metrics for one farm run (and cumulatively).

The farm's promise is "never recompute, never serialize what can
shard" — :class:`FarmMetrics` is how that promise is audited: wall
clock, per-job latency, cache hits vs. executions, retries, and whether
the pool fell back to in-process serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class FarmMetrics:
    """Counters and timings for a batch of jobs."""

    workers: int = 1
    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    fallback_serial: bool = False
    wall_clock_secs: float = 0.0
    #: master-observed seconds per executed job, in completion order
    latencies: list[float] = field(default_factory=list)

    def record_execution(self, elapsed: float) -> None:
        self.executed += 1
        self.latencies.append(elapsed)

    @property
    def mean_latency_secs(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency_secs(self) -> float:
        return max(self.latencies, default=0.0)

    @property
    def hit_ratio(self) -> float:
        if self.jobs == 0:
            return 0.0
        return self.cache_hits / self.jobs

    def merge(self, other: "FarmMetrics") -> None:
        """Fold another run's metrics into this cumulative record."""
        self.jobs += other.jobs
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.retries += other.retries
        self.fallback_serial = self.fallback_serial or other.fallback_serial
        self.wall_clock_secs += other.wall_clock_secs
        self.latencies.extend(other.latencies)

    def summary(self) -> dict[str, Any]:
        """The structured summary emitted after each run."""
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "retries": self.retries,
            "fallback_serial": self.fallback_serial,
            "wall_clock_secs": round(self.wall_clock_secs, 6),
            "mean_latency_secs": round(self.mean_latency_secs, 6),
            "max_latency_secs": round(self.max_latency_secs, 6),
            "hit_ratio": round(self.hit_ratio, 4),
        }

    def render(self) -> str:
        """Human-readable one-run report."""
        lines = [
            f"jobs          : {self.jobs}",
            f"cache hits    : {self.cache_hits} ({self.hit_ratio:.0%})",
            f"executed      : {self.executed}"
            + (f" on {self.workers} workers" if self.workers > 1 else " serially"),
            f"retries       : {self.retries}",
            f"wall clock    : {self.wall_clock_secs:.3f}s",
        ]
        if self.latencies:
            lines.append(
                f"job latency   : mean {self.mean_latency_secs:.3f}s, "
                f"max {self.max_latency_secs:.3f}s"
            )
        if self.fallback_serial:
            lines.append("note          : process pool unavailable, ran serially")
        return "\n".join(lines)
