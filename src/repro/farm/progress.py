"""Structured metrics for one farm run (and cumulatively).

The farm's promise is "never recompute, never serialize what can
shard" — :class:`FarmMetrics` is how that promise is audited: wall
clock, per-job latency, cache hits vs. executions, retries, and whether
the pool fell back to in-process serial execution.

Per-job latencies live in a fixed-bucket
:class:`~repro.telemetry.registry.Histogram` rather than an unbounded
list: memory stays O(buckets) however many jobs a farm runs, while
``mean_latency_secs``/``max_latency_secs`` remain bit-exact (the
histogram tracks exact count, sum and extrema alongside its buckets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.registry import TIME_BUCKET_SECS, Histogram


def _latency_histogram() -> Histogram:
    return Histogram(TIME_BUCKET_SECS)


@dataclass
class FarmMetrics:
    """Counters and timings for a batch of jobs."""

    workers: int = 1
    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    fallback_serial: bool = False
    #: the circuit breaker degraded the batch to serial execution
    breaker_tripped: bool = False
    #: corrupt cache records quarantined during this run
    cache_corrupt: int = 0
    #: jobs quarantined as poisoned by the supervisor during this run
    poisoned: int = 0
    wall_clock_secs: float = 0.0
    #: (attempt, backoff_secs) per retry, in order
    retry_events: list = field(default_factory=list)
    #: master-observed seconds per executed job (bounded histogram)
    latency: Histogram = field(default_factory=_latency_histogram)

    def record_execution(self, elapsed: float) -> None:
        self.executed += 1
        self.latency.observe(elapsed)

    def record_retry(self, attempt: int, backoff_secs: float) -> None:
        self.retries += 1
        self.retry_events.append((attempt, backoff_secs))

    @property
    def mean_latency_secs(self) -> float:
        return self.latency.mean

    @property
    def max_latency_secs(self) -> float:
        return self.latency.maximum

    @property
    def hit_ratio(self) -> float:
        if self.jobs == 0:
            return 0.0
        return self.cache_hits / self.jobs

    def merge(self, other: "FarmMetrics") -> None:
        """Fold another run's metrics into this cumulative record."""
        self.jobs += other.jobs
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.retries += other.retries
        self.fallback_serial = self.fallback_serial or other.fallback_serial
        self.breaker_tripped = self.breaker_tripped or other.breaker_tripped
        self.cache_corrupt += other.cache_corrupt
        self.poisoned += other.poisoned
        self.wall_clock_secs += other.wall_clock_secs
        self.retry_events.extend(other.retry_events)
        self.latency.merge(other.latency)

    def summary(self) -> dict[str, Any]:
        """The structured summary emitted after each run."""
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "retries": self.retries,
            "fallback_serial": self.fallback_serial,
            "breaker_tripped": self.breaker_tripped,
            "cache_corrupt": self.cache_corrupt,
            "poisoned": self.poisoned,
            "wall_clock_secs": round(self.wall_clock_secs, 6),
            "mean_latency_secs": round(self.mean_latency_secs, 6),
            "max_latency_secs": round(self.max_latency_secs, 6),
            "hit_ratio": round(self.hit_ratio, 4),
        }

    def publish(self, metrics) -> None:
        """Copy this run's totals into a metrics registry under the
        ``farm.*`` namespace."""
        metrics.gauge("farm.workers").set(self.workers)
        if self.jobs:
            metrics.counter("farm.jobs").inc(self.jobs)
        if self.cache_hits:
            metrics.counter("farm.jobs.cache_hits").inc(self.cache_hits)
        if self.executed:
            metrics.counter("farm.jobs.executed").inc(self.executed)
        for attempt, backoff_secs in self.retry_events:
            metrics.counter(
                "farm.retries",
                attempt=str(attempt),
                backoff_secs=f"{backoff_secs:.3f}",
            ).inc()
        if self.breaker_tripped:
            metrics.counter("farm.breaker_tripped").inc()
        if self.cache_corrupt:
            metrics.counter("cache.corrupt").inc(self.cache_corrupt)
        if self.poisoned:
            metrics.counter("farm.jobs.poisoned").inc(self.poisoned)
        metrics.histogram(
            "farm.jobs.latency", bounds=self.latency.bounds
        ).merge(self.latency)

    def render(self) -> str:
        """Human-readable one-run report."""
        lines = [
            f"jobs          : {self.jobs}",
            f"cache hits    : {self.cache_hits} ({self.hit_ratio:.0%})",
            f"executed      : {self.executed}"
            + (f" on {self.workers} workers" if self.workers > 1 else " serially"),
            f"retries       : {self.retries}",
            f"wall clock    : {self.wall_clock_secs:.3f}s",
        ]
        if self.executed:
            lines.append(
                f"job latency   : mean {self.mean_latency_secs:.3f}s, "
                f"max {self.max_latency_secs:.3f}s"
            )
        if self.breaker_tripped:
            lines.append(
                "note          : circuit breaker open, degraded to serial"
            )
        elif self.fallback_serial:
            lines.append("note          : process pool unavailable, ran serially")
        if self.poisoned:
            lines.append(
                f"poisoned      : {self.poisoned} job(s) quarantined "
                "(see poisoned.jsonl)"
            )
        if self.cache_corrupt:
            lines.append(
                f"cache corrupt : {self.cache_corrupt} record(s) quarantined"
            )
        return "\n".join(lines)
