"""Measure registry: the names jobs execute by.

A :class:`~repro.farm.jobs.Job` cannot carry a closure — jobs cross
process boundaries and live in an on-disk cache, so they name their
measure by a registered string instead.  A measure is a *module-level*
callable invoked as ``fn(seed=seed, **params)`` returning a
JSON-encodable value (almost always a float).

Measures ship with the library (:data:`BUILTIN_MEASURES`, resolved
lazily by import path so workers pay only for what they run) or are
registered at runtime with :func:`register` — handy for tests and ad-hoc
experiments.  Worker processes are forked/spawned from the scheduler, so
runtime registrations made at module import time are visible to them.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Mapping

from repro.errors import FarmError

#: measure name -> "module:qualname" import path, for measures that ship
#: with the library
BUILTIN_MEASURES: dict[str, str] = {
    "trap.measure": "repro.farm.measures:trap_measure",
    "table7.measure": "repro.experiments.table7:measure_once",
    "table8.measure": "repro.experiments.table8:_measure",
    "table9.measure": "repro.experiments.table9:_measure",
    "chaos.probe": "repro.faults.infra:chaos_probe",
    "chaos.kill_probe": "repro.faults.infra:killable_probe",
    "sampling.interval": "repro.sampling.runner:interval_measure",
    "grid.sweep": "repro.caches.gridsweep:grid_measure",
}

#: runtime registrations, by name
_RUNTIME: dict[str, str] = {}


def register(name: str, target: Callable[..., Any] | str) -> None:
    """Register ``target`` (a module-level callable, or an import path
    string ``"module:qualname"``) under ``name``."""
    if callable(target):
        qualname = target.__qualname__
        if "<locals>" in qualname:
            raise FarmError(
                f"measure {name!r} must be module-level to run in workers, "
                f"got nested callable {qualname!r}"
            )
        target = f"{target.__module__}:{qualname}"
    _RUNTIME[name] = target


def registered_names() -> tuple[str, ...]:
    return tuple(sorted(BUILTIN_MEASURES | _RUNTIME))


def resolve(name: str) -> Callable[..., Any]:
    """Import and return the callable behind a measure name."""
    path = _RUNTIME.get(name) or BUILTIN_MEASURES.get(name)
    if path is None:
        raise FarmError(
            f"unknown measure {name!r}; registered: {', '.join(registered_names())}"
        )
    module_name, _, qualname = path.partition(":")
    try:
        module = importlib.import_module(module_name)
        target: Any = module
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise FarmError(f"measure {name!r} ({path}) failed to import: {exc}") from exc
    if not callable(target):
        raise FarmError(f"measure {name!r} ({path}) is not callable")
    return target


def execute_job(measure: str, params: Mapping[str, Any], seed: int) -> Any:
    """Run one job's measure.  This is the worker-side entry point."""
    return resolve(measure)(seed=seed, **params)


def timed_execute(
    measure: str, params: Mapping[str, Any], seed: int
) -> tuple[Any, float]:
    """``execute_job`` plus worker-side wall-clock seconds."""
    import time

    start = time.perf_counter()
    value = execute_job(measure, params, seed)
    return value, time.perf_counter() - start


#: worker-side trace ring capacity; trap-level events are not shipped
#: home (only spans and metrics are), so a small ring bounds memory
_WORKER_TRACE_CAPACITY = 1_024


def instrumented_execute(
    ctx: Mapping[str, Any],
    measure: str,
    params: Mapping[str, Any],
    seed: int,
    transport: Any = None,
) -> tuple[Any, float, dict[str, Any]]:
    """Worker entry point with per-job telemetry capture.

    Activates a private :class:`~repro.telemetry.session.TelemetrySession`
    for the duration of one job (dropping any session inherited across
    ``fork`` from the master — see
    :func:`repro.telemetry.session.drop_inherited`), runs the measure
    exactly as :func:`timed_execute` / ``transported_execute`` would,
    then exports the session's spans and metrics into a picklable
    envelope that rides home on the job result:

        ``(value, elapsed_secs, envelope)``

    ``ctx`` carries the master's correlation state: ``run_id`` (stamped
    on every span), ``job_key`` (the content hash this result caches
    under) and ``profile`` (whether the opt-in phase timers fire).
    ``value`` and ``elapsed`` are bit-identical to the uninstrumented
    path — the envelope is pure observation.
    """
    import os

    from repro.telemetry import session as telemetry_session
    from repro.telemetry.aggregate import export_metrics

    run_id = str(ctx.get("run_id", ""))
    job_key = str(ctx.get("job_key", ""))
    if telemetry_session.active() is not None:
        telemetry_session.drop_inherited()
    job_session = telemetry_session.activate(
        telemetry_session.TelemetrySession(
            trace_capacity=_WORKER_TRACE_CAPACITY,
            profile=bool(ctx.get("profile", False)),
            run_id=run_id or None,
        )
    )
    try:
        with job_session.spans.span(
            "worker.job",
            run_id=run_id,
            job_key=job_key,
            measure=measure,
            seed=seed,
        ):
            if transport is not None:
                from repro.streams.transport import transported_execute

                value, elapsed = transported_execute(
                    transport, measure, params, seed
                )
            else:
                value, elapsed = timed_execute(measure, params, seed)
    finally:
        telemetry_session.deactivate()
    envelope = {
        "v": 1,
        "worker_pid": os.getpid(),
        "run_id": run_id,
        "job_key": job_key,
        "spans": job_session.spans.to_dicts(),
        "spans_dropped": job_session.spans.dropped,
        "metrics": export_metrics(job_session.metrics),
    }
    return value, elapsed, envelope
