"""The supervised farm service: journal + supervisor + admission + GC.

:class:`FarmService` is the long-running form of the PR 1 farm — the
ROADMAP's "serve heavy traffic" promotion.  It composes the four
service-plane pieces this package grew:

* every submitted batch is journaled (:mod:`repro.farm.journal`)
  *before* it runs, so a SIGKILL at any instant is recoverable:
  :meth:`FarmService.resume` replays exactly the unfinished work,
  reconciling jobs whose values already reached the result cache
  rather than re-executing them (exactly-once observable effect);
* the pool runs under a :class:`~repro.farm.supervisor.WorkerSupervisor`
  — hang/crash/flap detection, poison quarantine, restart cool-down;
* clients enter through an
  :class:`~repro.farm.admission.AdmissionController` — bounded queue,
  fair share across client ids, load shedding that degrades to serial
  execution (bit-identical by the farm determinism contract) instead
  of rejecting;
* the cache tiers are held under a byte budget by
  :class:`~repro.farm.gc.CacheGC`, with journal leases pinning
  in-flight entries.

The service is single-threaded: ``submit`` queues, ``drain`` runs.
That mirrors the paper's reality — one master schedules everything —
and keeps every run bit-reproducible; "service" here means surviving
crashes, bad jobs and overload across a long life, not threads.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import FarmError, PoisonedJobsError
from repro.farm.admission import AdmissionConfig, AdmissionController, Ticket
from repro.farm.gc import CacheGC
from repro.farm.jobs import Job
from repro.farm.journal import JobJournal, JournalEntry
from repro.farm.pool import Farm, FarmConfig
from repro.farm.supervisor import SupervisorConfig, WorkerSupervisor
from repro.telemetry.session import active as _telemetry
from repro.telemetry.spans import span as _span

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service adds on top of a :class:`FarmConfig`."""

    farm: FarmConfig = dataclasses.field(default_factory=FarmConfig)
    supervisor: SupervisorConfig = dataclasses.field(
        default_factory=SupervisorConfig
    )
    admission: AdmissionConfig = dataclasses.field(
        default_factory=AdmissionConfig
    )
    #: per-tier cache byte budget enforced by :meth:`FarmService.gc`
    cache_budget_bytes: int | None = None
    #: stream / kernel cache dirs the GC also tends (None = skip)
    stream_dir: str | Path | None = None
    kernel_dir: str | Path | None = None
    #: migrate the stream tier into two-level shard dirs during GC
    shard: bool = False


class FarmService:
    """A crash-recoverable, supervised, admission-controlled farm."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.farm = Farm(self.config.farm)
        cache_dir = self.farm.cache.directory
        self.journal = JobJournal(cache_dir)
        self.supervisor = WorkerSupervisor(
            self.config.supervisor, ledger_dir=cache_dir
        )
        self.admission = AdmissionController(self.config.admission)
        self.farm.journal = self.journal
        self.farm.supervisor = self.supervisor
        # the degraded lane: same cache, same journal, serial execution
        self._serial_farm = Farm(
            dataclasses.replace(
                self.config.farm, max_workers=1, worker_faults=None
            )
        )
        self._serial_farm.cache = self.farm.cache
        self._serial_farm.journal = self.journal
        self.completed: list[Ticket] = []

    # -- intake

    def submit(
        self,
        jobs: Sequence[Job],
        client: str = "default",
        batch: str = "",
    ) -> Ticket:
        """Admit one batch; it runs at the next :meth:`drain`."""
        ticket = self.admission.submit(jobs, client=client, batch=batch)
        if not batch:
            ticket.batch = f"ticket-{ticket.ticket_id}"
        return ticket

    # -- execution

    def _run_ticket(self, ticket: Ticket) -> Ticket:
        farm = self._serial_farm if ticket.degraded else self.farm
        farm.batch_label = ticket.batch
        farm.client_id = ticket.client
        with _span(
            "farm.service.ticket",
            ticket=ticket.ticket_id,
            client=ticket.client,
            jobs=len(ticket.jobs),
            degraded=ticket.degraded,
        ):
            try:
                ticket.results = farm.run_jobs(ticket.jobs)
                ticket.state = "done"
            except PoisonedJobsError as exc:
                # healthy jobs all completed (and are cached/journaled);
                # the ticket reports the quarantined ones by reason
                ticket.results = exc.results
                ticket.reasons = dict(exc.poisoned)
                ticket.state = "poisoned"
                ticket.error = str(exc)
            except FarmError as exc:
                ticket.state = "failed"
                ticket.error = str(exc)
        self.completed.append(ticket)
        return ticket

    def drain(self) -> list[Ticket]:
        """Run every queued ticket in fair-share order."""
        finished = []
        while True:
            ticket = self.admission.next_ticket()
            if ticket is None:
                break
            finished.append(self._run_ticket(ticket))
        session = _telemetry()
        if session is not None:
            self.admission.publish(session.metrics)
        return finished

    def run(
        self,
        jobs: Sequence[Job],
        client: str = "default",
        batch: str = "",
    ) -> Ticket:
        """Submit one batch and drain immediately (the CLI's one-shot)."""
        ticket = self.submit(jobs, client=client, batch=batch)
        self.drain()
        return ticket

    # -- crash recovery

    def _rebuild_job(self, entry: JournalEntry) -> Job | None:
        if not entry.replayable or not entry.measure:
            return None
        return Job(
            measure=entry.measure, params=entry.params, seed=entry.seed
        )

    def resume(self) -> dict[str, Any]:
        """Replay unfinished journaled work, exactly once.

        For every queued/leased journal entry: a value already durable
        in the result cache is *reconciled* (journal marked done, no
        execution — the crash landed between cache write and commit);
        everything else is re-executed through the serial lane, whose
        results are bit-identical to the pooled run that died.
        """
        report = {
            "incomplete": 0,
            "reconciled": 0,
            "executed": 0,
            "unreplayable": 0,
        }
        incomplete = self.journal.incomplete()
        report["incomplete"] = len(incomplete)
        rerun: list[tuple[JournalEntry, Job]] = []
        with _span("farm.service.resume", incomplete=len(incomplete)):
            for entry in incomplete:
                hit, _value = self.farm.cache.get(entry.key)
                if hit:
                    self.journal.reconcile(entry.key)
                    report["reconciled"] += 1
                    continue
                job = self._rebuild_job(entry)
                if job is None:
                    self.journal.fail(
                        entry.key,
                        entry.epoch,
                        {
                            "code": "unreplayable",
                            "detail": "journaled params do not round-trip "
                            "through JSON; resubmit the batch",
                        },
                    )
                    report["unreplayable"] += 1
                    continue
                rerun.append((entry, job))
            for entry, job in rerun:
                self._serial_farm.batch_label = entry.batch
                self._serial_farm.client_id = entry.client
                self._serial_farm.run_jobs([job])
                report["executed"] += 1
        session = _telemetry()
        if session is not None:
            for name, value in report.items():
                if value:
                    session.metrics.counter(
                        f"farm.service.resume.{name}"
                    ).inc(value)
        if report["incomplete"]:
            logger.info(
                "resume: %(incomplete)d unfinished job(s) — "
                "%(reconciled)d reconciled from cache, %(executed)d "
                "re-executed, %(unreplayable)d unreplayable", report,
            )
        return report

    # -- cache stewardship

    def gc(self, budget_bytes: int | None = None) -> dict[str, Any]:
        """One GC pass over every configured tier, journal pins held."""
        budget = (
            budget_bytes
            if budget_bytes is not None
            else self.config.cache_budget_bytes
        )
        collector = CacheGC(budget, pins=self.journal.live_keys())
        with _span("cache.gc", budget=budget or 0):
            collector.collect(
                farm_dir=self.farm.cache.directory,
                stream_dir=self.config.stream_dir,
                kernel_dir=self.config.kernel_dir,
                shard=self.config.shard,
            )
        # evictions invalidate the farm's in-memory cache index
        self.farm.cache._index = None
        session = _telemetry()
        if session is not None:
            collector.publish(session.metrics)
        return collector.summary()

    # -- observability

    def status(self) -> dict[str, Any]:
        return {
            "journal": self.journal.counts(),
            "admission": self.admission.summary(),
            "supervisor": self.supervisor.summary(),
            "tickets_completed": len(self.completed),
            "cache_entries": len(self.farm.cache),
        }

    def render_status(self) -> str:
        status = self.status()
        journal = status["journal"]
        admission = status["admission"]
        supervisor = status["supervisor"]
        lines = [
            "journal       : "
            + ", ".join(f"{k}={v}" for k, v in journal.items()),
            f"queue         : {admission['queue_depth']} job(s) in "
            f"{admission['tickets_queued']} ticket(s) from "
            f"{admission['clients']} client(s)",
            f"admitted/shed : {admission['admitted']}/{admission['shed']}"
            + (" [degraded latched]" if admission["degraded_latched"] else ""),
            f"supervisor    : {supervisor['poisoned']} poisoned, "
            f"{supervisor['strikes']} strike(s), "
            f"{supervisor['restarts']} restart(s)"
            + (" [flapping]" if supervisor["flapping"] else ""),
            f"cache         : {status['cache_entries']} result(s)",
            f"tickets done  : {status['tickets_completed']}",
        ]
        return "\n".join(lines)


def journal_rows(entries: list[JournalEntry]) -> str:
    """Tabular ``repro jobs list`` rendering of journal entries."""
    header = ("key", "state", "measure", "seed", "batch", "client", "reason")
    rows = [header]
    for entry in entries:
        reason = str(entry.reason.get("code", "")) if entry.reason else ""
        rows.append(
            (
                entry.key[:12],
                entry.state,
                entry.measure or "?",
                str(entry.seed),
                entry.batch or "-",
                entry.client or "-",
                reason,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
