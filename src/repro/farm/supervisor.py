"""Worker health supervision: strikes, poison quarantine, cool-down.

The PR 4 retry loop treats every pool failure the same way: back off,
rebuild the pool, resubmit everything pending.  That is correct for
*transient* faults — a worker OOM-killed once, a scheduler hiccup — but
a service that runs for days also meets the other kind: the job that
deterministically kills or hangs every worker it touches.  Retrying
that job forever converts one bad input into a denial of service.

:class:`WorkerSupervisor` sits beside the pool loop and keeps the
distinction:

*strikes*
    Every pool-level failure is attributed to the job the master was
    waiting on and recorded as a strike — ``worker_crash`` (the pool
    broke under it) or ``deadline`` (it outlived its per-job deadline).
    Each retry round runs on a freshly built pool, i.e. a distinct
    worker generation, so strikes carry their generation number.

*poison quarantine*
    A job whose strikes span :attr:`SupervisorConfig.poison_strikes`
    distinct generations has now killed that many *different* workers —
    it is the job, not the worker.  The supervisor declares it poisoned
    with a machine-readable reason, ledgers it to ``poisoned.jsonl``
    (size-capped, like the cache quarantine), and the pool loop drops
    it from the batch so the rest of the work completes.

*flap detection and cool-down*
    Consecutive no-progress round failures mean the pool itself is
    flapping — crashing faster than it does work.  The supervisor
    recommends degrading to in-process serial execution (the PR 4
    breaker's move, which is bit-identical by the farm determinism
    contract), and meters every worker-pool restart with an
    exponential cool-down so a crash loop cannot spin the CPU.

*heartbeats*
    Worker results already carry the PR 7 telemetry envelope
    (``worker_pid``, spans, metrics); the supervisor piggybacks on it
    as a liveness signal, tracking per-worker last-seen ages so a
    wedged worker is visible in ``farm.supervisor.*`` metrics before
    its deadline fires.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.atomicio import RotatingLedger
from repro.errors import ConfigError

POISON_FILE = "poisoned.jsonl"

#: strike kinds, attributed from the pool-level exception
STRIKE_WORKER_CRASH = "worker_crash"
STRIKE_DEADLINE = "deadline"

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs, all deterministic."""

    #: distinct worker generations a job must strike before quarantine
    poison_strikes: int = 2
    #: consecutive no-progress pool failures before the supervisor
    #: recommends degrading the batch to serial execution
    flap_threshold: int = 3
    #: first worker-restart cool-down in seconds; doubles per restart
    cooldown_base: float = 0.0
    #: ceiling on any single restart cool-down
    cooldown_max: float = 2.0
    #: per-job deadline applied when the farm has no ``job_timeout``
    deadline_secs: float | None = None
    #: a worker unheard-from for this long is counted stale
    heartbeat_stale_secs: float = 30.0
    #: size budget of the poisoned-job ledger before rotation
    poison_ledger_bytes: int = 1_000_000

    def __post_init__(self) -> None:
        if self.poison_strikes < 1:
            raise ConfigError(
                f"poison_strikes must be at least 1, got {self.poison_strikes}"
            )
        if self.flap_threshold < 1:
            raise ConfigError(
                f"flap_threshold must be at least 1, got {self.flap_threshold}"
            )
        if self.cooldown_base < 0 or self.cooldown_max < self.cooldown_base:
            raise ConfigError(
                f"cool-down range [{self.cooldown_base}, {self.cooldown_max}] "
                "is invalid"
            )
        if self.deadline_secs is not None and self.deadline_secs <= 0:
            raise ConfigError(
                f"deadline_secs must be positive, got {self.deadline_secs}"
            )

    def cooldown(self, restart: int) -> float:
        """Seconds to pause before worker restart ``restart`` (1-based)."""
        if self.cooldown_base == 0:
            return 0.0
        return round(
            min(self.cooldown_max, self.cooldown_base * 2 ** (restart - 1)), 6
        )


@dataclass
class Strike:
    """One attributed pool-level failure."""

    kind: str
    generation: int
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "generation": self.generation,
            "detail": self.detail,
        }


class WorkerSupervisor:
    """Tracks worker/job health across one farm's pool rounds."""

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        ledger_dir: str | Path | None = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self._strikes: dict[str, list[Strike]] = {}
        #: job key -> machine-readable poison reason
        self.poisoned: dict[str, dict[str, Any]] = {}
        self.restarts = 0
        self.consecutive_failures = 0
        self.cooldown_secs_total = 0.0
        self.heartbeats = 0
        #: worker pid -> monotonic last-seen instant
        self._last_seen: dict[int, float] = {}
        self._ledger = (
            RotatingLedger(
                Path(ledger_dir) / POISON_FILE,
                self.config.poison_ledger_bytes,
            )
            if ledger_dir is not None
            else None
        )

    # -- strikes and poisoning

    def record_strike(
        self, key: str, kind: str, detail: str, generation: int
    ) -> dict[str, Any] | None:
        """Attribute one pool failure to the job under ``key``.

        Returns the machine-readable poison reason once the job's
        strikes span ``poison_strikes`` distinct worker generations
        (each retry round is a fresh pool, so distinct generations mean
        distinct workers killed), else None — keep retrying.
        """
        strikes = self._strikes.setdefault(key, [])
        strikes.append(Strike(kind=kind, generation=generation, detail=detail))
        generations = {strike.generation for strike in strikes}
        if len(generations) < self.config.poison_strikes:
            return None
        reason = {
            "code": "poisoned",
            "job_key": key,
            "workers_killed": len(generations),
            "strikes": [strike.to_dict() for strike in strikes],
            "verdict": (
                f"job struck {len(generations)} distinct worker "
                f"generations ({', '.join(sorted({s.kind for s in strikes}))})"
            ),
        }
        self.poisoned[key] = reason
        if self._ledger is not None:
            entry = dict(reason)
            entry["ts"] = round(time.time(), 3)
            self._ledger.append(json.dumps(entry, sort_keys=True))
        logger.warning(
            "job %s poisoned after striking %d distinct workers; "
            "quarantined, batch continues without it",
            key[:12], len(generations),
        )
        return reason

    def strikes_for(self, key: str) -> list[Strike]:
        return list(self._strikes.get(key, []))

    # -- flap detection and restart cool-down

    def record_round(self, progressed: bool) -> float:
        """Account one failed pool round; returns the restart cool-down.

        ``progressed`` mirrors the breaker's notion: a round that
        retired at least one job before failing resets the flap count.
        """
        self.restarts += 1
        self.consecutive_failures = (
            1 if progressed else self.consecutive_failures + 1
        )
        delay = self.config.cooldown(self.restarts)
        self.cooldown_secs_total += delay
        return delay

    def record_progress(self) -> None:
        """A round completed cleanly: the pool is healthy again."""
        self.consecutive_failures = 0

    @property
    def flapping(self) -> bool:
        """Whether the pool is crashing faster than it does work."""
        return self.consecutive_failures >= self.config.flap_threshold

    # -- heartbeats (piggybacked on the telemetry envelope)

    def observe_heartbeat(self, envelope: Mapping[str, Any] | None) -> None:
        """Record worker liveness from one result's telemetry envelope."""
        if not isinstance(envelope, Mapping):
            return
        pid = envelope.get("worker_pid")
        if isinstance(pid, int):
            self.heartbeats += 1
            self._last_seen[pid] = time.monotonic()

    def stale_workers(self, now: float | None = None) -> list[int]:
        """Workers unheard-from past the staleness threshold."""
        now = time.monotonic() if now is None else now
        limit = self.config.heartbeat_stale_secs
        return sorted(
            pid
            for pid, seen in self._last_seen.items()
            if now - seen > limit
        )

    @property
    def workers_seen(self) -> int:
        return len(self._last_seen)

    # -- reporting

    def effective_deadline(self, job_timeout: float | None) -> float | None:
        """The per-job deadline the pool loop should enforce."""
        if job_timeout is not None:
            return job_timeout
        return self.config.deadline_secs

    def summary(self) -> dict[str, Any]:
        return {
            "poisoned": len(self.poisoned),
            "strikes": sum(len(s) for s in self._strikes.values()),
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "flapping": self.flapping,
            "cooldown_secs_total": round(self.cooldown_secs_total, 6),
            "heartbeats": self.heartbeats,
            "workers_seen": self.workers_seen,
        }

    def publish(self, metrics) -> None:
        """Copy supervision totals under ``farm.supervisor.*``."""
        if self.poisoned:
            metrics.counter("farm.supervisor.poisoned").inc(
                len(self.poisoned)
            )
        strikes = sum(len(s) for s in self._strikes.values())
        if strikes:
            metrics.counter("farm.supervisor.strikes").inc(strikes)
        if self.restarts:
            metrics.counter("farm.supervisor.restarts").inc(self.restarts)
        if self.heartbeats:
            metrics.counter("farm.supervisor.heartbeats").inc(
                self.heartbeats
            )
        metrics.gauge("farm.supervisor.workers_seen").set(self.workers_seen)
        metrics.gauge("farm.supervisor.flapping").set(
            1 if self.flapping else 0
        )
