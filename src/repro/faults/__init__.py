"""repro.faults — deterministic fault injection and trap auditing.

Two planes of failure, one replayable plan:

* machine plane — ECC flips, DMA trap erasure, spurious traps, dropped
  trap clears, audited by :class:`~repro.faults.auditor.TrapInvariantAuditor`;
* infrastructure plane — killed/hung farm workers and garbled cache
  records, absorbed by the farm's retry/backoff/quarantine hardening.

The contract (pinned by the chaos suite): every injected fault is either
*detected* (auditor divergence, raised exception) or *absorbed* (scrub,
retry, quarantine, serial fallback) — never silent.
"""

from repro.faults.auditor import AuditReport, Divergence, TrapInvariantAuditor
from repro.faults.injector import Injection, MachineFaultInjector
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultPlane,
    FaultSpec,
    default_plan,
    load_plan,
)
from repro.faults.session import (
    FaultRunRecord,
    FaultSession,
    activate,
    active,
    deactivate,
    enabled,
)

__all__ = [
    "AuditReport",
    "Divergence",
    "TrapInvariantAuditor",
    "Injection",
    "MachineFaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlane",
    "FaultSpec",
    "default_plan",
    "load_plan",
    "FaultRunRecord",
    "FaultSession",
    "activate",
    "active",
    "deactivate",
    "enabled",
]
