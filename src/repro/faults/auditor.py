"""The trap-invariant auditor.

Tapeworm's whole correctness story is one invariant (section 3.1): for
every page in the Tapeworm domain, *a sampled memory location carries a
trap exactly when the simulated structure does not hold it*.  Every
fault the machine plane can inject — a DMA write erasing a trap, a
spurious trap on a cached line, a dropped ``tw_clear_trap`` — is
precisely a violation of that biconditional, which is what makes the
invariant auditable: cross-check the ECC/page-valid trap state against
the simulated cache/TLB contents and any divergence names a corruption
that would otherwise silently skew miss counts.

The auditor is read-only (``contains`` probes never touch replacement
state; the ECC bitmap reads never change it) and is meant to run at a
configurable cadence from the chunk tap, plus once at end of run.  The
final sweep additionally reports injected true errors that were never
referenced — a latent double-bit error must not vanish just because the
workload happened not to touch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._types import PAGE_SIZE, Indexing
from repro.caches.multilevel import TwoLevelCache
from repro.machine.memory import GRANULE_BYTES


@dataclass(frozen=True)
class Divergence:
    """One spot where trap state and simulated state disagree."""

    #: missing_trap | unexpected_trap | orphan_trap | duplicate_entry |
    #: missing_page_trap | unexpected_page_trap | stale_true_error |
    #: latent_double_bit
    kind: str
    detail: str
    pa: int | None = None
    granule: int | None = None
    tid: int | None = None
    vpn: int | None = None

    def describe(self) -> str:
        where = []
        if self.pa is not None:
            where.append(f"pa={self.pa:#x}")
        if self.granule is not None:
            where.append(f"granule={self.granule}")
        if self.tid is not None:
            where.append(f"tid={self.tid}")
        if self.vpn is not None:
            where.append(f"vpn={self.vpn}")
        location = " ".join(where) or "global"
        return f"{self.kind} at {location}: {self.detail}"


@dataclass
class AuditReport:
    """Everything one audit pass found."""

    chunk_index: int
    final: bool = False
    #: invariant comparisons performed (lines + pages + orphan granules)
    checks: int = 0
    #: frames skipped because the invariant is ambiguous there (shared
    #: frames under virtual indexing + set sampling)
    skipped_frames: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    truncated: bool = False

    @property
    def clean(self) -> bool:
        return not self.divergences

    @property
    def first(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def describe(self) -> str:
        tag = "final" if self.final else f"chunk {self.chunk_index}"
        if self.clean:
            return f"audit[{tag}]: clean ({self.checks} checks)"
        lines = [
            f"audit[{tag}]: {len(self.divergences)} divergence(s) "
            f"in {self.checks} checks"
            + (" (truncated)" if self.truncated else "")
        ]
        lines.extend("  " + d.describe() for d in self.divergences)
        return "\n".join(lines)


class TrapInvariantAuditor:
    """Cross-checks trap state against the simulated structure.

    Works for all three structures: ``cache`` and ``two_level`` compare
    the ECC Tapeworm bitmap against (L1) cache contents line by line;
    ``tlb`` compares page valid bits against simulated-TLB residence
    page by page.  ``audit()`` may be called any time the machine is
    between chunks; it never mutates simulation state.
    """

    def __init__(self, tapeworm, max_divergences: int = 32) -> None:
        self.tapeworm = tapeworm
        self.machine = tapeworm.machine
        self.max_divergences = max_divergences
        self.reports: list[AuditReport] = []

    # ------------------------------------------------------------------

    def audit(self, chunk_index: int = -1, final: bool = False) -> AuditReport:
        report = AuditReport(chunk_index=chunk_index, final=final)
        if self.tapeworm.config.structure == "tlb":
            self._audit_tlb(report)
        else:
            self._audit_cache(report)
            self._audit_orphan_traps(report)
        if final:
            self._sweep_true_errors(report)
        self.reports.append(report)
        return report

    @property
    def first_divergence(self) -> Divergence | None:
        for report in self.reports:
            if report.divergences:
                return report.divergences[0]
        return None

    def _add(self, report: AuditReport, divergence: Divergence) -> bool:
        """Record a divergence; False once the report is full."""
        if len(report.divergences) >= self.max_divergences:
            report.truncated = True
            return False
        report.divergences.append(divergence)
        return True

    # ------------------------------------------------------------------
    # ECC-trap structures (cache, two_level)
    # ------------------------------------------------------------------

    def _presence_caches(self):
        """The cache level whose absence is the trap condition (L1), and
        every level for duplicate checks."""
        structure = self.tapeworm.structure
        if isinstance(structure, TwoLevelCache):
            return (structure.l1,), (structure.l1, structure.l2)
        return (structure,), (structure,)

    def _audit_cache(self, report: AuditReport) -> None:
        tapeworm = self.tapeworm
        ecc = self.machine.ecc
        registry = tapeworm.registry
        config = tapeworm.config.cache
        line_bytes = tapeworm.replacer.line_bytes
        virtual = config.indexing is Indexing.VIRTUAL
        sampler = tapeworm.sampler
        trap_levels, all_levels = self._presence_caches()

        for level, cache in enumerate(all_levels):
            report.checks += 1
            # a key always maps to one set, so a global count mismatch
            # is exactly a within-set duplicate
            extra = cache.occupancy() - len(cache.resident_keys())
            if extra:
                if not self._add(report, Divergence(
                    kind="duplicate_entry",
                    detail=f"L{level + 1} holds {extra} duplicate line(s)",
                )):
                    return

        for pfn in sorted(registry.registered_frames()):
            pa_page = pfn * PAGE_SIZE
            mappings = sorted(registry.mappings_of_frame(pa_page))
            if virtual and sampler.is_sampling and len(mappings) > 1:
                # a shared frame under virtual indexing can straddle the
                # sampled-set boundary differently per mapping; the
                # invariant is ambiguous there, so don't guess
                report.skipped_frames += 1
                continue
            mtid, mvpn = mappings[0]
            index_base = mvpn * PAGE_SIZE if virtual else pa_page
            for offset in range(0, PAGE_SIZE, line_bytes):
                if not sampler.covers_set(config.set_of(index_base + offset)):
                    continue
                if virtual:
                    cached = any(
                        cache.contains(t, v * PAGE_SIZE + offset)
                        for cache in trap_levels
                        for t, v in mappings
                    )
                else:
                    cached = any(
                        cache.contains(0, pa_page + offset)
                        for cache in trap_levels
                    )
                report.checks += 1
                for pa in range(
                    pa_page + offset, pa_page + offset + line_bytes,
                    GRANULE_BYTES,
                ):
                    trapped = ecc.is_tapeworm_trapped(pa)
                    if trapped == (not cached):
                        continue
                    kind = "unexpected_trap" if trapped else "missing_trap"
                    state = "cached" if cached else "not cached"
                    if not self._add(report, Divergence(
                        kind=kind,
                        pa=pa,
                        granule=pa // GRANULE_BYTES,
                        tid=mtid,
                        detail=(
                            f"line {pa_page + offset:#x} (+{line_bytes}) is "
                            f"{state} in the simulated structure but its "
                            f"granule is {'trapped' if trapped else 'untrapped'}"
                        ),
                    )):
                        return
                    break  # one divergence per line is enough context

    def _audit_orphan_traps(self, report: AuditReport) -> None:
        """Every Tapeworm-trapped granule must lie in a registered frame
        — a dropped clear during page removal leaves orphans behind."""
        registry = self.tapeworm.registry
        for granule in self.machine.ecc.tapeworm_granules():
            pa = int(granule) * GRANULE_BYTES
            report.checks += 1
            if registry.is_registered_frame(pa):
                continue
            if not self._add(report, Divergence(
                kind="orphan_trap",
                pa=pa,
                granule=int(granule),
                detail="Tapeworm trap set on a frame outside the "
                       "registered domain",
            )):
                return

    # ------------------------------------------------------------------
    # page-valid-trap structures (tlb)
    # ------------------------------------------------------------------

    def _audit_tlb(self, report: AuditReport) -> None:
        tapeworm = self.tapeworm
        tlb = tapeworm.tlb
        registry = tapeworm.registry
        sampler = tapeworm.sampler
        n_sets = tapeworm.config.tlb.n_sets

        report.checks += 1
        extra = tlb.occupancy() - len(tlb.resident_keys())
        if extra:
            if not self._add(report, Divergence(
                kind="duplicate_entry",
                detail=f"simulated TLB holds {extra} duplicate entrie(s)",
            )):
                return

        pairs = sorted(
            pair
            for pfn in registry.registered_frames()
            for pair in registry.mappings_of_frame(pfn * PAGE_SIZE)
        )
        for tid, vpn in pairs:
            superpage = tlb.superpage_of(vpn)
            if not sampler.covers_set(superpage % n_sets):
                continue
            if not self.machine.mmu.has_table(tid):
                continue
            table = self.machine.mmu.table(tid)
            if not table.resident[vpn]:
                continue
            report.checks += 1
            trapped = table.is_page_trapped(vpn)
            resident = tlb.contains(tid, vpn)
            if trapped == (not resident):
                continue
            kind = (
                "unexpected_page_trap" if trapped else "missing_page_trap"
            )
            state = "resident" if resident else "absent"
            if not self._add(report, Divergence(
                kind=kind,
                tid=tid,
                vpn=vpn,
                detail=(
                    f"entry for superpage {superpage} is {state} in the "
                    f"simulated TLB but the page valid bit says "
                    f"{'trapped' if trapped else 'untrapped'}"
                ),
            )):
                return

    # ------------------------------------------------------------------
    # end-of-run sweep for latent injected errors
    # ------------------------------------------------------------------

    def _sweep_true_errors(self, report: AuditReport) -> None:
        for granule, n_bits in sorted(
            self.machine.ecc.true_error_granules().items()
        ):
            report.checks += 1
            kind = "latent_double_bit" if n_bits >= 2 else "stale_true_error"
            if not self._add(report, Divergence(
                kind=kind,
                pa=granule * GRANULE_BYTES,
                granule=granule,
                detail=(
                    f"{n_bits} injected data-bit error(s) never referenced "
                    "during the run (unscrubbed at exit)"
                ),
            )):
                return
