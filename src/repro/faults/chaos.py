"""The chaos runner: execute a fault plan, verify nothing fails silently.

A chaos run takes a :class:`~repro.faults.plan.FaultPlan` and turns it
into a *verdict* per scheduled fault class.  The contract it checks is
the subsystem's one-line promise: **every injected fault is either
detected (an exception with a diagnostic, or a trap-invariant audit
divergence) or absorbed (scrubbed, retried, quarantined) — never
silent.**  A fault that perturbs results without tripping any detector
is reported as ``SILENT`` and fails the run; CI's chaos-smoke job
asserts there are none.

Machine-plane faults run one at a time — each fault class gets its own
trap-driven simulation under a single-spec plan — so a detection can be
attributed to its injection without cross-fault aliasing.  Infra-plane
faults run against a throwaway farm on a temporary cache directory with
a cheap arithmetic measure (``chaos.probe``), so worker kills, hangs
and cache corruption never touch the user's real ``.farm-cache/``.

Resolutions
-----------

``detected:exception``
    the fault raised a structured error (``DoubleBitError``).
``detected:auditor``
    the trap-invariant auditor reported a divergence.
``absorbed:scrub``
    a correctable ECC error was scrubbed in the trap handler.
``absorbed:refire``
    a dropped trap clear re-fired and self-healed (see the caveat in
    ``docs/INTERNALS.md``: state is consistent again but one miss was
    double-counted; the drop ledger is what attributes it).
``absorbed:retry``
    the farm re-ran jobs lost to a killed or hung worker.
``absorbed:quarantine``
    corrupt cache records were skipped and the values recomputed —
    or poisoned jobs were quarantined with machine-readable reasons
    while the rest of the batch completed exactly.
``absorbed:resume``
    the service master was SIGKILLed mid-batch and ``resume`` replayed
    the journaled remainder exactly once, bit-identical.
``absorbed:miss``
    cache GC evicted entries under a live reader: existing mappings
    kept their pages (POSIX unlink semantics), fresh lookups missed
    cleanly and recompiled.
``skipped:not_triggered``
    the schedule never found a viable target (short run, no trapped
    granule yet, ...).  Not a contract violation — nothing happened.
``skipped:pool_unavailable``
    this environment cannot create process pools; worker faults only
    exist on the pool path.
``SILENT``
    the fault changed observable state and *nothing* noticed.  This is
    the failure the whole subsystem exists to rule out.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import DoubleBitError
from repro.farm.jobs import Job
from repro.farm.pool import Farm, FarmConfig
from repro.faults.infra import (
    WorkerFaults,
    chaos_probe,
    garble_cache_records,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.session import enabled
from repro.harness.runner import RunOptions, run_trap_driven
from repro.workloads.registry import get_workload

#: default trap-driven budget per machine-plane fault class; ~10 chunks,
#: enough for every default-plan schedule slot to land on a real chunk
DEFAULT_CHAOS_REFS = 40_000


@dataclass
class FaultOutcome:
    """Verdict for one fault class in one chaos run."""

    kind: str                     #: FaultKind value
    plane: str                    #: "machine" | "infra"
    resolution: str               #: one of the module-doc resolutions
    detail: str = ""
    #: injections that actually landed (machine) / faults fired (infra)
    applied: int = 0

    @property
    def silent(self) -> bool:
        return self.resolution.startswith("SILENT")

    def describe(self) -> str:
        return (
            f"{self.kind:<16} {self.resolution:<24} "
            f"applied={self.applied}  {self.detail}"
        )


@dataclass
class ChaosReport:
    """Everything one chaos run learned, ready to render or serialize."""

    workload: str
    refs: int
    seed: int
    plan: dict[str, Any]
    outcomes: list[FaultOutcome] = field(default_factory=list)
    audits: int = 0
    audit_checks: int = 0

    @property
    def silent_faults(self) -> list[FaultOutcome]:
        return [o for o in self.outcomes if o.silent]

    @property
    def ok(self) -> bool:
        """The contract: no fault resolved silently."""
        return not self.silent_faults

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "refs": self.refs,
            "seed": self.seed,
            "plan": self.plan,
            "audits": self.audits,
            "audit_checks": self.audit_checks,
            "ok": self.ok,
            "outcomes": [
                {
                    "kind": o.kind,
                    "plane": o.plane,
                    "resolution": o.resolution,
                    "applied": o.applied,
                    "detail": o.detail,
                    "silent": o.silent,
                }
                for o in self.outcomes
            ],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"chaos run: workload={self.workload} refs={self.refs:,} "
            f"seed={self.seed} plan_seed={self.plan.get('seed', 0):#x}",
            f"audits    : {self.audits} ({self.audit_checks:,} invariant checks)",
        ]
        for plane in ("machine", "infra", "service"):
            plane_outcomes = [o for o in self.outcomes if o.plane == plane]
            if not plane_outcomes:
                continue
            lines.append(f"{plane} plane:")
            for outcome in plane_outcomes:
                lines.append(f"  {outcome.describe()}")
        if self.ok:
            lines.append(
                "contract  : OK — every fault detected or absorbed, 0 silent"
            )
        else:
            names = ", ".join(o.kind for o in self.silent_faults)
            lines.append(f"contract  : VIOLATED — silent fault(s): {names}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# machine plane: one isolated trap-driven run per fault class
# ---------------------------------------------------------------------------


def _chaos_config() -> TapewormConfig:
    """The canonical small configuration chaos runs simulate against."""
    return TapewormConfig(
        cache=CacheConfig(size_bytes=4096, line_bytes=16, associativity=1)
    )


def _run_machine_spec(
    spec: FaultSpec,
    plan: FaultPlan,
    workload: str,
    refs: int,
    seed: int,
):
    """Run one fault class in isolation; returns (outcome, run record)."""
    sub_plan = FaultPlan(
        specs=(spec,), seed=plan.seed, audit_every=plan.audit_every or 1
    )
    raised: DoubleBitError | None = None
    with enabled(sub_plan) as session:
        try:
            run_trap_driven(
                get_workload(workload),
                _chaos_config(),
                RunOptions(total_refs=refs, trial_seed=seed),
            )
        except DoubleBitError as exc:
            raised = exc
    record = session.last_run
    assert record is not None  # run_trap_driven always begins a run
    outcome = _classify_machine(spec, record, raised)
    return outcome, record


def _classify_machine(spec, record, raised) -> FaultOutcome:
    kind = spec.kind
    applied = record.injector.injections_applied(kind)
    divergences = record.divergences()

    def diverged(*names: str) -> bool:
        return any(d.kind in names for d in divergences)

    if kind is FaultKind.ECC_DOUBLE:
        if raised is not None:
            diag = getattr(raised, "diagnostic", None)
            return FaultOutcome(
                kind.value, "machine", "detected:exception", applied=applied,
                detail=f"DoubleBitError: {diag if diag is not None else raised}",
            )
        if diverged("latent_double_bit"):
            return FaultOutcome(
                kind.value, "machine", "detected:auditor", applied=applied,
                detail="final sweep found the uncorrectable granule",
            )
        if applied == 0:
            return _not_triggered(kind)
        return _silent(kind, applied, "double-bit error vanished untraced")

    if kind is FaultKind.ECC_SINGLE:
        if applied == 0:
            return _not_triggered(kind)
        remaining = record.tapeworm.machine.ecc.true_error_granules()
        injected = {
            e.granule for e in record.injector.ledger
            if e.kind is kind and e.applied
        }
        if not (injected & set(int(g) for g in remaining)):
            return FaultOutcome(
                kind.value, "machine", "absorbed:scrub", applied=applied,
                detail="handler scrubbed every injected single-bit error",
            )
        if diverged("stale_true_error"):
            return FaultOutcome(
                kind.value, "machine", "detected:auditor", applied=applied,
                detail="final sweep found unreferenced single-bit error(s)",
            )
        return _silent(kind, applied, "single-bit error neither scrubbed nor swept")

    if kind is FaultKind.DMA_TRAP_CLEAR:
        if applied == 0:
            return _not_triggered(kind)
        if diverged("missing_trap"):
            return FaultOutcome(
                kind.value, "machine", "detected:auditor", applied=applied,
                detail="auditor flagged the granule DMA silently untrapped",
            )
        return _silent(kind, applied, "trap cleared by DMA, no divergence")

    if kind is FaultKind.SPURIOUS_TRAP:
        if applied == 0:
            return _not_triggered(kind)
        if diverged("unexpected_trap", "orphan_trap"):
            return FaultOutcome(
                kind.value, "machine", "detected:auditor", applied=applied,
                detail="auditor flagged the trap on a resident line",
            )
        return _silent(kind, applied, "spurious trap left no trace")

    if kind is FaultKind.TRAP_CLEAR_DROP:
        consumed = len(record.injector.dropped_clears)
        if consumed == 0:
            return _not_triggered(kind)
        if diverged("missing_trap", "unexpected_trap"):
            return FaultOutcome(
                kind.value, "machine", "detected:auditor", applied=consumed,
                detail="auditor caught the undropped trap state",
            )
        drops = "; ".join(
            e.detail for e in record.injector.ledger
            if e.kind is kind and e.pa is not None
        )
        return FaultOutcome(
            kind.value, "machine", "absorbed:refire", applied=consumed,
            detail=(
                "trap re-fired and self-healed (one miss double-counted); "
                f"attributed from the drop ledger: {drops}"
            ),
        )

    raise AssertionError(f"not a machine-plane fault: {kind}")


def _not_triggered(kind: FaultKind) -> FaultOutcome:
    return FaultOutcome(
        kind.value, "machine", "skipped:not_triggered",
        detail="schedule found no viable target in this run",
    )


def _silent(kind: FaultKind, applied: int, detail: str) -> FaultOutcome:
    return FaultOutcome(
        kind.value, "machine", "SILENT", applied=applied, detail=detail
    )


# ---------------------------------------------------------------------------
# infra plane: throwaway farms on temporary cache directories
# ---------------------------------------------------------------------------

#: jobs per infra scenario — enough that a fault on job 0/1 leaves
#: healthy jobs proving reassembly still works
_INFRA_JOBS = 4


def _probe_jobs() -> list[Job]:
    return [
        Job(measure="chaos.probe", params={"scale": 1.0}, seed=s)
        for s in range(_INFRA_JOBS)
    ]


def _expected_values() -> list[float]:
    return [chaos_probe(s) for s in range(_INFRA_JOBS)]


def _classify_farm_run(
    kind: FaultKind, farm: Farm, values: list[Any]
) -> FaultOutcome:
    run = farm.last_run
    if run.fallback_serial and not run.breaker_tripped and not run.retries:
        return FaultOutcome(
            kind.value, "infra", "skipped:pool_unavailable",
            detail="no process pool in this environment; fault never fired",
        )
    if values != _expected_values():
        return FaultOutcome(
            kind.value, "infra", "SILENT", applied=1,
            detail=f"job values corrupted: {values}",
        )
    if run.retries:
        return FaultOutcome(
            kind.value, "infra", "absorbed:retry", applied=run.retries,
            detail=(
                f"values exact after {run.retries} retry(ies)"
                + (", breaker degraded to serial" if run.breaker_tripped else "")
            ),
        )
    return FaultOutcome(
        kind.value, "infra", "skipped:not_triggered",
        detail="fault schedule never hit a pool-path job",
    )


def _run_worker_fault(
    kind: FaultKind, specs: list[FaultSpec], tmp: Path
) -> FaultOutcome:
    occurrences = frozenset(
        when for spec in specs for when in spec.occurrences()
        if when < _INFRA_JOBS
    )
    if not occurrences:
        return FaultOutcome(
            kind.value, "infra", "skipped:not_triggered",
            detail=f"no scheduled job index below {_INFRA_JOBS}",
        )
    if kind is FaultKind.WORKER_KILL:
        faults = WorkerFaults(kills=occurrences)
        timeout = None
    else:
        # hang long enough to trip the timeout, short enough for CI
        faults = WorkerFaults(hangs=occurrences, hang_secs=5.0)
        timeout = 0.5
    farm = Farm(FarmConfig(
        max_workers=2,
        cache_dir=tmp / kind.value,
        job_timeout=timeout,
        max_retries=3,
        backoff_base=0.01,
        worker_faults=faults,
    ))
    values = farm.run_jobs(_probe_jobs())
    return _classify_farm_run(kind, farm, values)


def _run_cache_garble(specs: list[FaultSpec], tmp: Path) -> FaultOutcome:
    kind = FaultKind.CACHE_GARBLE
    cache_dir = tmp / kind.value
    # populate a healthy cache serially, then corrupt it on disk
    Farm(FarmConfig(max_workers=1, cache_dir=cache_dir)).run_jobs(_probe_jobs())
    indices = tuple(
        when for spec in specs for when in spec.occurrences()
        if when < _INFRA_JOBS
    )
    garbled = garble_cache_records(cache_dir, indices=indices or (0,))
    if not garbled:
        return FaultOutcome(
            kind.value, "infra", "skipped:not_triggered",
            detail="no cache records existed to garble",
        )
    fresh = Farm(FarmConfig(max_workers=1, cache_dir=cache_dir))
    values = fresh.run_jobs(_probe_jobs())
    if values != _expected_values():
        return FaultOutcome(
            kind.value, "infra", "SILENT", applied=garbled,
            detail=f"corrupt cache served wrong values: {values}",
        )
    if fresh.cache.corrupt >= garbled:
        return FaultOutcome(
            kind.value, "infra", "absorbed:quarantine", applied=garbled,
            detail=(
                f"{fresh.cache.corrupt} corrupt record(s) quarantined, "
                "values recomputed exactly"
            ),
        )
    return FaultOutcome(
        kind.value, "infra", "SILENT", applied=garbled,
        detail="garbled records passed verification unchallenged",
    )


# ---------------------------------------------------------------------------
# service plane: crash/resume, poison storms, GC vs. readers
# ---------------------------------------------------------------------------


def _service_farm_config(cache_dir: Path, **overrides: Any) -> "FarmConfig":
    defaults: dict[str, Any] = dict(
        max_workers=1,
        cache_dir=cache_dir,
        backoff_base=0.01,
        backoff_max=0.02,
    )
    defaults.update(overrides)
    return FarmConfig(**defaults)


def _run_service_crash(specs: list[FaultSpec], tmp: Path) -> FaultOutcome:
    """SIGKILL the service master mid-batch, resume, verify identity.

    A child process runs the batch serially under a journal; the job at
    the scheduled index SIGKILLs the master (while a sentinel file
    exists), leaving k committed jobs, one leased, the rest queued.
    The parent deletes the sentinel, resumes on the same directories,
    and demands bit-identical values, exactly-once replay and a clean
    journal.
    """
    import subprocess
    import sys

    kind = FaultKind.SERVICE_CRASH
    kill_at = next(
        (
            when for spec in specs for when in sorted(spec.occurrences())
            if 0 < when < _INFRA_JOBS
        ),
        2,
    )
    cache_dir = tmp / kind.value
    sentinel = tmp / f"{kind.value}.sentinel"
    sentinel.write_text("armed\n")
    src_root = str(Path(__file__).resolve().parents[2])
    child = (
        "import sys\n"
        f"sys.path.insert(0, {src_root!r})\n"
        "from repro.farm import FarmService, ServiceConfig, FarmConfig, Job\n"
        f"cfg = ServiceConfig(farm=FarmConfig(max_workers=1, "
        f"cache_dir={str(cache_dir)!r}))\n"
        "svc = FarmService(cfg)\n"
        "jobs = [Job('chaos.kill_probe', {'scale': 1.0, "
        f"'sentinel': {str(sentinel)!r}, 'kill_seed': {kill_at}}}, seed=s)\n"
        f"        for s in range({_INFRA_JOBS})]\n"
        "svc.run(jobs, client='chaos', batch='crash')\n"
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True, text=True, timeout=120,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        return FaultOutcome(
            kind.value, "service", "skipped:not_triggered",
            detail=f"child process could not run: {exc!r}",
        )
    if proc.returncode == 0:
        return FaultOutcome(
            kind.value, "service", "SILENT", applied=0,
            detail="scheduled SIGKILL never fired; the batch completed",
        )
    sentinel.unlink(missing_ok=True)

    from repro.farm.service import FarmService, ServiceConfig

    svc = FarmService(
        ServiceConfig(farm=_service_farm_config(cache_dir))
    )
    counts_before = svc.journal.counts()
    incomplete = counts_before["queued"] + counts_before["leased"]
    if incomplete == 0 or counts_before["done"] != kill_at:
        return FaultOutcome(
            kind.value, "service", "SILENT", applied=1,
            detail=(
                f"journal does not reflect the crash point: {counts_before} "
                f"(expected {kill_at} done, {_INFRA_JOBS - kill_at} unfinished)"
            ),
        )
    report = svc.resume()
    jobs = [
        Job(
            "chaos.kill_probe",
            {
                "scale": 1.0,
                "sentinel": str(sentinel),
                "kill_seed": kill_at,
            },
            seed=s,
        )
        for s in range(_INFRA_JOBS)
    ]
    values = svc.farm.run_jobs(jobs)
    counts = svc.journal.counts()
    clean = counts["queued"] == 0 and counts["leased"] == 0
    exact = values == _expected_values()
    once = (
        report["executed"] + report["reconciled"] == _INFRA_JOBS - kill_at
    )
    if exact and clean and once:
        return FaultOutcome(
            kind.value, "service", "absorbed:resume", applied=1,
            detail=(
                f"SIGKILL after {kill_at} of {_INFRA_JOBS} jobs; resume "
                f"re-executed {report['executed']}, reconciled "
                f"{report['reconciled']}, values bit-identical, journal clean"
            ),
        )
    return FaultOutcome(
        kind.value, "service", "SILENT", applied=1,
        detail=(
            f"resume broke the contract: exact={exact} clean={clean} "
            f"exactly_once={once} values={values} journal={counts}"
        ),
    )


def _run_poison_storm(specs: list[FaultSpec], tmp: Path) -> FaultOutcome:
    """Several jobs deterministically kill every worker they touch; the
    supervisor must quarantine each with a reason while the healthy
    jobs complete exactly."""
    from repro.errors import PoisonedJobsError
    from repro.farm.service import FarmService, ServiceConfig
    from repro.farm.supervisor import POISON_FILE, SupervisorConfig

    kind = FaultKind.POISON_STORM
    toxic = frozenset(
        when for spec in specs for when in spec.occurrences()
        if when < _INFRA_JOBS - 1  # keep at least one healthy job
    )
    if not toxic:
        return FaultOutcome(
            kind.value, "service", "skipped:not_triggered",
            detail=f"no scheduled job index below {_INFRA_JOBS - 1}",
        )
    cache_dir = tmp / kind.value
    svc = FarmService(
        ServiceConfig(
            farm=_service_farm_config(
                cache_dir,
                max_workers=2,
                max_retries=2 * len(toxic) + 3,
                worker_faults=WorkerFaults(kills=toxic, persistent=True),
            ),
            supervisor=SupervisorConfig(
                poison_strikes=2, flap_threshold=99
            ),
        )
    )
    ticket = svc.run(_probe_jobs(), client="chaos", batch="storm")
    run = svc.farm.last_run
    if (
        ticket.state == "done"
        and run is not None
        and run.fallback_serial
        and not run.retries
    ):
        return FaultOutcome(
            kind.value, "service", "skipped:pool_unavailable",
            detail="no process pool in this environment; fault never fired",
        )
    expected = _expected_values()
    healthy_exact = ticket.results is not None and all(
        ticket.results[i] == expected[i]
        for i in range(_INFRA_JOBS)
        if i not in toxic
    )
    reasons_ok = (
        ticket.state == "poisoned"
        and len(ticket.reasons) == len(toxic)
        and all(
            reason.get("code") == "poisoned"
            and reason.get("workers_killed", 0) >= 2
            for reason in ticket.reasons.values()
        )
    )
    ledgered = (cache_dir / POISON_FILE).exists()
    journaled = svc.journal.counts()["poisoned"] == len(toxic)
    if healthy_exact and reasons_ok and ledgered and journaled:
        return FaultOutcome(
            kind.value, "service", "absorbed:quarantine",
            applied=len(toxic),
            detail=(
                f"{len(toxic)} poisoned job(s) quarantined with "
                "machine-readable reasons; healthy values exact; "
                "journal and poisoned.jsonl agree"
            ),
        )
    return FaultOutcome(
        kind.value, "service", "SILENT", applied=len(toxic),
        detail=(
            f"storm mishandled: state={ticket.state} "
            f"healthy_exact={healthy_exact} reasons_ok={reasons_ok} "
            f"ledgered={ledgered} journaled={journaled}"
        ),
    )


def _run_gc_reader_race(tmp: Path) -> FaultOutcome:
    """Evict the whole stream tier while a reader holds live mappings:
    the mapping must keep its pages, fresh lookups must miss cleanly."""
    import numpy as np

    from repro.farm.gc import CacheGC
    from repro.streams.store import StreamStore

    kind = FaultKind.GC_READER_RACE
    store_dir = tmp / kind.value
    store = StreamStore(store_dir)
    key = "deadbeef" * 8  # a 64-char hex key, like real fingerprints
    blob = np.arange(2048, dtype=np.int64)
    mapped = store.put(key, blob)
    assert mapped is not None
    before = (int(mapped[0]), int(mapped[-1]), int(mapped.sum()))

    collector = CacheGC(budget_bytes=0)
    report = collector.collect_stream_tier(store_dir)
    if report.evicted == 0:
        return FaultOutcome(
            kind.value, "service", "SILENT", applied=0,
            detail="GC under a zero budget evicted nothing",
        )
    after = (int(mapped[0]), int(mapped[-1]), int(mapped.sum()))
    fresh = StreamStore(store_dir)
    miss = fresh.get(key) is None
    replaced = fresh.put(key, blob)
    replay = (
        replaced is not None
        and (int(replaced[0]), int(replaced[-1]), int(replaced.sum()))
        == before
    )
    if after == before and miss and replay:
        return FaultOutcome(
            kind.value, "service", "absorbed:miss",
            applied=report.evicted,
            detail=(
                "live mapping kept its pages through the eviction; "
                "fresh lookup missed cleanly and the re-put round-tripped"
            ),
        )
    return FaultOutcome(
        kind.value, "service", "SILENT", applied=report.evicted,
        detail=(
            f"race mishandled: mapping_stable={after == before} "
            f"clean_miss={miss} replay={replay}"
        ),
    )


# ---------------------------------------------------------------------------
# the entry point
# ---------------------------------------------------------------------------


def run_chaos(
    plan: FaultPlan,
    workload: str = "mpeg_play",
    refs: int = DEFAULT_CHAOS_REFS,
    seed: int = 0,
) -> ChaosReport:
    """Execute every fault class in ``plan`` and report the verdicts."""
    report = ChaosReport(
        workload=workload, refs=refs, seed=seed, plan=plan.to_dict()
    )
    for spec in plan.machine_specs():
        outcome, record = _run_machine_spec(spec, plan, workload, refs, seed)
        report.outcomes.append(outcome)
        report.audits += len(record.reports)
        report.audit_checks += sum(r.checks for r in record.reports)

    infra = plan.infra_specs()
    if infra:
        by_kind: dict[FaultKind, list[FaultSpec]] = {}
        for spec in infra:
            by_kind.setdefault(spec.kind, []).append(spec)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
            tmp = Path(tmpdir)
            for kind in (FaultKind.WORKER_KILL, FaultKind.WORKER_HANG):
                if kind in by_kind:
                    report.outcomes.append(
                        _run_worker_fault(kind, by_kind[kind], tmp)
                    )
            if FaultKind.CACHE_GARBLE in by_kind:
                report.outcomes.append(
                    _run_cache_garble(by_kind[FaultKind.CACHE_GARBLE], tmp)
                )

    service = plan.service_specs()
    if service:
        by_kind = {}
        for spec in service:
            by_kind.setdefault(spec.kind, []).append(spec)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-svc-") as tmpdir:
            tmp = Path(tmpdir)
            if FaultKind.SERVICE_CRASH in by_kind:
                report.outcomes.append(
                    _run_service_crash(by_kind[FaultKind.SERVICE_CRASH], tmp)
                )
            if FaultKind.POISON_STORM in by_kind:
                report.outcomes.append(
                    _run_poison_storm(by_kind[FaultKind.POISON_STORM], tmp)
                )
            if FaultKind.GC_READER_RACE in by_kind:
                report.outcomes.append(_run_gc_reader_race(tmp))
    return report
