"""Infrastructure-plane faults: the execution farm under attack.

The farm's hardening claims — retry with backoff absorbs crashed
workers, timeouts absorb hung workers, CRC quarantine absorbs garbled
cache records, the circuit breaker degrades to serial when the pool
keeps dying — are only claims until something actually kills, hangs and
garbles.  This module is that something.

:class:`WorkerFaults` is the picklable worker-side schedule: the farm
master wraps each pool submission in :func:`faulted_execute`, which
consults the schedule *inside the worker* and either dies
(``os._exit``), sleeps past the job timeout, or runs the real measure.
By default faults fire only on a job's first scheduling attempt, so the
farm's retry machinery can absorb them; ``persistent`` faults keep
firing on every attempt, which is how the circuit breaker is driven
into its serial fallback.  Serial execution (in the master process)
never applies worker faults — that asymmetry is exactly why degrading
to serial is a sound last resort.

:func:`garble_cache_records` corrupts stored farm-cache records on
disk, modeling bit rot or a torn write that still parses.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.farm.registry import timed_execute
from repro.faults.plan import FaultKind, FaultPlan

#: exit status of a deliberately killed worker (recognizable in cores)
KILL_EXIT_STATUS = 43


@dataclass(frozen=True)
class WorkerFaults:
    """Which batch job indices to kill or hang, and for how long."""

    kills: frozenset[int] = frozenset()
    hangs: frozenset[int] = frozenset()
    hang_secs: float = 30.0
    #: fire on every attempt instead of only the first (drives the
    #: circuit breaker instead of the retry path)
    persistent: bool = False

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "WorkerFaults | None":
        """Extract the worker-fault schedule from a plan's infra specs;
        None when the plan schedules no worker faults."""
        kills: set[int] = set()
        hangs: set[int] = set()
        hang_secs = 30.0
        persistent = False
        for spec in plan.infra_specs():
            if spec.kind is FaultKind.WORKER_KILL:
                kills.update(spec.occurrences())
            elif spec.kind is FaultKind.WORKER_HANG:
                hangs.update(spec.occurrences())
                hang_secs = float(spec.params.get("hang_secs", hang_secs))
            else:
                continue
            persistent = persistent or bool(
                spec.params.get("persistent", False)
            )
        if not kills and not hangs:
            return None
        return cls(
            kills=frozenset(kills),
            hangs=frozenset(hangs),
            hang_secs=hang_secs,
            persistent=persistent,
        )

    def action_for(self, job_index: int, attempt: int) -> str | None:
        if attempt > 0 and not self.persistent:
            return None
        if job_index in self.kills:
            return "kill"
        if job_index in self.hangs:
            return "hang"
        return None


def faulted_execute(
    action: str | None,
    hang_secs: float,
    measure: str,
    params: Mapping[str, Any],
    seed: int,
) -> tuple[Any, float]:
    """Worker-side wrapper around ``timed_execute`` that first applies
    a scheduled fault (runs in the *worker* process)."""
    if action == "kill":
        os._exit(KILL_EXIT_STATUS)
    if action == "hang":
        time.sleep(hang_secs)
    return timed_execute(measure, params, seed)


def chaos_probe(seed: int = 0, scale: float = 1.0) -> float:
    """A tiny deterministic measure for infra chaos runs: cheap enough
    to kill and retry dozens of times, distinctive enough that a wrong
    cached value is caught by equality."""
    return round(scale * (seed * seed + 3 * seed + 1), 6)


def killable_probe(
    seed: int = 0,
    scale: float = 1.0,
    sentinel: str = "",
    kill_seed: int = -1,
) -> float:
    """:func:`chaos_probe` that SIGKILLs its own process on one seed.

    The service-plane crash scenario: while the ``sentinel`` file
    exists, executing the job with ``seed == kill_seed`` kills the
    process outright (no cleanup, no journal commit) — exactly the
    mid-batch SIGKILL a resumable service must survive.  The parent
    deletes the sentinel before resuming, so the replayed job runs
    normally and returns the probe value.
    """
    import signal

    if sentinel and seed == kill_seed and Path(sentinel).exists():
        os.kill(os.getpid(), signal.SIGKILL)
    return chaos_probe(seed, scale)


def garble_cache_records(
    directory: str | Path, indices: tuple[int, ...] = (0,)
) -> int:
    """Corrupt stored farm-cache records in place; returns how many.

    Each targeted line gets one character in its middle replaced — the
    record usually still parses as JSON but no longer matches its CRC,
    which is precisely the corruption class checksums exist for.
    """
    from repro.farm.cache import RESULTS_FILE

    path = Path(directory) / RESULTS_FILE
    if not path.exists():
        return 0
    lines = path.read_text().splitlines()
    garbled = 0
    for index in indices:
        if not 0 <= index < len(lines) or not lines[index]:
            continue
        line = lines[index]
        middle = len(line) // 2
        replacement = "0" if line[middle] != "0" else "1"
        lines[index] = line[:middle] + replacement + line[middle + 1 :]
        garbled += 1
    path.write_text("\n".join(lines) + "\n")
    return garbled
