"""Machine-plane fault injection.

The injector rides the execution engine's chunk tap: after every
executed chunk it consults the plan's schedule and perturbs the
*machine* — ECC state, DMA engine, trap primitives — never the
simulator's own bookkeeping.  That discipline is the point: an injected
fault must be discovered the way the paper's hazards were discovered
(a trap classifying as a true error, an invariant audit, a miss count
drifting), not by the injector whispering to the detector.

Every random choice is drawn from ``default_rng([plan.seed,
trial_seed])``, so a chaos run replays exactly from ``(plan, seed)``.

Fault semantics (all between chunks, on granule/line boundaries):

``ecc_single``
    flips one data bit on a granule that carries *no* Tapeworm trap —
    a correctable true error.  The handler must classify, scrub, and
    leave the miss counts alone.  (On a trapped granule the same flip
    would also be recoverable, but the real machine re-executes the
    interrupted load after scrubbing while this simulator does not, so
    the displaced Tapeworm miss would surface one reference later —
    targeting untrapped granules keeps "miss counts unperturbed" exact.)
``ecc_double``
    flips two data bits in one word — uncorrectable; the next refill
    must raise :class:`~repro.errors.DoubleBitError`.
``dma_trap_clear``
    a DMA write (no shield hook — the un-ported 5000/240) over a
    trapped line: ECC regenerated, trap silently gone.
``spurious_trap``
    sets the Tapeworm check bit on a line the simulated cache holds.
``trap_clear_drop``
    arms a one-shot interceptor on ``tw_clear_trap``: the next clear is
    silently lost, as if the diagnostic-mode write never reached the
    ASIC.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.machine.dma import DMAEngine
from repro.machine.memory import GRANULE_BYTES

logger = logging.getLogger(__name__)

#: in-memory ledger entry cap; beyond it the oldest half rotates out so
#: a fault storm cannot grow the ledger without bound (applied counts
#: stay exact — they are tallied at append time, not by scanning)
LEDGER_CAP = 4096


@dataclass
class Injection:
    """Ledger entry: one scheduled fault occurrence."""

    kind: FaultKind
    chunk_index: int
    detail: str
    pa: int | None = None
    granule: int | None = None
    #: False when no viable target existed at the scheduled moment
    applied: bool = True

    def describe(self) -> str:
        where = f" pa={self.pa:#x}" if self.pa is not None else ""
        state = "" if self.applied else " (not applied)"
        return (
            f"{self.kind.value}@chunk{self.chunk_index}{where}: "
            f"{self.detail}{state}"
        )


class MachineFaultInjector:
    """Executes the machine-plane schedule of a :class:`FaultPlan`."""

    #: attempts at finding a target satisfying a fault's preconditions
    _PICK_TRIES = 16

    def __init__(
        self, tapeworm, plan: FaultPlan, trial_seed: int = 0
    ) -> None:
        self.tapeworm = tapeworm
        self.machine = tapeworm.machine
        self.plan = plan
        self.rng = np.random.default_rng(
            [plan.seed & 0xFFFFFFFF, trial_seed & 0xFFFFFFFF]
        )
        self.ledger: list[Injection] = []
        self.ledger_rotations = 0
        self._applied_counts: dict[FaultKind, int] = {}
        self._rotation_logged = False
        self.dropped_clears: list[tuple[int, int]] = []
        self._pending_drops = 0
        self._drop_entries: list[Injection] = []
        self._chunks = 0
        self._armed = False
        self._orig_clear = None
        self._dma = DMAEngine(self.machine)
        self._schedule: dict[int, list[FaultSpec]] = {}
        for spec in plan.machine_specs():
            for when in spec.occurrences():
                self._schedule.setdefault(when, []).append(spec)

    # ------------------------------------------------------------------
    # arming: intercept tw_clear_trap for drop faults
    # ------------------------------------------------------------------

    def arm(self) -> None:
        if self._armed:
            return
        primitives = self.tapeworm.primitives
        self._orig_clear = primitives.tw_clear_trap

        def intercepted(pa: int, size: int) -> None:
            if self._pending_drops > 0:
                self._pending_drops -= 1
                self.dropped_clears.append((pa, size))
                if len(self.dropped_clears) > LEDGER_CAP:
                    del self.dropped_clears[: LEDGER_CAP // 2]
                entry = self._drop_entries.pop(0)
                entry.pa = pa
                entry.granule = pa // GRANULE_BYTES
                entry.detail = (
                    f"dropped tw_clear_trap({pa:#x}, {size}) on the floor"
                )
                return
            self._orig_clear(pa, size)

        primitives.tw_clear_trap = intercepted
        self._armed = True

    def disarm(self) -> None:
        if not self._armed:
            return
        self.tapeworm.primitives.tw_clear_trap = self._orig_clear
        self._orig_clear = None
        self._armed = False

    # ------------------------------------------------------------------
    # the chunk tap
    # ------------------------------------------------------------------

    def on_chunk(self, tid: int, component, vas: np.ndarray) -> None:
        index = self._chunks
        self._chunks += 1
        for spec in self._schedule.get(index, ()):
            self._inject(spec, index, tid, vas)

    def injections_applied(self, kind: FaultKind | None = None) -> int:
        if kind is not None:
            return self._applied_counts.get(kind, 0)
        return sum(self._applied_counts.values())

    def _ledger_append(self, entry: Injection) -> None:
        """Record an injection, rotating the oldest half past the cap.

        The applied tally is taken here (entries never flip ``applied``
        later), so rotation loses narrative detail but never counts.
        """
        if entry.applied:
            self._applied_counts[entry.kind] = (
                self._applied_counts.get(entry.kind, 0) + 1
            )
        self.ledger.append(entry)
        if len(self.ledger) > LEDGER_CAP:
            del self.ledger[: LEDGER_CAP // 2]
            self.ledger_rotations += 1
            if not self._rotation_logged:
                self._rotation_logged = True
                logger.warning(
                    "fault ledger exceeded %d entries; rotating the "
                    "oldest half out (counts stay exact; further "
                    "rotations are silent)", LEDGER_CAP,
                )

    # ------------------------------------------------------------------
    # per-kind implementations
    # ------------------------------------------------------------------

    def _inject(
        self, spec: FaultSpec, index: int, tid: int, vas: np.ndarray
    ) -> None:
        kind = spec.kind
        if kind is FaultKind.ECC_SINGLE:
            entry = self._inject_ecc(index, tid, vas, double=False)
        elif kind is FaultKind.ECC_DOUBLE:
            entry = self._inject_ecc(index, tid, vas, double=True)
        elif kind is FaultKind.DMA_TRAP_CLEAR:
            entry = self._inject_dma_clear(index)
        elif kind is FaultKind.SPURIOUS_TRAP:
            entry = self._inject_spurious_trap(index)
        elif kind is FaultKind.TRAP_CLEAR_DROP:
            entry = Injection(
                kind=FaultKind.TRAP_CLEAR_DROP,
                chunk_index=index,
                detail="armed: next tw_clear_trap will be lost",
            )
            self._pending_drops += 1
            self._drop_entries.append(entry)
        else:  # pragma: no cover - the plan split keeps infra kinds out
            raise AssertionError(f"not a machine-plane fault: {kind}")
        self._ledger_append(entry)

    def _sample_pa(self, tid: int, vas: np.ndarray) -> int:
        """A physical address the just-run chunk actually touched."""
        table = self.machine.mmu.table(tid)
        va = int(vas[int(self.rng.integers(0, len(vas)))])
        return int(table.translate(np.array([va], dtype=np.int64))[0])

    def _inject_ecc(
        self, index: int, tid: int, vas: np.ndarray, double: bool
    ) -> Injection:
        kind = FaultKind.ECC_DOUBLE if double else FaultKind.ECC_SINGLE
        ecc = self.machine.ecc
        pa = None
        for _ in range(self._PICK_TRIES):
            candidate = self._sample_pa(tid, vas)
            granule = self.machine.memory.granule_of(candidate)
            if granule in ecc.true_error_granules():
                continue  # stacking onto an existing error changes class
            if not double and ecc.is_tapeworm_trapped(candidate):
                continue  # singles target untrapped granules (see module doc)
            pa = candidate
            break
        if pa is None:
            return Injection(
                kind=kind, chunk_index=index, applied=False,
                detail="no viable target granule in this chunk",
            )
        bit = int(self.rng.integers(0, 32))
        ecc.inject_true_error(pa, bit=bit, double=double)
        pattern = "double-bit" if double else "single-bit"
        return Injection(
            kind=kind,
            chunk_index=index,
            pa=pa,
            granule=pa // GRANULE_BYTES,
            detail=f"injected {pattern} true error, first bit {bit}",
        )

    def _line_bytes(self) -> int:
        replacer = self.tapeworm.replacer
        return replacer.line_bytes if replacer is not None else GRANULE_BYTES

    def _inject_dma_clear(self, index: int) -> Injection:
        ecc = self.machine.ecc
        registry = self.tapeworm.registry
        candidates = [
            int(g)
            for g in ecc.tapeworm_granules()
            if registry.is_registered_frame(int(g) * GRANULE_BYTES)
        ]
        if not candidates:
            return Injection(
                kind=FaultKind.DMA_TRAP_CLEAR, chunk_index=index,
                applied=False, detail="no trapped granules to overwrite",
            )
        granule = candidates[int(self.rng.integers(0, len(candidates)))]
        line_bytes = self._line_bytes()
        base = (granule * GRANULE_BYTES) & ~(line_bytes - 1)
        # an unshielded engine: ECC regenerated, Tapeworm never notified
        self._dma.write(base, line_bytes)
        return Injection(
            kind=FaultKind.DMA_TRAP_CLEAR,
            chunk_index=index,
            pa=base,
            granule=base // GRANULE_BYTES,
            detail=f"unshielded DMA write of {line_bytes} bytes",
        )

    def _inject_spurious_trap(self, index: int) -> Injection:
        structure = getattr(self.tapeworm, "structure", None)
        if structure is None:
            return Injection(
                kind=FaultKind.SPURIOUS_TRAP, chunk_index=index,
                applied=False, detail="no ECC-trapped structure to target",
            )
        cache = getattr(structure, "l1", structure)
        registry = self.tapeworm.registry
        keys = sorted(cache.resident_keys())
        line_bytes = self._line_bytes()
        for _ in range(self._PICK_TRIES):
            if not keys:
                break
            space, line_addr = keys[int(self.rng.integers(0, len(keys)))]
            if space == 0:  # physically indexed: the key is the pa
                pa = line_addr if registry.is_registered_frame(line_addr) else None
            else:  # virtually indexed: translate through the registry
                pa = registry.pa_of(space, line_addr)
            if pa is None:
                continue
            self.machine.ecc.set_trap(pa, line_bytes)
            return Injection(
                kind=FaultKind.SPURIOUS_TRAP,
                chunk_index=index,
                pa=pa,
                granule=pa // GRANULE_BYTES,
                detail="trap set on a simulated-cache-resident line",
            )
        return Injection(
            kind=FaultKind.SPURIOUS_TRAP, chunk_index=index,
            applied=False, detail="no resident registered line found",
        )
