"""Fault plans: what to break, when, and reproducibly.

A :class:`FaultPlan` is the single replayable description of a chaos
run.  It carries a seed and a list of :class:`FaultSpec`\\ s; every
random choice any injector makes is drawn from a generator seeded by
``(plan.seed, trial_seed)``, so a run is fully determined by
``(plan, seed)`` — the property that turns "it broke once in the farm"
into a unit test.

Faults live on three planes:

* the **machine plane** breaks the simulated hardware the way §3/§4 of
  the paper says real hardware breaks Tapeworm: correctable single-bit
  ECC flips, uncorrectable double-bit errors, DMA writes that silently
  regenerate ECC over planted traps, spurious traps, and dropped
  trap-clear operations;
* the **infrastructure plane** breaks the execution farm around the
  simulation: killed workers, hung workers, and garbled cache records;
* the **service plane** breaks the long-running service around the
  farm: the master SIGKILLed mid-batch (then resumed from the job
  journal), jobs that deterministically poison every worker, and cache
  GC evicting entries under a live reader.

Machine-plane schedules are in units of executed *chunks*; infra- and
service-plane schedules are in units of *job index* within a batch.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import ConfigError


class FaultPlane(enum.Enum):
    MACHINE = "machine"
    INFRA = "infra"
    #: the long-running service around the farm: crash/resume, poison
    #: storms, cache GC racing readers
    SERVICE = "service"


class FaultKind(enum.Enum):
    """Every fault class the chaos layer can inject."""

    #: correctable single-bit ECC flip (must not perturb miss counts)
    ECC_SINGLE = "ecc_single"
    #: uncorrectable double-bit pattern (must raise ``DoubleBitError``)
    ECC_DOUBLE = "ecc_double"
    #: DMA write regenerating ECC over a planted trap (the §4.3 hazard)
    DMA_TRAP_CLEAR = "dma_trap_clear"
    #: trap set on a line the simulated cache holds
    SPURIOUS_TRAP = "spurious_trap"
    #: a ``tw_clear_trap`` call silently dropped
    TRAP_CLEAR_DROP = "trap_clear_drop"
    #: farm worker killed mid-job
    WORKER_KILL = "worker_kill"
    #: farm worker hangs past the job timeout
    WORKER_HANG = "worker_hang"
    #: on-disk cache record corrupted
    CACHE_GARBLE = "cache_garble"
    #: the service master SIGKILLed mid-batch, then resumed
    SERVICE_CRASH = "service_crash"
    #: several jobs deterministically kill every worker they touch
    POISON_STORM = "poison_storm"
    #: cache GC evicts entries while a reader holds live mappings
    GC_READER_RACE = "gc_reader_race"

    @property
    def plane(self) -> FaultPlane:
        if self in (
            FaultKind.WORKER_KILL,
            FaultKind.WORKER_HANG,
            FaultKind.CACHE_GARBLE,
        ):
            return FaultPlane.INFRA
        if self in (
            FaultKind.SERVICE_CRASH,
            FaultKind.POISON_STORM,
            FaultKind.GC_READER_RACE,
        ):
            return FaultPlane.SERVICE
        return FaultPlane.MACHINE


@dataclass(frozen=True)
class FaultSpec:
    """One fault class with its trigger schedule.

    Occurrences fire at ``start, start + every, ...`` (``count`` times);
    ``every == 0`` stacks them all at ``start``.  ``params`` carries
    kind-specific knobs (``hang_secs``, ``persistent``, ...).
    """

    kind: FaultKind
    count: int = 1
    start: int = 0
    every: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError(f"fault count must be >= 1, got {self.count}")
        if self.start < 0 or self.every < 0:
            raise ConfigError(
                f"fault schedule must be non-negative "
                f"(start={self.start}, every={self.every})"
            )

    def occurrences(self) -> tuple[int, ...]:
        """The trigger indices (chunk or job positions), ascending."""
        return tuple(self.start + i * self.every for i in range(self.count))

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "kind": self.kind.value,
            "count": self.count,
            "start": self.start,
            "every": self.every,
        }
        if self.params:
            record["params"] = dict(self.params)
        return record


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable batch of fault specs."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: audit the trap invariant every N chunks (0 = final audit only)
    audit_every: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigError(f"plan seed must be an integer, got {self.seed!r}")
        if self.audit_every < 0:
            raise ConfigError(
                f"audit_every must be non-negative, got {self.audit_every}"
            )

    def machine_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(
            s for s in self.specs if s.kind.plane is FaultPlane.MACHINE
        )

    def infra_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind.plane is FaultPlane.INFRA)

    def service_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(
            s for s in self.specs if s.kind.plane is FaultPlane.SERVICE
        )

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    # -- serialization (the ``--plan``/``--fault-plan`` file format)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "audit_every": self.audit_every,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"a fault plan must be a JSON object, got {type(payload).__name__}"
            )
        specs = []
        for entry in payload.get("faults", ()):
            try:
                kind = FaultKind(entry["kind"])
            except (KeyError, TypeError):
                raise ConfigError(f"fault entry needs a 'kind': {entry!r}") from None
            except ValueError:
                known = ", ".join(k.value for k in FaultKind)
                raise ConfigError(
                    f"unknown fault kind {entry['kind']!r}; known: {known}"
                ) from None
            specs.append(
                FaultSpec(
                    kind=kind,
                    count=int(entry.get("count", 1)),
                    start=int(entry.get("start", 0)),
                    every=int(entry.get("every", 0)),
                    params=dict(entry.get("params", {})),
                )
            )
        return cls(
            specs=tuple(specs),
            seed=int(payload.get("seed", 0)),
            audit_every=int(payload.get("audit_every", 0)),
        )


def load_plan(path: str | Path) -> FaultPlan:
    """Read a fault plan from a JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read fault plan {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"fault plan {path} is not valid JSON: {exc}") from exc
    return FaultPlan.from_dict(payload)


def default_plan(seed: int = 0xFA017) -> FaultPlan:
    """One fault per class — the chaos-smoke contract plan."""
    return FaultPlan(
        seed=seed,
        audit_every=1,
        specs=(
            FaultSpec(FaultKind.ECC_SINGLE, count=2, start=2, every=5),
            FaultSpec(FaultKind.ECC_DOUBLE, count=1, start=9),
            FaultSpec(FaultKind.DMA_TRAP_CLEAR, count=1, start=4),
            FaultSpec(FaultKind.SPURIOUS_TRAP, count=1, start=3),
            FaultSpec(FaultKind.TRAP_CLEAR_DROP, count=1, start=6),
            FaultSpec(FaultKind.WORKER_KILL, count=1, start=0),
            FaultSpec(
                FaultKind.WORKER_HANG, count=1, start=1,
                params={"hang_secs": 5.0},
            ),
            FaultSpec(FaultKind.CACHE_GARBLE, count=1, start=0),
            FaultSpec(FaultKind.SERVICE_CRASH, count=1, start=2),
            FaultSpec(FaultKind.POISON_STORM, count=2, start=0, every=1),
            FaultSpec(FaultKind.GC_READER_RACE, count=1, start=0),
        ),
    )
