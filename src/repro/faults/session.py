"""The process-wide fault-injection session.

Mirrors :mod:`repro.telemetry.session`: one module-level slot that the
harness reads once per run.  With no session active (the default) the
trap-driven runner pays a single global load and a ``None`` check, and
*nothing* in the simulation reads fault state — results are
bit-identical with the subsystem present or absent, which
``tests/faults/test_unobtrusive.py`` pins.

With a session active, every trap-driven run started while it holds a
:class:`~repro.faults.plan.FaultPlan` gets a :class:`FaultRunRecord`:
a machine-plane injector armed on the chunk tap plus a trap-invariant
auditor running at the plan's cadence and once at end of run.  The
records stay on the session after the runs finish (even runs aborted by
a :class:`~repro.errors.DoubleBitError`), which is how the chaos runner
correlates what was injected with what was detected.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.auditor import AuditReport, Divergence, TrapInvariantAuditor
from repro.faults.injector import MachineFaultInjector
from repro.faults.plan import FaultPlan


class FaultRunRecord:
    """One trap-driven run's injector + auditor, bound to its Tapeworm."""

    def __init__(self, plan: FaultPlan, tapeworm, trial_seed: int) -> None:
        self.plan = plan
        self.tapeworm = tapeworm
        self.trial_seed = trial_seed
        self.injector = MachineFaultInjector(tapeworm, plan, trial_seed)
        self.auditor = TrapInvariantAuditor(tapeworm)
        self.chunks = 0
        self.finished = False
        self.injector.arm()

    # the chunk tap installed by the runner
    def observe_chunk(self, tid: int, component, vas: np.ndarray) -> None:
        self.injector.on_chunk(tid, component, vas)
        self.chunks += 1
        cadence = self.plan.audit_every
        if cadence and self.chunks % cadence == 0:
            self.auditor.audit(chunk_index=self.chunks - 1)

    def finish(self) -> AuditReport:
        """Disarm the injector and run the final audit (idempotent)."""
        if not self.finished:
            self.finished = True
            self.injector.disarm()
            self.auditor.audit(chunk_index=self.chunks - 1, final=True)
        return self.auditor.reports[-1]

    # -- convenience views for reports and the chaos runner

    @property
    def reports(self) -> list[AuditReport]:
        return self.auditor.reports

    def divergences(self) -> list[Divergence]:
        return [d for report in self.reports for d in report.divergences]

    @property
    def first_divergence(self) -> Divergence | None:
        return self.auditor.first_divergence

    def publish(self, metrics) -> None:
        """Publish ``faults.*`` metrics into a telemetry registry."""
        for entry in self.injector.ledger:
            if entry.applied:
                metrics.counter(
                    "faults.injected", kind=entry.kind.value
                ).inc()
        checks = sum(report.checks for report in self.reports)
        if self.reports:
            metrics.counter("faults.audits").inc(len(self.reports))
        if checks:
            metrics.counter("faults.audit_checks").inc(checks)
        for divergence in self.divergences():
            metrics.counter(
                "faults.divergences", kind=divergence.kind
            ).inc()


class FaultSession:
    """Process-wide fault-injection state: the plan plus run records."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.runs: list[FaultRunRecord] = []

    def begin_run(self, tapeworm, trial_seed: int) -> FaultRunRecord:
        record = FaultRunRecord(self.plan, tapeworm, trial_seed)
        self.runs.append(record)
        return record

    @property
    def last_run(self) -> FaultRunRecord | None:
        return self.runs[-1] if self.runs else None


_active: FaultSession | None = None


def active() -> FaultSession | None:
    """The currently activated session, or None (faults disabled)."""
    return _active


def activate(plan: FaultPlan) -> FaultSession:
    global _active
    if _active is not None:
        raise FaultInjectionError("a fault session is already active")
    _active = FaultSession(plan)
    return _active


def deactivate() -> FaultSession:
    global _active
    if _active is None:
        raise FaultInjectionError("no fault session is active")
    session, _active = _active, None
    return session


@contextmanager
def enabled(plan: FaultPlan) -> Iterator[FaultSession]:
    """Scope fault injection over a block of simulation work."""
    session = activate(plan)
    try:
        yield session
    finally:
        deactivate()
