"""Experiment infrastructure: run workloads under either driver,
monitor them Monster-style, compute slowdowns, and aggregate trials."""

from repro.harness.slowdown import (
    cache2000_slowdown,
    normal_run_cycles,
    tapeworm_slowdown,
)
from repro.harness.monster import Monster
from repro.harness.runner import (
    RunOptions,
    TraceRunReport,
    run_trace_driven,
    run_trap_driven,
    run_warm_trials,
)
from repro.harness.experiment import TrialStats, run_trials, run_trials_farm
from repro.harness.tables import format_table

__all__ = [
    "normal_run_cycles",
    "tapeworm_slowdown",
    "cache2000_slowdown",
    "Monster",
    "RunOptions",
    "TraceRunReport",
    "run_trap_driven",
    "run_trace_driven",
    "run_warm_trials",
    "TrialStats",
    "run_trials",
    "run_trials_farm",
    "format_table",
]
