"""Multi-trial experiments and their statistics.

Trap-driven measurements vary from run to run (page allocation, set
sampling, OS jitter), so the paper reports each configuration over many
trials — Table 7 uses 16 — with mean, standard deviation, minimum,
maximum, and range, each also expressed relative to the mean.
:class:`TrialStats` reproduces exactly that presentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.farm.pool import Farm


@dataclass(frozen=True)
class TrialStats:
    """Summary statistics over one experiment's trials (Table 7 style)."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigError("TrialStats needs at least one trial")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def stdev(self) -> float:
        """Sample standard deviation (s in the paper's tables)."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.values) / (self.n - 1)
        )

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def value_range(self) -> float:
        return self.maximum - self.minimum

    # -- the parenthesized percentages of Tables 7-10

    def _pct(self, value: float) -> float:
        if self.mean == 0:
            return 0.0
        return 100.0 * value / self.mean

    @property
    def stdev_pct(self) -> float:
        """s as a percent of the mean."""
        return self._pct(self.stdev)

    @property
    def minimum_pct(self) -> float:
        """Percent difference of the minimum from the mean."""
        return self._pct(self.mean - self.minimum)

    @property
    def maximum_pct(self) -> float:
        """Percent difference of the maximum from the mean."""
        return self._pct(self.maximum - self.mean)

    @property
    def range_pct(self) -> float:
        return self._pct(self.value_range)

    def row(self) -> dict[str, float]:
        """A Table 7-shaped row."""
        return {
            "mean": self.mean,
            "s": self.stdev,
            "s_pct": self.stdev_pct,
            "min": self.minimum,
            "min_pct": self.minimum_pct,
            "max": self.maximum,
            "max_pct": self.maximum_pct,
            "range": self.value_range,
            "range_pct": self.range_pct,
        }


def _validate_trial_args(n_trials: int, base_seed: int) -> None:
    """Trial counts and seeds must be true integers — a float ``base_seed``
    would silently produce float seeds and un-keyable trials."""
    for name, value in (("n_trials", n_trials), ("base_seed", base_seed)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(
                f"{name} must be an integer, got {value!r} "
                f"({type(value).__name__})"
            )
    if n_trials <= 0:
        raise ConfigError(f"n_trials must be positive, got {n_trials}")


def run_trials(
    measure: Callable[[int], float],
    n_trials: int,
    base_seed: int = 0,
) -> TrialStats:
    """Run ``measure(seed)`` for ``n_trials`` distinct seeds."""
    _validate_trial_args(n_trials, base_seed)
    return TrialStats(
        values=tuple(measure(base_seed + trial) for trial in range(n_trials))
    )


def _precompile_streams(params: Mapping[str, Any]) -> None:
    """Materialize a job batch's streams into the store before fan-out.

    Every trial of a farmed experiment consumes the *same* reference
    streams (stream content is trial-seed independent), so compiling
    them once in the master — before any worker starts — turns each
    worker's stream construction into a memory map.  Best-effort: jobs
    whose params don't name a registered workload just compile worker-
    side, which is correct, merely colder.
    """
    from repro.streams.session import active as _streams

    session = _streams()
    if session is None:
        return
    workload = params.get("workload")
    total_refs = params.get("total_refs")
    if not isinstance(workload, str) or not isinstance(total_refs, int):
        return
    from repro.workloads.registry import get_workload

    try:
        spec = get_workload(workload)
    except Exception:
        return
    include_data = bool(params.get("include_data_refs", False))
    session.precompile(spec, total_refs, include_data)


def run_trials_farm(
    measure: str,
    params: Mapping[str, Any],
    n_trials: int,
    base_seed: int = 0,
    *,
    farm: "Farm",
) -> TrialStats:
    """Farm-backed :func:`run_trials`.

    ``measure`` names a registered measure (:mod:`repro.farm.registry`)
    and ``params`` its non-seed keyword arguments; the farm runs the
    ``base_seed + trial`` seed ladder through its cache and process
    pool.  Because each trial is independently seeded, the resulting
    :class:`TrialStats` is bit-for-bit identical to the serial path.

    With a stream session active, the batch's reference streams are
    precompiled into the store first, so workers map blobs instead of
    regenerating them (see :mod:`repro.streams`).
    """
    from repro.farm.jobs import Job

    _validate_trial_args(n_trials, base_seed)
    _precompile_streams(params)
    jobs = [
        Job(measure=measure, params=dict(params), seed=base_seed + trial)
        for trial in range(n_trials)
    ]
    return TrialStats(values=tuple(float(v) for v in farm.run_jobs(jobs)))


def stats_of(values: Sequence[float]) -> TrialStats:
    """Wrap already-collected trial values."""
    return TrialStats(values=tuple(values))
