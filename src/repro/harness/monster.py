"""A Monster-style hardware monitor.

The paper validates Tapeworm with "a hardware monitoring system, called
Monster, based on a DAS 9200 logic analyzer", which unobtrusively counts
instructions and attributes time to tasks (Table 4).  On the simulated
machine the same observations come from the CPU's per-component counters
— unobtrusive by construction, since reading them costs the simulated
machine nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import HOST_CLOCK_HZ, Component
from repro.kernel.kernel import Kernel
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class MonsterReading:
    """One workload's Table 4 row, as measured on the simulated machine."""

    workload: str
    instructions: int
    run_time_secs: float
    frac_kernel: float
    frac_bsd: float
    frac_x: float
    frac_user: float
    user_task_count: int


class Monster:
    """Reads instruction/cycle counters off a machine under test."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def instructions(self) -> int:
        return sum(self.kernel.machine.cpu.refs_by_component.values())

    def cycles(self) -> int:
        return sum(self.kernel.machine.cpu.cycles_by_component.values())

    def run_time_secs(self) -> float:
        return self.cycles() / HOST_CLOCK_HZ

    def component_fractions(self) -> dict[Component, float]:
        """Share of cycles spent in each component."""
        by_component = self.kernel.machine.cpu.cycles_by_component
        total = sum(by_component.values())
        if total == 0:
            return {c: 0.0 for c in Component}
        return {c: by_component[c] / total for c in Component}

    def reading(self, spec: WorkloadSpec) -> MonsterReading:
        fractions = self.component_fractions()
        return MonsterReading(
            workload=spec.name,
            instructions=self.instructions(),
            run_time_secs=self.run_time_secs(),
            frac_kernel=fractions[Component.KERNEL],
            frac_bsd=fractions[Component.BSD_SERVER],
            frac_x=fractions[Component.X_SERVER],
            frac_user=fractions[Component.USER],
            user_task_count=self.kernel.tasks.user_task_count(),
        )
