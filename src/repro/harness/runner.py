"""Run a workload under the trap-driven or trace-driven driver.

``run_trap_driven`` boots a fresh simulated DECstation, installs Tapeworm,
sets per-task attributes for the requested components (the shell gets the
paper's ``(simulate=0, inherit=1)`` so the whole fork tree is measured
without the shell itself), and then just *runs* the workload — traps do
the rest.

``run_trace_driven`` is the Pixie+Cache2000 path: no kernel, no machine —
only the primary user task's address stream, searched address by address.
Both drivers consume identical user streams, which the cross-validation
tests rely on.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.caches.pipeline import default_registry as _kernel_registry
from repro.caches.replacement import make_policy
from repro.core.report import TrapRunReport
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.errors import ConfigError
from repro.faults.session import active as _faults
from repro.harness.slowdown import (
    cache2000_slowdown,
    normal_run_cycles,
    tapeworm_slowdown,
)
from repro.kernel.kernel import COMPONENT_CPI, Kernel
from repro.kernel.scheduler import Demand, Scheduler, SlicePlanner
from repro.kernel.syscalls import SyscallInterface
from repro.kernel.task import Task
from repro.machine.cpu import ChunkResult
from repro.streams.keys import fingerprint_payload
from repro.streams.session import active as _streams
from repro.streams.snapshots import WarmupPlan
from repro.telemetry.session import active as _telemetry
from repro.tracing.cache2000 import Cache2000
from repro.tracing.pixie import PixieTracer
from repro.tracing.sampling import TraceSetSampler
from repro.workloads.base import SYSTEM_TASK_NAMES, WorkloadSpec
from repro.workloads.locality import MixedStream

ALL_COMPONENTS = frozenset(Component)


def _boot_kernel(options: "RunOptions") -> Kernel:
    machine = None
    if options.tick_cycles is not None:
        from repro.machine.machine import Machine, MachineConfig

        machine = Machine(MachineConfig(tick_cycles=options.tick_cycles))
    return Kernel(
        machine=machine,
        trial_seed=options.trial_seed,
        alloc_policy=options.alloc_policy,
        reserved_frames=options.reserved_frames,
    )


@dataclass(frozen=True)
class RunOptions:
    """Knobs for one trap-driven run."""

    total_refs: int = 2_000_000
    trial_seed: int = 0
    alloc_policy: str = "random"
    chunk_refs: int = 4096
    quantum_refs: int = 8192
    system_jitter: float = 0.25
    #: which components are simulated (registered with Tapeworm)
    simulate: frozenset[Component] = ALL_COMPONENTS
    #: interleave data references into the streams (TLB simulations)
    include_data_refs: bool = False
    reserved_frames: int = 64
    #: override the clock-interrupt period (None = the machine's 100 Hz
    #: default); a huge value disables dilation for controlled studies
    tick_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.total_refs <= 0 or self.chunk_refs <= 0:
            raise ConfigError("total_refs and chunk_refs must be positive")


class _WorkloadExecution:
    """Materializes a spec onto a booted kernel and runs its phases.

    ``chunk_tap``, when set, observes every executed chunk as
    ``(tid, component, vas)`` — the hook system-wide tracers use.

    The run loop keeps its cursor in plain attributes (phase index,
    current round of time slices, offset within the current slice)
    rather than nested loops' local state, so a run can stop after a
    warmup prefix, be deep-copied as a warm-state snapshot, and resume
    in each fork — see :func:`run_trap_driven`'s ``warmup`` parameter.
    """

    chunk_tap = None

    def __init__(
        self, spec: WorkloadSpec, kernel: Kernel, options: RunOptions
    ) -> None:
        self.spec = spec
        self.kernel = kernel
        self.options = options
        self.syscalls = SyscallInterface(kernel)
        self.shell = kernel.spawn("shell", Component.USER)
        self._streams: dict[str, object] = {}
        self._tasks: dict[str, Task] = {
            name: kernel.tasks.by_name(name)
            for name in SYSTEM_TASK_NAMES.values()
        }
        self._tasks["shell"] = self.shell
        self.totals = ChunkResult()
        # -- run-loop cursor (advanced by run(), captured by snapshots)
        self.scheduler = Scheduler(
            quantum_refs=options.quantum_refs,
            system_jitter=options.system_jitter,
            trial_rng=np.random.default_rng(options.trial_seed + 0xC0DE),
        )
        self.executed_refs = 0
        self.finished = False
        self._phase_index = 0
        self._planner: SlicePlanner | None = None
        self._round: list = []
        self._slice_index = 0
        self._slice_offset = 0

    def __deepcopy__(self, memo: dict) -> "_WorkloadExecution":
        # the spec is immutable shared configuration — forks alias it,
        # and compiled streams share their backing arrays through
        # CompiledStream.__deepcopy__; everything else (kernel, machine,
        # Tapeworm, cursors, RNGs) is copied for real
        memo[id(self.spec)] = self.spec
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        for name, value in self.__dict__.items():
            object.__setattr__(clone, name, copy.deepcopy(value, memo))
        return clone

    # -- attribute setup

    def apply_attributes(self) -> None:
        simulate = self.options.simulate
        tapeworm = self.kernel.tapeworm
        if tapeworm is None:
            return
        if Component.KERNEL in simulate:
            tapeworm.tw_attributes(0, simulate=1, inherit=0)
        if Component.BSD_SERVER in simulate:
            tapeworm.tw_attributes(
                self.kernel.bsd_server.tid, simulate=1, inherit=0
            )
        if Component.X_SERVER in simulate:
            tapeworm.tw_attributes(
                self.kernel.x_server.tid, simulate=1, inherit=0
            )
        if Component.USER in simulate:
            # the canonical shell setting: measure the whole fork tree,
            # exclude the shell itself
            tapeworm.tw_attributes(self.shell.tid, simulate=0, inherit=1)

    # -- stream and task plumbing

    def _stream_for(self, task_name: str):
        stream = self._streams.get(task_name)
        if stream is None:
            session = _streams()
            if session is not None:
                stream = session.stream_for(
                    self.spec,
                    task_name,
                    self.options.total_refs,
                    self.options.include_data_refs,
                )
            else:
                task_spec = self.spec.task(task_name)
                instr = task_spec.build_stream(self.spec.name)
                if self.options.include_data_refs:
                    data = task_spec.build_data_stream(self.spec.name)
                    stream = MixedStream(instr, data) if data else instr
                else:
                    stream = instr
            self._streams[task_name] = stream
        return stream

    def _fork(self, task_name: str) -> None:
        task_spec = self.spec.task(task_name)
        parent_name = task_spec.parent or "shell"
        parent = self._tasks[parent_name]
        task = self.kernel.fork(
            parent.tid, task_name, layout=task_spec.layout()
        )
        self._tasks[task_name] = task

    def _exit(self, task_name: str) -> None:
        task = self._tasks.pop(task_name)
        self.kernel.exit_task(task.tid)
        self._streams.pop(task_name, None)

    # -- the run loop

    def _demands_for(self, phase) -> list[Demand]:
        # spec demands are Table 4 *time* fractions; divide by CPI to
        # get reference weights so measured time fractions match
        demands = []
        for d in phase.demands:
            component = (
                Component.USER
                if d.task_name == "shell"
                else self.spec.task(d.task_name).component
            )
            demands.append(
                Demand(
                    d.task_name,
                    component,
                    d.weight / COMPONENT_CPI[component],
                )
            )
        return demands

    def reseed_for_measurement(self, trial_seed: int) -> None:
        """Re-arm every per-trial variance source at a snapshot fork.

        The warmup prefix ran under the shared plan seed; from here on
        this fork must vary exactly as an independent trial would:
        scheduler jitter, the system-jitter RNG, and the order the
        remaining free frames will be allocated in.
        """
        self.scheduler.trial_rng = np.random.default_rng(trial_seed + 0xC0DE)
        self.kernel.system_jitter_rng = np.random.default_rng(
            trial_seed + 0x5EED
        )
        self.kernel.vm.reshuffle_free_frames(trial_seed)

    def run(self, stop_after_refs: int | None = None) -> None:
        """Execute the workload's phases; resumable.

        With ``stop_after_refs`` the loop returns at the first chunk
        boundary at or past that many executed references, leaving the
        cursor intact — a later ``run()`` call continues exactly where
        this one stopped.  Chunks are never split at the stop point, so
        a stop-and-resume run issues the identical chunk sequence a
        straight-through run does (chunk boundaries can matter to
        interrupt delivery, so this is load-bearing for bit-identity).
        """
        options = self.options
        while not self.finished:
            if (
                stop_after_refs is not None
                and self.executed_refs >= stop_after_refs
            ):
                return
            if self._planner is None:
                if self._phase_index >= len(self.spec.phases):
                    self.finished = True
                    return
                phase = self.spec.phases[self._phase_index]
                for task_name in phase.forks:
                    self._fork(task_name)
                phase_refs = int(round(options.total_refs * phase.weight))
                self._planner = self.scheduler.planner(
                    self._demands_for(phase), phase_refs
                )
                self._round = []
                self._slice_index = 0
                self._slice_offset = 0
            if self._slice_index >= len(self._round):
                if self._planner.exhausted():
                    for task_name in self.spec.phases[self._phase_index].exits:
                        self._exit(task_name)
                    self._phase_index += 1
                    self._planner = None
                    continue
                self._round = self._planner.next_round()
                self._slice_index = 0
                self._slice_offset = 0
                continue
            time_slice = self._round[self._slice_index]
            task = self._tasks[time_slice.task_name]
            stream = self._stream_for(time_slice.task_name)
            n = min(
                options.chunk_refs, time_slice.n_refs - self._slice_offset
            )
            vas = stream.next_chunk(n)
            result = self.kernel.run_chunk(task, vas)
            self.totals.merge(result)
            if self.chunk_tap is not None:
                self.chunk_tap(task.tid, task.component, vas)
            self._slice_offset += n
            self.executed_refs += n
            if self._slice_offset >= time_slice.n_refs:
                self._slice_index += 1
                self._slice_offset = 0


def run_uninstrumented(
    spec: WorkloadSpec,
    options: RunOptions | None = None,
) -> Kernel:
    """Run a workload with no Tapeworm installed (a 'normal' run).

    Returns the kernel so a Monster monitor can read the machine's
    counters — how Table 4 was measured.
    """
    options = options or RunOptions()
    kernel = _boot_kernel(options)
    execution = _WorkloadExecution(spec, kernel, options)
    execution.run()
    session = _telemetry()
    if session is not None:
        kernel.publish_metrics(session.metrics)
        _kernel_registry().publish_metrics(session.metrics)
    return kernel


def run_system_trace_driven(
    spec: WorkloadSpec,
    cache_config: CacheConfig,
    options: RunOptions | None = None,
    buffer_refs: int = 256 * 1024,
):
    """One Mogul/Chen-style system-wide trace-driven run.

    The workload executes on a booted kernel (no Tapeworm); an
    annotation tap buffers every reference from every component, and
    Cache2000 drains the buffer whenever it fills.  Returns a
    :class:`~repro.tracing.systrace.SystemTraceReport` whose slowdown
    is computed like the other drivers'.
    """
    from repro.tracing.systrace import SystemTracer

    options = options or RunOptions()
    kernel = _boot_kernel(options)
    execution = _WorkloadExecution(spec, kernel, options)
    tracer = SystemTracer(cache_config, buffer_refs=buffer_refs)
    execution.chunk_tap = tracer.tap
    execution.run()
    tracer.finish()
    session = _telemetry()
    if session is not None:
        kernel.publish_metrics(session.metrics)
        tracer.simulator.publish_metrics(session.metrics)
        _kernel_registry().publish_metrics(session.metrics)
    report = tracer.report(spec.name)
    report.slowdown = (
        report.overhead_cycles
        / normal_run_cycles(spec, options.total_refs)
    )
    return report


def _boot_execution(
    spec: WorkloadSpec, tw_config: TapewormConfig, options: RunOptions
) -> _WorkloadExecution:
    """Boot a kernel, install Tapeworm, materialize the workload."""
    kernel = _boot_kernel(options)
    tapeworm = Tapeworm(kernel, tw_config)
    tapeworm.install()
    return _WorkloadExecution(spec, kernel, options)


def _finish_trap_report(
    spec: WorkloadSpec,
    execution: _WorkloadExecution,
    tw_config: TapewormConfig,
    trial_seed: int,
    fault_run=None,
) -> TrapRunReport:
    """Assemble the report (and publish telemetry) for a finished run."""
    kernel = execution.kernel
    tapeworm = kernel.tapeworm
    cpu = kernel.machine.cpu
    stats = tapeworm.snapshot_stats()
    for component in Component:
        stats.refs[component] = cpu.refs_by_component[component]
    stats.masked_misses = execution.totals.masked_traps
    report = TrapRunReport(
        workload=spec.name,
        configuration=_describe(tw_config),
        trial_seed=trial_seed,
        stats=stats,
        estimated_misses=tapeworm.estimated_total_misses(),
        base_cycles=sum(cpu.cycles_by_component.values()),
        overhead_cycles=tapeworm.overhead_cycles,
        traps=execution.totals.traps,
        masked_traps=execution.totals.masked_traps,
        page_faults=execution.totals.page_faults,
        ticks=kernel.machine.clock.ticks_delivered,
        sampling=tw_config.sampling,
        refs=dict(cpu.refs_by_component),
        scale_factor=spec.scale_factor(execution.options.total_refs),
    )
    report.slowdown = tapeworm_slowdown(
        report.overhead_cycles, spec, execution.options.total_refs
    )
    session = _telemetry()
    if session is not None:
        kernel.publish_metrics(session.metrics)
        tapeworm.publish_metrics(session.metrics)
        if fault_run is not None:
            fault_run.publish(session.metrics)
        stream_session = _streams()
        if stream_session is not None:
            stream_session.publish_metrics(session.metrics)
        _kernel_registry().publish_metrics(session.metrics)
    return report


def run_trap_driven(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    options: RunOptions | None = None,
    warmup: WarmupPlan | None = None,
) -> TrapRunReport:
    """One complete trap-driven simulation of a workload.

    With a ``warmup`` plan, the first ``warmup_refs`` references execute
    under the plan's shared seed and — when a stream session is active
    and no fault session is — the warmed state is snapshotted once per
    configuration, so subsequent trials fork the snapshot instead of
    re-simulating the prefix.  Forked or replayed, the results are
    bit-identical (``tests/streams/test_snapshots.py``).
    """
    options = options or RunOptions()
    if warmup is not None:
        return _run_trap_driven_warm(spec, tw_config, options, warmup)
    execution = _boot_execution(spec, tw_config, options)
    fault_session = _faults()
    fault_run = None
    if fault_session is not None:
        fault_run = fault_session.begin_run(
            execution.kernel.tapeworm, options.trial_seed
        )
        execution.chunk_tap = fault_run.observe_chunk
    try:
        execution.apply_attributes()
        execution.run()
    finally:
        # the final audit still runs when a DoubleBitError aborts the
        # workload: an injected fault must never exit unexamined
        if fault_run is not None:
            fault_run.finish()
    return _finish_trap_report(
        spec, execution, tw_config, options.trial_seed, fault_run=fault_run
    )


def _warm_snapshot_key(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    warm_options: RunOptions,
    warmup: WarmupPlan,
) -> str:
    """Identity of one warmed state: everything that shaped the prefix.

    ``warm_options`` carries the plan seed in ``trial_seed``, so the
    measurement trial's own seed is deliberately absent — that is what
    makes the snapshot shareable across trials.  The Tapeworm config
    (including its sampling seed) is folded in whole: a sampled
    configuration's trap pattern is fixed at install time, so trials
    sharing a snapshot share it by construction.
    """
    return fingerprint_payload(
        {
            "kind": "warm-snapshot",
            "workload": spec.name,
            "tapeworm": tw_config,
            "options": warm_options,
            "warmup": warmup,
        }
    )


def _run_trap_driven_warm(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    options: RunOptions,
    warmup: WarmupPlan,
) -> TrapRunReport:
    if warmup.warmup_refs >= options.total_refs:
        raise ConfigError(
            f"warmup_refs ({warmup.warmup_refs}) must be smaller than "
            f"total_refs ({options.total_refs})"
        )
    warm_options = replace(options, trial_seed=warmup.warmup_seed)
    stream_session = _streams()
    fault_session = _faults()
    if stream_session is not None and fault_session is None:
        key = _warm_snapshot_key(spec, tw_config, warm_options, warmup)
        execution = stream_session.snapshots.fork(key)
        if execution is None:
            warmed = _boot_execution(spec, tw_config, warm_options)
            warmed.apply_attributes()
            warmed.run(stop_after_refs=warmup.warmup_refs)
            stream_session.snapshots.put(key, warmed)
            execution = stream_session.snapshots.fork(key)
        execution.reseed_for_measurement(options.trial_seed)
        execution.run()
        return _finish_trap_report(
            spec, execution, tw_config, options.trial_seed
        )
    # Bypass: no stream session, or fault injection is active — injected
    # faults mutate warmed state, so sharing a snapshot would leak one
    # trial's damage into the others.  Replay the prefix fresh instead;
    # semantics (warmup under the plan seed, reseed at the fork point)
    # are identical, only the amortization is lost.
    if stream_session is not None:
        stream_session.snapshots.bypassed += 1
    execution = _boot_execution(spec, tw_config, warm_options)
    fault_run = None
    if fault_session is not None:
        fault_run = fault_session.begin_run(
            execution.kernel.tapeworm, options.trial_seed
        )
        execution.chunk_tap = fault_run.observe_chunk
    try:
        execution.apply_attributes()
        execution.run(stop_after_refs=warmup.warmup_refs)
        execution.reseed_for_measurement(options.trial_seed)
        execution.run()
    finally:
        if fault_run is not None:
            fault_run.finish()
    return _finish_trap_report(
        spec, execution, tw_config, options.trial_seed, fault_run=fault_run
    )


def run_warm_trials(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    options: RunOptions,
    warmup: WarmupPlan,
    n_trials: int,
    base_seed: int = 0,
) -> list[TrapRunReport]:
    """N measurement trials sharing one warmed prefix."""
    return [
        run_trap_driven(
            spec,
            tw_config,
            replace(options, trial_seed=base_seed + trial),
            warmup=warmup,
        )
        for trial in range(n_trials)
    ]


def _describe(config: TapewormConfig) -> str:
    if config.structure == "tlb":
        base = config.tlb.describe()
    elif config.structure == "two_level":
        base = f"{config.cache.describe()} + L2 {config.l2.describe()}"
    else:
        base = config.cache.describe()
    if config.sampling > 1:
        base += f", 1/{config.sampling} sampling"
    return base


@dataclass
class TraceRunReport:
    """Results of one Pixie+Cache2000 run."""

    workload: str
    configuration: str
    misses: int = 0
    refs_simulated: int = 0
    refs_traced: int = 0
    generation_cycles: int = 0
    filter_cycles: int = 0
    processing_cycles: int = 0
    slowdown: float = 0.0
    sampling: int = 1

    @property
    def overhead_cycles(self) -> int:
        return self.generation_cycles + self.filter_cycles + self.processing_cycles

    @property
    def miss_ratio(self) -> float:
        """Misses per traced user reference (Figure 2's convention)."""
        if self.refs_traced == 0:
            return 0.0
        return self.misses * self.sampling / self.refs_traced

    @property
    def estimated_misses(self) -> float:
        return self.misses * self.sampling


def run_trace_driven(
    spec: WorkloadSpec,
    cache_config: CacheConfig,
    user_refs: int,
    sampling: int = 1,
    sampling_seed: int = 0,
    replacement: str = "lru",
    chunk_refs: int = 65536,
    force_general_path: bool = False,
) -> TraceRunReport:
    """One Pixie+Cache2000 simulation of a workload's primary user task."""
    tracer = PixieTracer(spec, chunk_refs=chunk_refs)
    simulator = Cache2000(
        cache_config,
        policy=make_policy(replacement),
        force_general_path=force_general_path,
    )
    sampler = (
        TraceSetSampler(cache_config, sampling, seed=sampling_seed)
        if sampling > 1
        else None
    )
    for chunk in tracer.trace_chunks(user_refs):
        addresses = chunk.addresses
        if sampler is not None:
            addresses = sampler.filter_chunk(addresses)
        simulator.simulate_chunk(addresses, tid=chunk.tid, component=chunk.component)

    session = _telemetry()
    if session is not None:
        simulator.publish_metrics(session.metrics)
        stream_session = _streams()
        if stream_session is not None:
            stream_session.publish_metrics(session.metrics)
        _kernel_registry().publish_metrics(session.metrics)

    report = TraceRunReport(
        workload=spec.name,
        configuration=cache_config.describe()
        + (f", 1/{sampling} sampling" if sampling > 1 else ""),
        misses=simulator.stats.total_misses,
        refs_simulated=simulator.stats.total_refs,
        refs_traced=tracer.refs_traced,
        generation_cycles=tracer.generation_cycles,
        filter_cycles=sampler.preprocessing_cycles if sampler else 0,
        processing_cycles=simulator.processing_cycles,
        sampling=sampling,
    )
    report.slowdown = cache2000_slowdown(
        report.overhead_cycles, spec, user_refs
    )
    return report
