"""Slowdown computation, following the paper's definition:

    Slowdown = Overhead / Normal Workload Run Time

*Overhead* is the time added by Tapeworm (trap handling) or by
Pixie+Cache2000 (trace generation, filtering and processing); the
denominator is the uninstrumented run — including every component's time,
which is why Figure 2's Tapeworm slowdowns stay below the naive
"miss ratio × handler cost" estimate (the simulated task is under half of
mpeg_play's wall clock).
"""

from __future__ import annotations

from repro.kernel.kernel import COMPONENT_CPI
from repro._types import Component
from repro.workloads.base import WorkloadSpec


def normal_run_cycles(spec: WorkloadSpec, total_refs: int) -> float:
    """Cycles of an uninstrumented run of ``total_refs`` references,
    split across components by the Table 4 fractions."""
    weights = spec.component_weights()
    return sum(
        total_refs * weights[component] * COMPONENT_CPI[component]
        for component in Component
    )


def tapeworm_slowdown(
    overhead_cycles: float, spec: WorkloadSpec, total_refs: int
) -> float:
    """Trap-driven slowdown over a run of ``total_refs`` references."""
    return overhead_cycles / normal_run_cycles(spec, total_refs)


def cache2000_slowdown(
    overhead_cycles: float, spec: WorkloadSpec, user_refs: int
) -> float:
    """Trace-driven slowdown, normalized like the paper's Figure 2.

    Pixie traces only the user task, but "slowdowns in both cases were
    computed using the total wall-clock run time for the workload" — so
    the denominator is the full-workload run in which the user task
    executed ``user_refs`` references.
    """
    frac_user = spec.meta.frac_user
    total_equiv = user_refs / frac_user if frac_user > 0 else user_refs
    return overhead_cycles / normal_run_cycles(spec, int(total_equiv))
