"""Plain-text table formatting for the experiment reports.

Every benchmark prints its reproduction of a paper table/figure in a
layout close to the original, so results can be eyeballed against the
paper directly.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object, precision: int = 3) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned monospace table."""
    rendered = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered), 1)
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def pct(value: float) -> str:
    """Render a percentage the way the paper's tables do: (42%)."""
    return f"({value:.0f}%)"
