"""The simulated Mach-like operating system kernel.

Tapeworm "resides in an OS kernel and causes a host machine's hardware to
drive simulations with kernel traps."  This package is that kernel: tasks
with fork trees and per-task Tapeworm attributes, a round-robin scheduler,
a VM system whose page-allocation policy is the paper's main source of
run-to-run variance, the BSD/X server system tasks, and the trap plumbing
that routes hardware events to Tapeworm.
"""

from repro.kernel.task import Task, TaskState, TaskTable
from repro.kernel.vm import AddressSpaceLayout, Region, VMSystem
from repro.kernel.scheduler import Scheduler, TimeSlice
from repro.kernel.servers import bsd_server_layout, x_server_layout
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import SyscallInterface

__all__ = [
    "Task",
    "TaskState",
    "TaskTable",
    "Region",
    "AddressSpaceLayout",
    "VMSystem",
    "Scheduler",
    "TimeSlice",
    "bsd_server_layout",
    "x_server_layout",
    "Kernel",
    "SyscallInterface",
]
