"""The kernel facade: boot, task lifecycle, trap plumbing, clock ticks.

This object owns the machine and stands where Mach 3.0 stood in the
paper: it fields page faults (telling Tapeworm about new pages), runs the
clock-interrupt handler whose cache pollution causes time dilation bias,
and masks interrupts while doing so (hiding kernel ECC traps — the
paper's final source of measurement bias).
"""

from __future__ import annotations

import numpy as np

from repro._types import KERNEL_TID, WORD_SIZE, Component
from repro.errors import KernelError
from repro.kernel.servers import bsd_server_layout, kernel_layout, x_server_layout
from repro.kernel.task import Task, TaskTable
from repro.kernel.vm import AddressSpaceLayout, VMSystem
from repro.machine.cpu import ChunkResult, ExecContext
from repro.machine.machine import Machine, MachineConfig

#: Stall-inclusive cycles per instruction, per component.  Calibrated so
#: the paper's own numbers reconcile: mpeg_play's user task takes 44.6%
#: of wall-clock time (Table 4) and its Figure 2 slowdowns imply about
#: 0.25 user references per total cycle — both hold with user code at
#: ~1.8 CPI on the 25 MHz DECstation, with kernel and server paths
#: stalling somewhat more.
COMPONENT_CPI = {
    Component.USER: 1.8,
    Component.BSD_SERVER: 2.0,
    Component.X_SERVER: 2.0,
    Component.KERNEL: 2.2,
}

#: The clock-interrupt handler's instruction footprint: one 4 KB pass
#: per tick.  Roughly 1000 instructions per tick at a 100 Hz clock
#: matches the scale of a Mach hardclock+softclock+callout path, and a
#: footprint spanning the paper's 4 KB experimental cache yields
#: Figure 4's dilation-error magnitudes.
INTERRUPT_BURST_BYTES = 4096
INTERRUPT_BURST_PASSES = 1

#: Only the hardclock prologue runs with interrupts masked; softclock and
#: the rest of the tick path run unmasked.  The paper: "only a very small
#: fraction of kernel code is affected" by the interrupt-mask bias.
INTERRUPT_MASKED_BYTES = 256


class Kernel:
    """A booted simulated system: machine + tasks + VM + servers."""

    def __init__(
        self,
        machine: Machine | None = None,
        alloc_policy: str = "random",
        trial_seed: int = 0,
        reserved_frames: int = 64,
        system_jitter_rng: np.random.Generator | None = None,
    ) -> None:
        self.machine = machine or Machine(MachineConfig())
        self.trial_seed = trial_seed
        self.tasks = TaskTable()
        self.vm = VMSystem(
            self.machine,
            alloc_policy=alloc_policy,
            trial_seed=trial_seed,
            reserved_frames=reserved_frames,
        )
        self.system_jitter_rng = system_jitter_rng or np.random.default_rng(
            trial_seed + 0x5EED
        )
        #: set by Tapeworm when it installs itself
        self.tapeworm = None

        # -- boot: the kernel task itself, then the system servers
        kernel_task = self.tasks.create("mach_kernel", Component.KERNEL)
        assert kernel_task.tid == KERNEL_TID
        self.vm.attach_task(KERNEL_TID, kernel_layout())
        self.bsd_server = self.spawn(
            "bsd_server", Component.BSD_SERVER, layout=bsd_server_layout()
        )
        self.x_server = self.spawn(
            "x_server", Component.X_SERVER, layout=x_server_layout()
        )

        self.machine.install_page_fault_handler(self._page_fault)
        self.machine.install_tick_handler(self._clock_tick)
        self._masked_burst, self._open_burst = self._build_interrupt_bursts()
        self.tick_results = ChunkResult()

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------

    def spawn(
        self,
        name: str,
        component: Component,
        parent_tid: int | None = None,
        layout: AddressSpaceLayout | None = None,
    ) -> Task:
        """Create a task; with a parent this is a fork, and the child
        inherits Tapeworm attributes by the paper's rule."""
        task = self.tasks.create(name, component, parent_tid=parent_tid)
        self.vm.attach_task(task.tid, layout or AddressSpaceLayout())
        return task

    def fork(self, parent_tid: int, name: str, layout: AddressSpaceLayout | None = None) -> Task:
        parent = self.tasks.get(parent_tid)
        return self.spawn(name, parent.component, parent_tid=parent_tid, layout=layout)

    def exit_task(self, tid: int) -> None:
        """Terminate a task: every page is unmapped, which drives
        ``tw_remove_page`` for each (flushing the simulated cache)."""
        if tid == KERNEL_TID:
            raise KernelError("cannot exit the kernel task")
        self.tasks.exit(tid)
        self.vm.detach_task(tid)
        self.machine.hw_tlb.flush_asid(tid)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def context_for(self, task: Task) -> ExecContext:
        return ExecContext(
            tid=task.tid,
            component=task.component,
            cpi=COMPONENT_CPI[task.component],
        )

    def run_chunk(
        self,
        task: Task,
        vas: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> ChunkResult:
        return self.machine.cpu.run_chunk(
            self.context_for(task), vas, writes=writes
        )

    # ------------------------------------------------------------------
    # trap plumbing
    # ------------------------------------------------------------------

    def _page_fault(self, ctx: ExecContext, vpn: int) -> None:
        self.vm.fault(ctx.tid, vpn)

    def _build_interrupt_bursts(self) -> tuple[np.ndarray, np.ndarray]:
        region = kernel_layout().region_named("interrupt")
        masked = np.arange(
            region.start_va,
            region.start_va + INTERRUPT_MASKED_BYTES,
            WORD_SIZE,
            dtype=np.int64,
        )
        body = np.arange(
            region.start_va + INTERRUPT_MASKED_BYTES,
            region.start_va + INTERRUPT_BURST_BYTES,
            WORD_SIZE,
            dtype=np.int64,
        )
        return masked, np.tile(body, INTERRUPT_BURST_PASSES)

    def _clock_tick(self, ticks: int) -> ChunkResult:
        """Run the clock-interrupt handler ``ticks`` times.

        The hardclock prologue executes with interrupts masked, so any
        ECC traps its references would raise are *lost* — the
        kernel-reference measurement bias of section 4.2.  The larger
        softclock body runs unmasked; its cache pollution is what turns
        extra ticks into extra misses (time dilation, Figure 4).
        """
        kernel_task = self.tasks.get(KERNEL_TID)
        ctx = self.context_for(kernel_task)
        total = ChunkResult()
        for _ in range(ticks):
            self.machine.mask_interrupts()
            try:
                total.merge(self.machine.cpu.run_chunk(ctx, self._masked_burst))
            finally:
                self.machine.unmask_interrupts()
            total.merge(self.machine.cpu.run_chunk(ctx, self._open_burst))
        self.tick_results.merge(total)
        return total

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def publish_metrics(self, metrics) -> None:
        """Publish machine totals plus kernel-level counters into a
        metrics registry (``machine.*`` and ``kernel.*`` namespaces)."""
        self.machine.publish_metrics(metrics)
        metrics.gauge("kernel.tasks.user").set(self.tasks.user_task_count())
        ticks = self.tick_results
        if ticks.n_refs:
            metrics.counter("kernel.interrupt.refs").inc(ticks.n_refs)
            metrics.counter("kernel.interrupt.cycles").inc(
                ticks.base_cycles + ticks.sim_cycles
            )
        if ticks.masked_traps:
            metrics.counter("kernel.interrupt.masked_traps").inc(
                ticks.masked_traps
            )
