"""Round-robin time-slicing of workload components.

The kernel interleaves the user tasks, the servers, and kernel-mode
execution in weighted round-robin quanta.  Two details matter to the
paper's variance study (Tables 7–10):

* **User quanta are deterministic** — a workload's user-task reference
  sequence is identical from run to run, which is why a virtually-indexed,
  unsampled, user-only simulation shows *zero* variance (Tables 8, 9).
* **System quanta carry trial-seeded jitter** — interrupt arrival and
  server scheduling shift slightly between runs, the residual "dynamic
  system effects" that leave small variance even in Table 10's
  variation-removed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._types import Component
from repro.errors import ConfigError


@dataclass(frozen=True)
class Demand:
    """One runnable entity's share of execution within a phase."""

    task_name: str
    component: Component
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ConfigError(f"negative weight for {self.task_name!r}")


@dataclass(frozen=True)
class TimeSlice:
    """A scheduling decision: run this task for this many references."""

    task_name: str
    component: Component
    n_refs: int


class Scheduler:
    """Weighted round-robin quantum scheduler."""

    def __init__(
        self,
        quantum_refs: int = 8192,
        system_jitter: float = 0.25,
        trial_rng: np.random.Generator | None = None,
    ) -> None:
        if quantum_refs <= 0:
            raise ConfigError(f"quantum_refs must be positive: {quantum_refs}")
        if not 0 <= system_jitter < 1:
            raise ConfigError(f"system_jitter must be in [0, 1): {system_jitter}")
        self.quantum_refs = quantum_refs
        self.system_jitter = system_jitter
        self.trial_rng = trial_rng or np.random.default_rng(0)

    def planner(
        self, demands: list[Demand], total_refs: int
    ) -> "SlicePlanner":
        """A stepwise planner for one phase (see :class:`SlicePlanner`)."""
        return SlicePlanner(self, demands, total_refs)

    def interleave(
        self, demands: list[Demand], total_refs: int
    ) -> Iterator[TimeSlice]:
        """Yield slices for one phase of roughly ``total_refs`` references.

        Each round grants every demand ``quantum * weight`` references;
        system components additionally get a ±``system_jitter`` relative
        perturbation from the trial RNG.  The phase is driven by *user*
        progress: it ends once the USER demands have received exactly
        their weighted share of ``total_refs``.  User grants carry no
        jitter and their rounding remainders accrue, so a workload's user
        reference sequence is bit-identical across trials — only the
        system interleaving varies.  (With no user demand, the phase is
        driven by total progress instead.)
        """
        planner = SlicePlanner(self, demands, total_refs)
        while not planner.exhausted():
            yield from planner.next_round()


class SlicePlanner:
    """One phase's schedule, materialized round by round.

    Equivalent to :meth:`Scheduler.interleave` — the generator is now a
    thin wrapper over this — but holds its cursor in plain attributes
    instead of a suspended generator frame, so an in-progress schedule
    can be deep-copied.  Warm-state snapshots rely on that: a generator
    cannot be copied, a planner can.

    Rounds are produced one at a time (never materialized wholesale), so
    re-seeding the scheduler's ``trial_rng`` between rounds — what the
    harness does at a snapshot fork point — affects every subsequent
    round's jitter exactly as it would have mid-``interleave``.
    """

    def __init__(
        self, scheduler: Scheduler, demands: list[Demand], total_refs: int
    ) -> None:
        if total_refs < 0:
            raise ConfigError(f"total_refs must be non-negative: {total_refs}")
        weights = sum(d.weight for d in demands)
        if weights <= 0:
            raise ConfigError("demand weights must sum to a positive value")
        user_weight = sum(
            d.weight for d in demands if d.component is Component.USER
        )
        self.scheduler = scheduler
        self.demands = list(demands)
        self.weights = weights
        self.drive_by_user = user_weight > 0
        self.target = (
            int(round(total_refs * user_weight / weights))
            if self.drive_by_user
            else total_refs
        )
        self.progress = 0
        self.remainders = [0.0] * len(demands)

    def exhausted(self) -> bool:
        return self.progress >= self.target

    def next_round(self) -> list[TimeSlice]:
        """One weighted round-robin pass over the demands."""
        if self.exhausted():
            return []
        scheduler = self.scheduler
        slices: list[TimeSlice] = []
        for index, demand in enumerate(self.demands):
            is_user = demand.component is Component.USER
            counts = is_user if self.drive_by_user else True
            if self.progress >= self.target and counts:
                break
            exact = scheduler.quantum_refs * demand.weight / self.weights
            exact += self.remainders[index]
            grant = int(exact)
            if demand.component.is_system and scheduler.system_jitter:
                # jitter shifts *when* system references run, not how
                # many: the remainder repays the perturbation, so
                # cumulative system totals stay on target
                scale = 1.0 + scheduler.system_jitter * (
                    2.0 * scheduler.trial_rng.random() - 1.0
                )
                grant = int(grant * scale)
            self.remainders[index] = exact - grant
            if counts:
                grant = min(grant, self.target - self.progress)
            if grant <= 0:
                continue
            if counts:
                self.progress += grant
            slices.append(
                TimeSlice(demand.task_name, demand.component, grant)
            )
        return slices
