"""Address-space layouts of the system server tasks.

On the paper's Mach 3.0 system, UNIX services live in a user-level BSD
server and display services in the X server; both "exist prior to the
initiation of a workload" and contribute a large share of total cache
misses (Table 6).  Their text segments are shared machine-wide — a second
simulation of the same boot reuses the same frames — which exercises
Tapeworm's shared-page reference counting.

Region sizes are calibration constants: active server text footprints on
the order of a few hundred kilobytes produce the server miss-ratio bands
of Table 6 in small caches.
"""

from __future__ import annotations

from repro.kernel.vm import AddressSpaceLayout, Region

#: virtual page numbers are allocated per-task, so layouts may reuse them
_TEXT_START_VPN = 16
_DATA_START_VPN = 1024


def bsd_server_layout() -> AddressSpaceLayout:
    """The user-level BSD UNIX server (version uk38 in the paper)."""
    return AddressSpaceLayout(
        regions=(
            Region(
                name="text",
                start_vpn=_TEXT_START_VPN,
                n_pages=96,  # 384 KB of server code
                share_key="bsd_server_text",
            ),
            Region(name="data", start_vpn=_DATA_START_VPN, n_pages=64),
        )
    )


def x_server_layout() -> AddressSpaceLayout:
    """The DECstation X display server (X11R5 in the paper)."""
    return AddressSpaceLayout(
        regions=(
            Region(
                name="text",
                start_vpn=_TEXT_START_VPN,
                n_pages=64,  # 256 KB of server code
                share_key="x_server_text",
            ),
            Region(name="data", start_vpn=_DATA_START_VPN, n_pages=48),
        )
    )


def kernel_layout() -> AddressSpaceLayout:
    """The Mach kernel's own address space.

    The ``interrupt`` region holds the clock-interrupt handler: the code
    that runs once per tick, pollutes the cache, and produces the time
    dilation bias of Figure 4.  It is mapped separately so experiments can
    reason about its footprint.
    """
    return AddressSpaceLayout(
        regions=(
            Region(
                name="text",
                start_vpn=_TEXT_START_VPN,
                n_pages=64,  # 256 KB of kernel code
                share_key="kernel_text",
            ),
            Region(
                name="interrupt",
                start_vpn=_TEXT_START_VPN + 64,
                n_pages=1,
                share_key="kernel_interrupt_text",
            ),
            Region(name="data", start_vpn=_DATA_START_VPN, n_pages=64),
        )
    )
