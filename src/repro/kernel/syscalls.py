"""The user-level control interface to Tapeworm.

Table 11 shows that 82% of Tapeworm is machine-independent *user* code:
"only a minimal amount of code actually runs in the kernel, controlled
through a system call interface by a user-level X application."  This
module is that system-call boundary — the only sanctioned way for
experiment code (the analogue of the user-level application) to steer the
in-kernel simulator.
"""

from __future__ import annotations

from repro._types import Component
from repro.errors import TapewormError
from repro.kernel.kernel import Kernel
from repro.kernel.task import Task


class SyscallInterface:
    """System calls exposed to the user-level control application."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def _tapeworm(self):
        tapeworm = self.kernel.tapeworm
        if tapeworm is None:
            raise TapewormError("Tapeworm is not installed in this kernel")
        return tapeworm

    # -- Tapeworm control (Table 1's tw_attributes, plus result readout)

    def tw_attributes(self, tid: int, simulate: int, inherit: int) -> None:
        """Assign the (simulate, inherit) pair to a task.

        ``tid`` 0 names the kernel itself, as in the paper.  When
        ``simulate`` turns on for a task with pages already mapped, those
        pages are registered immediately; when it turns off, they are
        removed from the Tapeworm domain.
        """
        self._tapeworm().tw_attributes(tid, simulate, inherit)

    def tw_read_stats(self):
        """Fetch the simulator's miss counters (a copy)."""
        return self._tapeworm().snapshot_stats()

    def tw_reset_stats(self) -> None:
        self._tapeworm().reset_stats()

    # -- ordinary process-management calls used by example applications

    def fork(self, parent_tid: int, name: str, layout=None) -> Task:
        return self.kernel.fork(parent_tid, name, layout=layout)

    def spawn_shell(self, name: str = "shell") -> Task:
        """Create a login-shell task (the customary tw_attributes target:
        simulate=0, inherit=1 measures everything started from it)."""
        return self.kernel.spawn(name, Component.USER)

    def exit(self, tid: int) -> None:
        self.kernel.exit_task(tid)
