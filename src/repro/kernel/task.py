"""Tasks, fork trees, and Tapeworm attribute inheritance.

The paper stores two Tapeworm attributes "in an extended version of the
OS task data structure":

* ``simulate`` — non-zero registers all of the task's current and future
  pages with Tapeworm;
* ``inherit`` — the initial value of ``simulate`` for the task's children.

After a fork::

    child.simulate <- parent.inherit
    child.inherit  <- parent.inherit

Setting ``(simulate=0, inherit=1)`` on a shell therefore measures an
entire workload's fork tree while excluding the shell itself — the
mechanism that makes sdet's 281 tasks or kenbus's 238 trackable without
annotating anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._types import KERNEL_TID, Component
from repro.errors import KernelError, NoSuchTask


class TaskState(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"


@dataclass
class Task:
    """One schedulable task (the kernel itself is task 0)."""

    tid: int
    name: str
    component: Component
    parent_tid: int | None = None
    simulate: int = 0
    inherit: int = 0
    state: TaskState = TaskState.RUNNING
    children: list[int] = field(default_factory=list)

    @property
    def is_kernel(self) -> bool:
        return self.tid == KERNEL_TID


class TaskTable:
    """Allocates task ids and applies fork-time attribute inheritance."""

    def __init__(self) -> None:
        self._tasks: dict[int, Task] = {}
        self._next_tid = KERNEL_TID
        self.total_created = 0

    def create(
        self,
        name: str,
        component: Component,
        parent_tid: int | None = None,
    ) -> Task:
        """Create a task; with a parent, Tapeworm attributes inherit."""
        tid = self._next_tid
        self._next_tid += 1
        task = Task(tid=tid, name=name, component=component, parent_tid=parent_tid)
        if parent_tid is not None:
            parent = self.get(parent_tid)
            # the paper's inheritance rule, verbatim
            task.simulate = parent.inherit
            task.inherit = parent.inherit
            parent.children.append(tid)
        self._tasks[tid] = task
        self.total_created += 1
        return task

    def get(self, tid: int) -> Task:
        try:
            return self._tasks[tid]
        except KeyError:
            raise NoSuchTask(f"no task with tid {tid}") from None

    def exit(self, tid: int) -> Task:
        task = self.get(tid)
        if task.is_kernel:
            raise KernelError("the kernel task cannot exit")
        if task.state is TaskState.EXITED:
            raise KernelError(f"task {tid} has already exited")
        task.state = TaskState.EXITED
        return task

    def live_tasks(self) -> list[Task]:
        return [t for t in self._tasks.values() if t.state is TaskState.RUNNING]

    def all_tasks(self) -> list[Task]:
        return list(self._tasks.values())

    def by_name(self, name: str) -> Task:
        for task in self._tasks.values():
            if task.name == name and task.state is TaskState.RUNNING:
                return task
        raise NoSuchTask(f"no live task named {name!r}")

    def has_live(self, name: str) -> bool:
        return any(
            t.name == name and t.state is TaskState.RUNNING
            for t in self._tasks.values()
        )

    def user_task_count(self) -> int:
        """Tasks ever created under the USER component (the Table 4
        'User Task Count' — servers, kernel, and the launching shell
        excluded, since the shell predates the workload)."""
        return sum(
            1
            for t in self._tasks.values()
            if t.component is Component.USER and t.name != "shell"
        )

    def descendants(self, tid: int) -> list[Task]:
        """All transitive children of a task, depth-first."""
        result: list[Task] = []
        stack = list(self.get(tid).children)
        while stack:
            child = self.get(stack.pop())
            result.append(child)
            stack.extend(child.children)
        return result
