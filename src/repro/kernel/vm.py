"""The virtual memory system.

Tapeworm "requires assistance from the OS virtual memory system": on the
first fault to a page the VM system registers it via ``tw_register_page``;
on unmap (task exit or page-out) it calls ``tw_remove_page``.  Shared
physical pages are registered once per mapping, with Tapeworm keeping a
reference count.

The VM system is also the paper's dominant source of measurement
variance: "the distributions of physical page frames allocated to a task,
which change from run to run, affect the sequence of addresses seen by a
physically-indexed cache" (Table 9).  The allocator here draws frames from
a pool ordered by a *trial-seeded* shuffle (policy ``random``) or kept in
ascending order (policy ``sequential``), so that variance can be produced
or suppressed at will.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro._types import PAGE_SIZE
from repro.errors import ConfigError, KernelError, MemoryFault
from repro.machine.machine import Machine
from repro.machine.mmu import PageTable


@dataclass(frozen=True)
class Region:
    """One mapped range of a task's address space.

    ``share_key`` names a machine-wide sharing domain: every mapping of
    ``(share_key, page offset within region)`` resolves to the same
    physical frame.  Text segments of re-executed binaries (sdet's shells,
    kenbus's tools) and the servers' code use this, exercising Tapeworm's
    shared-page reference counting.
    """

    name: str
    start_vpn: int
    n_pages: int
    share_key: str | None = None

    def __post_init__(self) -> None:
        if self.start_vpn < 0 or self.n_pages <= 0:
            raise ConfigError(
                f"bad region {self.name!r}: start_vpn={self.start_vpn}, "
                f"n_pages={self.n_pages}"
            )

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.n_pages

    def contains(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    @property
    def start_va(self) -> int:
        return self.start_vpn * PAGE_SIZE

    @property
    def size_bytes(self) -> int:
        return self.n_pages * PAGE_SIZE


@dataclass(frozen=True)
class AddressSpaceLayout:
    """A task's declared regions.  Faults outside every region are treated
    as anonymous private pages (heap/stack growth)."""

    regions: tuple[Region, ...] = ()

    def __post_init__(self) -> None:
        spans = sorted((r.start_vpn, r.end_vpn, r.name) for r in self.regions)
        for (s1, e1, n1), (s2, e2, n2) in zip(spans, spans[1:]):
            if s2 < e1:
                raise ConfigError(f"regions {n1!r} and {n2!r} overlap")

    def region_of(self, vpn: int) -> Region | None:
        for region in self.regions:
            if region.contains(vpn):
                return region
        return None

    def region_named(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")


#: VM -> Tapeworm notification hooks.
RegisterHook = Callable[[int, int, int], None]  # (tid, pa, va)
RemoveHook = Callable[[int, int, int], None]


class VMSystem:
    """Frame allocation, fault handling, and the Tapeworm page protocol."""

    ALLOC_POLICIES = ("random", "sequential")

    def __init__(
        self,
        machine: Machine,
        alloc_policy: str = "random",
        trial_seed: int = 0,
        reserved_frames: int = 64,
    ) -> None:
        """``reserved_frames`` models Tapeworm's boot-time allocation:
        "about 256 K-bytes of physical memory are allocated for Tapeworm
        at boot time.  This removes 64 pages from the free memory pool."
        """
        if alloc_policy not in self.ALLOC_POLICIES:
            raise ConfigError(
                f"unknown allocation policy {alloc_policy!r}; "
                f"choose from {self.ALLOC_POLICIES}"
            )
        self.machine = machine
        self.alloc_policy = alloc_policy
        self.trial_seed = trial_seed
        n_frames = machine.memory.n_frames
        if reserved_frames >= n_frames:
            raise ConfigError(
                f"cannot reserve {reserved_frames} of {n_frames} frames"
            )
        frames = np.arange(reserved_frames, n_frames, dtype=np.int64)
        if alloc_policy == "random":
            rng = np.random.default_rng(trial_seed)
            rng.shuffle(frames)
        self._free = frames.tolist()
        self._free.reverse()  # pop() returns the first frame in policy order
        #: (share_key, page offset) -> (pfn, refcount)
        self._shared: dict[tuple[str, int], list[int]] = {}
        #: layouts by tid
        self._layouts: dict[int, AddressSpaceLayout] = {}
        #: eviction bookkeeping: mapped private pages in fault order
        self._private_pages: list[tuple[int, int]] = []
        self.on_register_page: RegisterHook | None = None
        self.on_remove_page: RemoveHook | None = None
        self.faults = 0
        self.evictions = 0

    def reshuffle_free_frames(self, trial_seed: int) -> None:
        """Re-draw the free pool's policy order under a new trial seed.

        Used at a warm-state snapshot fork: the warmup prefix ran under a
        shared plan seed, so every trial forked from it would otherwise
        allocate the *same* frames — erasing the paper's dominant
        physically-indexed variance source.  Re-shuffling the remaining
        free frames with the measurement trial's seed restores per-trial
        allocation variation from the fork point on.  Sequential policy
        is order-insensitive and left untouched.
        """
        self.trial_seed = trial_seed
        if self.alloc_policy != "random" or not self._free:
            return
        frames = np.array(sorted(self._free), dtype=np.int64)
        rng = np.random.default_rng(trial_seed)
        rng.shuffle(frames)
        self._free = frames.tolist()
        self._free.reverse()

    # -- task lifecycle

    def attach_task(self, tid: int, layout: AddressSpaceLayout) -> PageTable:
        self._layouts[tid] = layout
        return self.machine.mmu.create_table(tid)

    def detach_task(self, tid: int) -> None:
        """Unmap everything a task mapped (task termination)."""
        table = self.machine.mmu.table(tid)
        for vpn in table.mapped_vpns():
            self.unmap_page(tid, int(vpn))
        self.machine.mmu.destroy_table(tid)
        del self._layouts[tid]

    # -- fault path

    def free_frames(self) -> int:
        return len(self._free)

    def _allocate_frame(self) -> int:
        if not self._free:
            self._evict_one()
        if not self._free:
            raise MemoryFault("out of physical memory and nothing evictable")
        return self._free.pop()

    def fault(self, tid: int, vpn: int) -> int:
        """Handle a first-touch fault: map the page, tell Tapeworm.

        Returns the frame used.  Shared regions resolve through the
        machine-wide share table; Tapeworm is notified for *every*
        mapping, shared or not — its refcount logic decides whether new
        traps are set (paper section 3.2).
        """
        self.faults += 1
        table = self.machine.mmu.table(tid)
        layout = self._layouts[tid]
        region = layout.region_of(vpn)
        share_entry = None
        if region is not None and region.share_key is not None:
            share_entry = (region.share_key, vpn - region.start_vpn)

        if share_entry is not None and share_entry in self._shared:
            record = self._shared[share_entry]
            pfn = record[0]
            record[1] += 1
        else:
            pfn = self._allocate_frame()
            if share_entry is not None:
                self._shared[share_entry] = [pfn, 1]
            else:
                self._private_pages.append((tid, vpn))
        table.map(vpn, pfn)
        if self.on_register_page is not None:
            self.on_register_page(tid, pfn * PAGE_SIZE, vpn * PAGE_SIZE)
        return pfn

    # -- unmap path

    def unmap_page(self, tid: int, vpn: int) -> None:
        """Remove one mapping; frees the frame when no mapping remains."""
        table = self.machine.mmu.table(tid)
        pfn = table.frame_of(vpn)
        if self.on_remove_page is not None:
            self.on_remove_page(tid, pfn * PAGE_SIZE, vpn * PAGE_SIZE)
        table.unmap(vpn)
        self.machine.hw_tlb.probe_out(tid, vpn)

        layout = self._layouts[tid]
        region = layout.region_of(vpn)
        if region is not None and region.share_key is not None:
            entry = (region.share_key, vpn - region.start_vpn)
            record = self._shared[entry]
            record[1] -= 1
            if record[1] == 0:
                del self._shared[entry]
                self._free.append(pfn)
        else:
            try:
                self._private_pages.remove((tid, vpn))
            except ValueError:
                pass
            self._free.append(pfn)

    def _evict_one(self) -> None:
        """Page out the oldest private page (simple FIFO paging)."""
        while self._private_pages:
            tid, vpn = self._private_pages[0]
            if self.machine.mmu.has_table(tid):
                self.evictions += 1
                self.unmap_page(tid, vpn)
                return
            self._private_pages.pop(0)

    # -- introspection

    def share_refcount(self, share_key: str, page_offset: int) -> int:
        record = self._shared.get((share_key, page_offset))
        return 0 if record is None else record[1]

    def mappings_of_frame(self, pfn: int) -> list[tuple[int, int]]:
        """All (tid, vpn) pairs currently mapping one frame."""
        hits = []
        for table in self.machine.mmu.tables():
            vpns = np.nonzero(table.v2p == pfn)[0]
            hits.extend((table.tid, int(v)) for v in vpns)
        return hits
