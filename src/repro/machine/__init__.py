"""Simulated host hardware: the DECstation 5000/200 machine model.

The paper's Tapeworm II runs on real hardware and uses privileged machine
state (ECC check bits, page valid bits, breakpoint registers) to make the
host CPU trap to the kernel on references to "missing" memory.  This
package simulates that hardware so the same mechanisms can be exercised in
pure Python:

* :mod:`repro.machine.memory`   — physical memory geometry and frames
* :mod:`repro.machine.ecc`      — SEC-DED check bits + diagnostic controller
* :mod:`repro.machine.mmu`      — page tables, valid bits, fast translation
* :mod:`repro.machine.tlb`     — R3000-style software-managed hardware TLB
* :mod:`repro.machine.breakpoints` — instruction/data breakpoint registers
* :mod:`repro.machine.traps`    — trap kinds, trap frames, dispatch
* :mod:`repro.machine.clock`    — clock-interrupt timer (time dilation)
* :mod:`repro.machine.cpu`      — reference-stream execution engine
* :mod:`repro.machine.ops`      — Table 12 privileged-operation matrix
"""

from repro.machine.memory import PhysicalMemory
from repro.machine.ecc import ECCController, ECCWord, TrapClass
from repro.machine.mmu import MMU, PageTable
from repro.machine.tlb import HardwareTLB, TLBEntry
from repro.machine.breakpoints import BreakpointUnit
from repro.machine.traps import TrapKind, TrapFrame, TrapDispatcher
from repro.machine.clock import ClockTimer
from repro.machine.cpu import CPU, ExecContext, ChunkResult
from repro.machine.machine import Machine, MachineConfig

__all__ = [
    "PhysicalMemory",
    "ECCController",
    "ECCWord",
    "TrapClass",
    "MMU",
    "PageTable",
    "HardwareTLB",
    "TLBEntry",
    "BreakpointUnit",
    "TrapKind",
    "TrapFrame",
    "TrapDispatcher",
    "ClockTimer",
    "CPU",
    "ExecContext",
    "ChunkResult",
    "Machine",
    "MachineConfig",
]
