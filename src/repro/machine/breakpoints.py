"""Instruction/data breakpoint registers (Table 2's third mechanism).

Breakpoints are the most portable trap primitive in Table 12 — every
surveyed CPU has instruction breakpoints — but real machines provide only
a handful of registers, so Tapeworm would set them "perhaps in clusters of
more than one" to cover a cache line.  This unit models a small bank of
range breakpoints on *virtual* addresses; it is offered as an alternative
``TrapMechanism`` and exercised by the mechanism-ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, MachineError


class BreakpointUnit:
    """A bank of ``n_registers`` address-range breakpoints."""

    def __init__(self, n_registers: int = 16) -> None:
        if n_registers <= 0:
            raise ConfigError(f"need at least one breakpoint register")
        self.n_registers = n_registers
        #: slot -> (start_va, end_va) half-open, or None when free
        self._ranges: list[tuple[int, int] | None] = [None] * n_registers

    def set_breakpoint(self, start: int, size: int) -> int:
        """Program a free register to trap on ``[start, start+size)``.

        Returns the register index; raises when the bank is exhausted —
        the practical reason breakpoints cannot back a full cache
        simulation (a simulated cache's complement is far larger than any
        breakpoint bank).
        """
        if size <= 0:
            raise MachineError(f"breakpoint size must be positive, got {size}")
        for slot, current in enumerate(self._ranges):
            if current is None:
                self._ranges[slot] = (start, start + size)
                return slot
        raise MachineError(
            f"all {self.n_registers} breakpoint registers are in use"
        )

    def clear_breakpoint(self, slot: int) -> None:
        if not 0 <= slot < self.n_registers:
            raise MachineError(f"no breakpoint register {slot}")
        if self._ranges[slot] is None:
            raise MachineError(f"breakpoint register {slot} is not set")
        self._ranges[slot] = None

    def clear_covering(self, va: int) -> int:
        """Clear every register whose range covers ``va``; returns count."""
        cleared = 0
        for slot, current in enumerate(self._ranges):
            if current is not None and current[0] <= va < current[1]:
                self._ranges[slot] = None
                cleared += 1
        return cleared

    def active_ranges(self) -> list[tuple[int, int]]:
        return [r for r in self._ranges if r is not None]

    def n_active(self) -> int:
        return sum(1 for r in self._ranges if r is not None)

    def check_chunk(self, vas: np.ndarray) -> np.ndarray:
        """Boolean mask of chunk positions that hit any active range."""
        mask = np.zeros(len(vas), dtype=bool)
        for start, end in self.active_ranges():
            mask |= (vas >= start) & (vas < end)
        return mask

    def hits(self, va: int) -> bool:
        return any(start <= va < end for start, end in self.active_ranges())
