"""Position indexes over chunk-sized arrays.

The chunk engine's in-order trap delivery must, after each handled trap,
find every *later* position in the chunk that references a location the
handler just trapped (the displaced line's granule, or an invalidated
page's VPN).  Scanning the chunk tail per drained location is
O(traps x chunk) — the rescan cost that dominated trap-heavy segments.

:class:`PositionIndex` precomputes, once per segment, a stable argsort
of the value array.  Because the sort is stable, the positions of any
one value appear in ascending order inside their sorted run, so "every
occurrence of value v after position i" is two binary searches (locate
v's run, then bisect the run by i) plus a slice — O(log n + k) per
lookup, with the same result multiset as the linear rescan.  Pushing an
identical multiset of integer positions keeps the delivery heap's pop
sequence bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.profile import phase

_EMPTY = np.empty(0, dtype=np.int64)


class PositionIndex:
    """Sorted-occurrence index: value -> ascending chunk positions."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        order = np.argsort(values, kind="stable")
        #: values in sorted order (runs of equal values are contiguous)
        self._values = values[order]
        #: original positions, ascending within each equal-value run
        self._positions = order

    def __len__(self) -> int:
        return len(self._values)

    def occurrences_after(self, value: int, position: int) -> np.ndarray:
        """All positions > ``position`` holding ``value``, ascending."""
        lo = int(np.searchsorted(self._values, value, side="left"))
        hi = int(np.searchsorted(self._values, value, side="right"))
        if lo == hi:
            return _EMPTY
        run = self._positions[lo:hi]
        start = int(np.searchsorted(run, position, side="right"))
        return run[start:]

    def occurrences(self, value: int) -> np.ndarray:
        """All positions holding ``value``, ascending."""
        return self.occurrences_after(value, -1)


class RescanBinding:
    """Lazy, phase-labelled :class:`PositionIndex` over one chunk array.

    The scan kernel's rescan-binding pass hands one of these per
    rescannable value array (ECC granules, VPNs); the index is built on
    the *first* lookup — most segments deliver no displaced-location
    traps and never pay the argsort — under the same
    ``machine.rescan_index`` phase timer the inline code used.
    """

    __slots__ = ("_values", "_kind", "_index")

    def __init__(self, values: np.ndarray, kind: str) -> None:
        self._values = values
        self._kind = kind
        self._index: PositionIndex | None = None

    def occurrences_after(self, value: int, position: int) -> np.ndarray:
        index = self._index
        if index is None:
            with phase("machine.rescan_index", kind=self._kind):
                index = self._index = PositionIndex(self._values)
        return index.occurrences_after(value, position)
