"""The clock-interrupt timer — the machine's source of time dilation bias.

The DECstation takes a clock interrupt every 10 ms of *wall-clock* time.
When Tapeworm slows a workload down, the same amount of workload progress
spans more wall-clock time and therefore more clock interrupts; each
interrupt runs kernel handler code that conflicts with workload lines in
the cache.  That is the paper's *time dilation* bias (Figure 4).  Because
the timer counts total elapsed cycles — base work plus simulation
overhead — the bias emerges here naturally rather than being modeled by a
formula.
"""

from __future__ import annotations

import operator

from repro._types import CLOCK_TICK_CYCLES
from repro.errors import ConfigError


class ClockTimer:
    """Counts elapsed cycles and reports crossed tick boundaries."""

    def __init__(self, tick_cycles: int = CLOCK_TICK_CYCLES) -> None:
        if tick_cycles <= 0:
            raise ConfigError(f"tick_cycles must be positive, got {tick_cycles}")
        self.tick_cycles = tick_cycles
        self.now = 0
        self._next_tick = tick_cycles
        self.ticks_delivered = 0

    def advance(self, cycles: int) -> int:
        """Advance time; returns how many tick boundaries were crossed.

        ``cycles`` must be a non-negative integer: rejecting bad values
        *before* any mutation keeps ``now``/``ticks_delivered`` from
        being silently corrupted (a float or negative advance would skew
        every tick boundary for the rest of the run).
        """
        try:
            cycles = operator.index(cycles)
        except TypeError:
            raise ConfigError(
                f"cycles must be an integer, got {cycles!r} "
                f"({type(cycles).__name__})"
            ) from None
        if cycles < 0:
            raise ConfigError(f"cannot advance time by {cycles} cycles")
        self.now += cycles
        ticks = 0
        while self.now >= self._next_tick:
            self._next_tick += self.tick_cycles
            ticks += 1
        self.ticks_delivered += ticks
        return ticks

    def reset(self) -> None:
        self.now = 0
        self._next_tick = self.tick_cycles
        self.ticks_delivered = 0

    def publish_metrics(self, metrics) -> None:
        """Copy tick totals into a metrics registry."""
        if self.ticks_delivered:
            metrics.counter("machine.clock.ticks").inc(self.ticks_delivered)
        metrics.gauge("machine.clock.now_cycles").set(self.now)
