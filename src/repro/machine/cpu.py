"""The reference-stream execution engine.

This is the simulated hardware's fast path.  A workload presents whole
*chunks* of virtual addresses (numpy arrays); the CPU translates them,
consults the trap state (ECC granule bits, page valid bits, breakpoints)
vectorized, and enters the kernel only for the references that actually
trap — the exact analogue of the paper's claim that "Tapeworm uses the
underlying hardware to filter out hits in the simulated cache structure."

Correct in-order delivery matters: a miss handler *sets* a trap on the
displaced line, and if that line is referenced again later in the same
chunk the hardware must trap there too.  The engine therefore keeps a heap
of candidate chunk positions; after every handled trap it drains the
ECC controller's / page table's log of newly trapped locations and pushes
any later occurrences of them back onto the heap.  Every candidate is
re-checked against live trap state before dispatch, so stale candidates
(cleared by an earlier handler) are skipped.  The result is bit-identical
to a reference-at-a-time simulation, at numpy chunk speed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._types import Component, TrapMechanism
from repro.caches.pipeline import compile_kernel, scan_request
from repro.errors import MachineError
from repro.machine.mmu import PAGE_SHIFT, PageTable
from repro.machine.traps import TrapFrame, TrapKind
from repro.telemetry.session import active as _telemetry

#: log2 of the ECC check granule (16 bytes).
GRANULE_SHIFT = 4

#: the granule size/mask derived from it — used wherever a physical
#: address must be aligned to one ECC check granule
GRANULE_BYTES = 1 << GRANULE_SHIFT

#: Cycles charged for a VM page fault (kernel fault path + map).  Faults
#: occur in instrumented and uninstrumented runs alike, so this is *base*
#: cost, never simulation overhead.
PAGE_FAULT_CYCLES = 300


@dataclass(frozen=True)
class ExecContext:
    """Who is executing: task, workload component, and its base CPI."""

    tid: int
    component: Component
    cpi: float = 1.0


@dataclass
class ChunkResult:
    """Cycle and trap accounting for one executed chunk."""

    n_refs: int = 0
    base_cycles: int = 0
    sim_cycles: int = 0
    traps: int = 0
    page_faults: int = 0
    masked_traps: int = 0
    #: traps erased by writes on a no-allocate-on-write machine — the
    #: misses a data-cache simulation would silently lose (section 4.4)
    silent_clears: int = 0
    ticks: int = 0

    def merge(self, other: "ChunkResult") -> None:
        self.n_refs += other.n_refs
        self.base_cycles += other.base_cycles
        self.sim_cycles += other.sim_cycles
        self.traps += other.traps
        self.page_faults += other.page_faults
        self.masked_traps += other.masked_traps
        self.silent_clears += other.silent_clears
        self.ticks += other.ticks


class CPU:
    """Executes reference chunks against a :class:`~repro.machine.machine.Machine`."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self._in_tick = False
        #: compiled scan programs, memoized per active-mechanism tuple —
        #: a plain dict probe per segment, compiled once by the pipeline
        self._scan_programs: dict[tuple[bool, bool, bool], Any] = {}
        #: per-component totals, for the Monster-style monitor
        self.refs_by_component: dict[Component, int] = {c: 0 for c in Component}
        self.cycles_by_component: dict[Component, int] = {c: 0 for c in Component}

    # ------------------------------------------------------------------
    # the chunk engine
    # ------------------------------------------------------------------

    def run_chunk(
        self,
        ctx: ExecContext,
        vas: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> ChunkResult:
        """Execute one chunk of virtual addresses in ``ctx``.

        Page faults are taken *in reference order*: execution proceeds
        up to the first unmapped reference, the kernel faults the page
        in (possibly evicting another — which later references in this
        very chunk may then re-fault, exactly as on real hardware under
        memory pressure), and execution continues.  First-touch order is
        what exposes run-to-run page-allocation variance (Table 9).

        ``writes`` optionally marks store references.  On a machine
        without allocate-on-write, a store to a trapped location
        *overwrites* it, regenerating correct ECC: the trap evaporates
        without any kernel entry — the mechanism that blocks data-cache
        simulation on the DECstation (section 4.4).

        Returns the cycle/trap accounting; the machine's clock advances
        and pending clock interrupts are delivered at chunk end.
        """
        machine = self.machine
        result = ChunkResult(n_refs=len(vas))
        if len(vas) == 0:
            return result
        vas = np.ascontiguousarray(vas, dtype=np.int64)
        if writes is not None:
            writes = np.ascontiguousarray(writes, dtype=bool)
        table = machine.mmu.table(ctx.tid)

        start = 0
        while start < len(vas):
            vpns = vas[start:] >> PAGE_SHIFT
            unmapped = np.nonzero(table.v2p[vpns] < 0)[0]
            if len(unmapped) == 0:
                end = len(vas)
            elif unmapped[0] == 0:
                machine.deliver_page_fault(ctx, int(vpns[0]))
                result.page_faults += 1
                result.base_cycles += PAGE_FAULT_CYCLES
                continue
            else:
                end = start + int(unmapped[0])
            self._execute_segment(
                ctx,
                table,
                vas[start:end],
                result,
                None if writes is None else writes[start:end],
            )
            start = end

        result.base_cycles += int(round(len(vas) * ctx.cpi))
        self.refs_by_component[ctx.component] += len(vas)
        self.cycles_by_component[ctx.component] += result.base_cycles

        ticks = machine.clock.advance(result.base_cycles + result.sim_cycles)
        if ticks:
            session = _telemetry()
            if session is not None:
                session.trace.clock_ticks(machine.clock.now, ticks)
        if ticks and not self._in_tick and machine.tick_handler is not None:
            self._in_tick = True
            try:
                tick_result = machine.tick_handler(ticks)
            finally:
                self._in_tick = False
            if tick_result is not None:
                result.merge(tick_result)
        result.ticks += ticks
        return result

    def _execute_segment(
        self,
        ctx: ExecContext,
        table: PageTable,
        vas: np.ndarray,
        result: ChunkResult,
        writes: np.ndarray | None = None,
    ) -> None:
        """Run one fully-mapped run of references: translate, scan for
        trap candidates, deliver in order."""
        machine = self.machine
        vpns = vas >> PAGE_SHIFT
        pas = table.translate(vas)

        mechanisms = machine.active_mechanisms
        key = (
            TrapMechanism.ECC in mechanisms,
            TrapMechanism.PAGE_VALID in mechanisms,
            TrapMechanism.BREAKPOINT in mechanisms
            and machine.breakpoints.n_active() > 0,
        )
        program = self._scan_programs.get(key)
        if program is None:
            program = compile_kernel(
                scan_request(*key, granule_shift=GRANULE_SHIFT)
            )
            self._scan_programs[key] = program
        if program.collect is None:
            return  # no trap mechanism active: no candidates exist

        granules = program.granules_of(pas)
        candidate_mask = program.collect(machine, table, vas, vpns, granules)
        if candidate_mask.any():
            self._process_candidates(
                ctx, table, vas, vpns, pas, granules, candidate_mask,
                result, program, writes,
            )

    def _process_candidates(
        self,
        ctx: ExecContext,
        table: PageTable,
        vas: np.ndarray,
        vpns: np.ndarray,
        pas: np.ndarray,
        granules: np.ndarray | None,
        candidate_mask: np.ndarray,
        result: ChunkResult,
        program,
        writes: np.ndarray | None = None,
    ) -> None:
        """In-order trap delivery with displaced-line rescans.

        ``program`` is the compiled scan kernel for this segment's
        active mechanisms; the per-kind delivery branches below are trap
        *semantics* (priority, masking, write-evaporation), not kernel
        dispatch — they stay here.
        """
        machine = self.machine
        use_ecc = program.use_ecc
        use_pages = program.use_pages
        use_breakpoints = program.use_breakpoints
        # Stale logs from outside this chunk are irrelevant.
        if use_ecc:
            machine.ecc.drain_recent_sets()
        if use_pages:
            table.drain_recent_invalidations()

        heap = [int(i) for i in np.nonzero(candidate_mask)[0]]
        heapq.heapify(heap)
        # Rescan bindings from the pipeline's binding pass: the
        # PositionIndex is built lazily on the first handler that traps
        # a displaced location — "next occurrence of this granule/VPN
        # after position i" becomes two bisects, not an O(chunk) scan.
        granule_rescan, vpn_rescan = program.bind_rescans(granules, vpns)
        previous = -1
        while heap:
            i = heapq.heappop(heap)
            if i == previous:
                continue  # duplicate candidate for the same reference
            previous = i
            delivered = False

            # Page-invalid traps fire at translation time, before the
            # memory access, so they take priority over ECC traps.
            if use_pages and table.is_page_trapped(int(vpns[i])):
                frame = TrapFrame(
                    kind=TrapKind.PAGE_INVALID,
                    tid=ctx.tid,
                    component=ctx.component,
                    va=int(vas[i]),
                    pa=int(pas[i]),
                    cycle=machine.clock.now,
                )
                result.sim_cycles += machine.dispatcher.dispatch(frame)
                result.traps += 1
                delivered = True

            if use_ecc and machine.ecc.granule_trapped[granules[i]]:
                is_write = writes is not None and bool(writes[i])
                if is_write and not machine.config.allocate_on_write:
                    # the store overwrites the word, regenerating correct
                    # ECC: the trap evaporates with no kernel entry — the
                    # no-allocate-on-write mechanism that defeats D-cache
                    # simulation on this machine (section 4.4)
                    machine.ecc.clear_trap(
                        int(pas[i]) & ~(GRANULE_BYTES - 1), GRANULE_BYTES
                    )
                    result.silent_clears += 1
                elif machine.interrupts_masked:
                    # ECC errors raise a hardware *interrupt* on this
                    # machine; with interrupts masked the trap is lost and
                    # the miss goes uncounted (paper, "Sources of
                    # Measurement Bias").
                    result.masked_traps += 1
                else:
                    frame = TrapFrame(
                        kind=TrapKind.ECC_ERROR,
                        tid=ctx.tid,
                        component=ctx.component,
                        va=int(vas[i]),
                        pa=int(pas[i]),
                        cycle=machine.clock.now,
                    )
                    result.sim_cycles += machine.dispatcher.dispatch(frame)
                    result.traps += 1
                    delivered = True

            if use_breakpoints and machine.breakpoints.hits(int(vas[i])):
                frame = TrapFrame(
                    kind=TrapKind.BREAKPOINT,
                    tid=ctx.tid,
                    component=ctx.component,
                    va=int(vas[i]),
                    pa=int(pas[i]),
                    cycle=machine.clock.now,
                )
                result.sim_cycles += machine.dispatcher.dispatch(frame)
                result.traps += 1
                delivered = True

            if not delivered:
                continue

            # A handler may have set traps on displaced locations that
            # occur later in this very chunk; queue those positions.
            if use_ecc:
                for granule in machine.ecc.drain_recent_sets():
                    for pos in granule_rescan.occurrences_after(granule, i):
                        heapq.heappush(heap, int(pos))
            if use_pages:
                for vpn in table.drain_recent_invalidations():
                    for pos in vpn_rescan.occurrences_after(vpn, i):
                        heapq.heappush(heap, int(pos))

    # ------------------------------------------------------------------

    def reset_counters(self) -> None:
        self.refs_by_component = {c: 0 for c in Component}
        self.cycles_by_component = {c: 0 for c in Component}

    def publish_metrics(self, metrics) -> None:
        """Copy the per-component totals into a metrics registry
        (``machine.cpu.refs{component=...}`` / ``machine.cpu.cycles``)."""
        for component in Component:
            refs = self.refs_by_component[component]
            if refs:
                metrics.counter(
                    "machine.cpu.refs", component=component.value
                ).inc(refs)
            cycles = self.cycles_by_component[component]
            if cycles:
                metrics.counter(
                    "machine.cpu.cycles", component=component.value
                ).inc(cycles)
