"""A DMA engine — and the port hazard it creates for Tapeworm.

Section 4.3: "our port of Tapeworm from a DECstation 5000/200 to a
DECstation 5000/240 was hindered due to differences between the way
that DMA is implemented on the two machines."  The hazard: a DMA write
regenerates correct ECC for the data it deposits, silently erasing any
Tapeworm trap on those locations.  The lines *look* cached to the
simulator (no trap fires) even though the simulated cache never loaded
them — misses go uncounted until something re-traps the region.

The engine therefore supports a *shield* protocol: a cooperating device
driver brackets each transfer with Tapeworm notifications so traps can
be re-established (and the buffer flushed from the simulated cache,
since real DMA would have invalidated it there too).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import MachineError
from repro.machine.machine import Machine

#: signature of the driver's post-transfer notification to Tapeworm
TransferHook = Callable[[int, int], None]  # (pa, size)


class DMAEngine:
    """Memory-writing device (disk/network controller) on the machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.transfers = 0
        self.bytes_written = 0
        #: installed by a Tapeworm-aware driver; None models the naive
        #: 5000/240 situation where Tapeworm never hears about DMA
        self.post_transfer_hook: TransferHook | None = None

    def install_hook(self, hook: TransferHook) -> None:
        if self.post_transfer_hook is not None:
            raise MachineError("a DMA post-transfer hook is already installed")
        self.post_transfer_hook = hook

    def write(self, pa: int, size: int) -> None:
        """Deposit ``size`` bytes at ``pa``, regenerating ECC.

        This is the hazard: correct check bits are written for the new
        data, so any Tapeworm trap in the range evaporates without the
        miss handler ever running.
        """
        self.machine.memory.check_pa(pa, size)
        granule = 16
        aligned_pa = pa & ~(granule - 1)
        aligned_end = (pa + size + granule - 1) & ~(granule - 1)
        self.machine.ecc.clear_trap(aligned_pa, aligned_end - aligned_pa)
        self.transfers += 1
        self.bytes_written += size
        if self.post_transfer_hook is not None:
            self.post_transfer_hook(pa, size)
