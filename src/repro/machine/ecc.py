"""SEC-DED ECC memory model and the diagnostic controller interface.

The DECstation 5000/200 protects each 32-bit word with 7 check bits of a
single-error-correcting, double-error-detecting (SEC-DED) code, and its
memory-controller ASIC exposes a diagnostic mode that lets privileged
software read and write the check bits directly.  Tapeworm sets a memory
trap by flipping *one specific check bit* of a word; any subsequent
cache-line refill touching that word raises an ECC error trap to the
kernel.  Because Tapeworm always flips the same check bit, it can
distinguish its own traps from true memory errors: a single-bit error in
any of the other 38 bit positions, or any double-bit error, must be real
(paper, footnote 1).

Two layers are provided:

* :class:`ECCWord` — a faithful bit-level (39,32) SEC-DED codec used to
  validate the classification logic and by the error-injection tests.
* :class:`ECCController` — the machine-wide controller that the CPU and
  Tapeworm actually use.  For speed it tracks *which granules are tampered*
  in a numpy bitmap (one flag per 4-word check granule, since the hardware
  only checks ECC on 4-word cache-line refills) and keeps a sparse map of
  injected true errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError
from repro.machine.memory import GRANULE_BYTES, PhysicalMemory

# ---------------------------------------------------------------------------
# Bit-level (39,32) SEC-DED codec
# ---------------------------------------------------------------------------

#: Codeword positions are 1-indexed 1..38 plus an overall parity bit.
#: Power-of-two positions hold the six Hamming check bits.
_HAMMING_POSITIONS = (1, 2, 4, 8, 16, 32)
_DATA_POSITIONS = tuple(
    pos for pos in range(1, 39) if pos not in _HAMMING_POSITIONS
)
assert len(_DATA_POSITIONS) == 32

#: The check bit Tapeworm flips to set a trap (the Hamming bit at
#: codeword position 1).  Index into the 7-bit check field: bits 0..5 are
#: the Hamming bits for positions 1,2,4,8,16,32 and bit 6 is overall parity.
TAPEWORM_CHECK_BIT = 0


def _encode_hamming(data: int) -> int:
    """Return the 6 Hamming check bits for a 32-bit data word."""
    syndrome = 0
    for bit_index, pos in enumerate(_DATA_POSITIONS):
        if (data >> bit_index) & 1:
            syndrome ^= pos
    check = 0
    for check_index, pos in enumerate(_HAMMING_POSITIONS):
        if (syndrome >> check_index) & 1:
            check |= 1 << check_index
    return check


def _overall_parity(data: int, hamming: int) -> int:
    """Even parity over all data and Hamming check bits."""
    return (bin(data).count("1") + bin(hamming).count("1")) & 1


class ECCStatus(enum.Enum):
    """Outcome of checking one stored word against its check bits."""

    OK = "ok"
    SINGLE_BIT = "single_bit"
    DOUBLE_BIT = "double_bit"


@dataclass
class ECCWord:
    """One ECC-protected 32-bit word with direct check-bit access.

    ``check`` is a 7-bit field: bits 0..5 the Hamming bits, bit 6 the
    overall parity bit.  A freshly constructed word carries the correct
    check bits for its data.
    """

    data: int = 0
    check: int = field(default=-1)

    def __post_init__(self) -> None:
        if not 0 <= self.data < 2**32:
            raise MachineError(f"data word out of range: {self.data:#x}")
        if self.check == -1:
            self.check = self.correct_check()

    def correct_check(self) -> int:
        """The check bits a fault-free word would carry."""
        hamming = _encode_hamming(self.data)
        return hamming | (_overall_parity(self.data, hamming) << 6)

    def flip_check_bit(self, bit: int) -> None:
        """Diagnostic write: flip one of the 7 check bits."""
        if not 0 <= bit < 7:
            raise MachineError(f"check bit index out of range: {bit}")
        self.check ^= 1 << bit

    def flip_data_bit(self, bit: int) -> None:
        """Inject a data-bit error (models a true memory fault)."""
        if not 0 <= bit < 32:
            raise MachineError(f"data bit index out of range: {bit}")
        self.data ^= 1 << bit

    def status(self) -> tuple[ECCStatus, int | None]:
        """Run the SEC-DED decode against the stored check bits.

        Returns ``(status, position)`` where ``position`` is the syndrome
        — the 1-indexed codeword position of a single-bit error, with 0
        meaning the overall parity bit itself — or ``None`` when the word
        is clean or the error is uncorrectable.
        """
        recomputed = _encode_hamming(self.data)
        syndrome = 0
        for check_index, pos in enumerate(_HAMMING_POSITIONS):
            stored = (self.check >> check_index) & 1
            expected = (recomputed >> check_index) & 1
            if stored != expected:
                syndrome ^= pos
        parity_ok = ((self.check >> 6) & 1) == _overall_parity(
            self.data, self.check & 0x3F
        )
        if syndrome == 0 and parity_ok:
            return ECCStatus.OK, None
        if not parity_ok:
            # Odd number of flipped bits: a correctable single-bit error.
            return ECCStatus.SINGLE_BIT, syndrome
        # Non-zero syndrome with even overall parity: double-bit error.
        return ECCStatus.DOUBLE_BIT, None

    def is_tapeworm_trap(self) -> bool:
        """True when the *only* fault is the designated Tapeworm check bit.

        This is the classification rule of the paper's footnote 1: a
        single-bit error at the Tapeworm check-bit position is one of our
        own traps; any other single-bit position, or a double-bit error,
        is a true memory error.
        """
        status, position = self.status()
        if status is not ECCStatus.SINGLE_BIT:
            return False
        return position == _HAMMING_POSITIONS[TAPEWORM_CHECK_BIT]


# ---------------------------------------------------------------------------
# Machine-wide controller
# ---------------------------------------------------------------------------


class TrapClass(enum.Enum):
    """What an ECC trap turned out to be once classified by software."""

    TAPEWORM = "tapeworm"
    TRUE_SINGLE = "true_single"
    TRUE_DOUBLE = "true_double"


@dataclass(frozen=True)
class ECCDiagnostic:
    """Structured result of classifying one ECC trap.

    ``recoverable`` is the decision the paper's handler makes: a single
    corrupted *data* bit can always be repaired (even under Tapeworm's
    own check-bit flip, which software knows how to undo), while two or
    more data-bit errors form a genuinely uncorrectable pattern — the
    once-a-year double-bit error the DECstation would panic on.
    """

    pa: int
    granule: int
    trap_class: TrapClass
    status: ECCStatus
    #: corrupted data-bit positions injected into this granule, sorted
    data_bits: tuple[int, ...] = ()
    #: whether Tapeworm's designated check bit is currently flipped here
    tapeworm_flipped: bool = False

    @property
    def recoverable(self) -> bool:
        return len(self.data_bits) <= 1

    def describe(self) -> str:
        bits = ",".join(str(b) for b in self.data_bits) or "none"
        return (
            f"pa={self.pa:#x} granule={self.granule} "
            f"class={self.trap_class.value} status={self.status.value} "
            f"data_bits=[{bits}] tapeworm_bit={self.tapeworm_flipped} "
            f"recoverable={self.recoverable}"
        )


class ECCController:
    """The memory-controller ASIC's diagnostic interface, machine-wide.

    The controller checks ECC only on 4-word cache-line refills, so the
    effective trap granularity is one
    :data:`~repro.machine.memory.GRANULE_BYTES` granule.
    ``granule_trapped`` is the numpy bitmap the simulated CPU consults on
    every reference chunk — it stands in for the physical check-bit state
    on the fast path, while :class:`ECCWord` models the bits themselves.

    The controller also logs granules that gained a trap since the last
    drain; the CPU uses this to notice when a miss handler sets a trap on
    a line that appears *later in the same chunk*.
    """

    def __init__(self, memory: PhysicalMemory) -> None:
        self.memory = memory
        #: granules that will raise an ECC trap when refilled (the OR of
        #: Tapeworm tampering and injected true errors)
        self.granule_trapped = np.zeros(memory.n_granules, dtype=bool)
        #: granules whose Tapeworm check bit is currently flipped
        self._tapeworm = np.zeros(memory.n_granules, dtype=bool)
        #: granule -> set of injected true-error (word_offset, bit) pairs
        self._true_errors: dict[int, set[tuple[int, int]]] = {}
        self._recent_sets: list[int] = []
        self.stats_sets = 0
        self.stats_clears = 0

    # -- trap manipulation (Tapeworm's tw_set_trap / tw_clear_trap use these)

    def _granule_range(self, pa: int, size: int) -> range:
        self.memory.check_pa(pa, size)
        if pa % GRANULE_BYTES or size % GRANULE_BYTES:
            raise MachineError(
                "ECC traps must be granule-aligned: the controller only "
                f"checks ECC on {GRANULE_BYTES}-byte refills "
                f"(got pa={pa:#x}, size={size})"
            )
        return range(pa // GRANULE_BYTES, (pa + size) // GRANULE_BYTES)

    def set_trap(self, pa: int, size: int) -> None:
        """Flip the Tapeworm check bit for every granule in the range."""
        granules = self._granule_range(pa, size)
        self._tapeworm[granules.start : granules.stop] = True
        self.granule_trapped[granules.start : granules.stop] = True
        self._recent_sets.extend(granules)
        self.stats_sets += 1

    def clear_trap(self, pa: int, size: int) -> None:
        """Restore the Tapeworm check bit for every granule in the range.

        Injected true errors, if any, keep the granule trapping — exactly
        as on real hardware, where clearing Tapeworm's bit does not repair
        an unrelated fault.
        """
        granules = self._granule_range(pa, size)
        self._tapeworm[granules.start : granules.stop] = False
        for granule in granules:
            self.granule_trapped[granule] = granule in self._true_errors
        self.stats_clears += 1

    def is_trapped(self, pa: int) -> bool:
        """Whether a reference to ``pa`` would raise an ECC trap."""
        return bool(self.granule_trapped[self.memory.granule_of(pa)])

    def is_tapeworm_trapped(self, pa: int) -> bool:
        """Whether Tapeworm's check bit is flipped for ``pa``'s granule."""
        return bool(self._tapeworm[self.memory.granule_of(pa)])

    # -- recent-set log, used by the CPU's in-order chunk scan

    def drain_recent_sets(self) -> list[int]:
        """Return and clear the granules trapped since the last drain."""
        recent, self._recent_sets = self._recent_sets, []
        return recent

    # -- true memory errors (for the bias/accuracy experiments)

    def inject_true_error(self, pa: int, bit: int, double: bool = False) -> None:
        """Corrupt a data bit (or two, for ``double``) at ``pa``.

        Models the genuine memory faults the paper logged about once a
        year; used to verify that Tapeworm still detects them while its
        own traps are active.
        """
        granule = self.memory.granule_of(pa)
        word = (pa % GRANULE_BYTES) // 4
        errors = self._true_errors.setdefault(granule, set())
        errors.add((word, bit))
        if double:
            errors.add((word, (bit + 1) % 32))
        self.granule_trapped[granule] = True

    def classify(self, pa: int) -> TrapClass:
        """Classify an ECC trap at ``pa`` the way Tapeworm's handler does."""
        return self.diagnose(pa).trap_class

    def diagnose(self, pa: int) -> ECCDiagnostic:
        """Full classification of an ECC trap at ``pa``.

        Reconstructs the word-level ECC state — the Tapeworm check-bit
        flip and/or injected data-bit errors — and runs the SEC-DED
        decode of :class:`ECCWord`.  The diagnostic carries everything a
        handler (or a raised :class:`~repro.errors.DoubleBitError`)
        needs: the corrupted bit positions, whether our own check bit is
        flipped, and whether the pattern is recoverable.
        """
        granule = self.memory.granule_of(pa)
        tapeworm = bool(self._tapeworm[granule])
        errors = self._true_errors.get(granule, set())
        if not errors:
            # the fast path: only our own check-bit flip is present
            return ECCDiagnostic(
                pa=pa,
                granule=granule,
                trap_class=TrapClass.TAPEWORM,
                status=ECCStatus.SINGLE_BIT,
                tapeworm_flipped=tapeworm,
            )
        word = ECCWord(0)
        if tapeworm:
            word.flip_check_bit(TAPEWORM_CHECK_BIT)
        for _, bit in sorted(errors):
            word.flip_data_bit(bit)
        status, _ = word.status()
        if status is ECCStatus.DOUBLE_BIT or tapeworm:
            # Tapeworm's flip plus a true error is at least a double-bit
            # pattern; either way the true error is detected.
            trap_class = TrapClass.TRUE_DOUBLE
        else:
            trap_class = TrapClass.TRUE_SINGLE
        return ECCDiagnostic(
            pa=pa,
            granule=granule,
            trap_class=trap_class,
            status=status,
            data_bits=tuple(sorted(bit for _, bit in errors)),
            tapeworm_flipped=tapeworm,
        )

    def tapeworm_granules(self) -> np.ndarray:
        """Granule numbers whose Tapeworm check bit is currently flipped
        (ascending).  Read-only view for auditors and fault injectors."""
        return np.nonzero(self._tapeworm)[0]

    def true_error_granules(self) -> dict[int, int]:
        """``granule -> number of injected data-bit errors`` for every
        granule still carrying an unscrubbed true error.  The
        trap-invariant auditor sweeps this at end of run: an injected
        error that was never referenced (so never classified) must not
        vanish silently."""
        return {
            granule: len(errors)
            for granule, errors in self._true_errors.items()
        }

    def scrub(self, pa: int) -> None:
        """Repair injected errors at ``pa`` (what the kernel's error
        handler would do after logging a true single-bit error)."""
        granule = self.memory.granule_of(pa)
        self._true_errors.pop(granule, None)
        self.granule_trapped[granule] = bool(self._tapeworm[granule])
