"""The machine facade: one object owning all simulated hardware.

A :class:`Machine` is the substrate both simulation styles run on.  The
kernel installs its fault and interrupt callbacks here; Tapeworm reaches
the trap hardware (ECC controller, page tables, breakpoints) through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro._types import CLOCK_TICK_CYCLES, TrapMechanism
from repro.errors import ConfigError, MachineError
from repro.machine.breakpoints import BreakpointUnit
from repro.machine.clock import ClockTimer
from repro.machine.cpu import CPU, ChunkResult, ExecContext
from repro.machine.ecc import ECCController
from repro.machine.memory import PhysicalMemory
from repro.machine.mmu import MMU
from repro.machine.tlb import HardwareTLB
from repro.machine.traps import TrapDispatcher, TrapKind
from repro.telemetry.session import active as _telemetry


@dataclass(frozen=True)
class MachineConfig:
    """Geometry of the simulated DECstation.

    Defaults give 64 MB of physical memory and 32 MB of virtual address
    space per task — generous for the scaled-down synthetic workloads
    while keeping the numpy trap bitmaps small.
    """

    memory_bytes: int = 64 * 1024 * 1024
    n_vpages: int = 8192
    tick_cycles: int = CLOCK_TICK_CYCLES
    #: Modeled write-allocation policy of the host D-cache.  The
    #: DECstation 5000/200 does *not* allocate on write, which clears ECC
    #: traps without entering the miss handler and therefore blocks data
    #: cache simulation on this machine model (paper section 4.4).
    allocate_on_write: bool = False

    def __post_init__(self) -> None:
        if self.n_vpages <= 0:
            raise ConfigError(f"n_vpages must be positive, got {self.n_vpages}")


#: Signature of the kernel's page-fault upcall.
PageFaultHandler = Callable[[ExecContext, int], None]

#: Signature of the kernel's clock-tick upcall.  It may execute interrupt
#: handler references and return their accounting.
TickHandler = Callable[[int], "ChunkResult | None"]


class Machine:
    """All simulated hardware, wired together."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        self.memory = PhysicalMemory(self.config.memory_bytes)
        self.ecc = ECCController(self.memory)
        self.mmu = MMU(self.config.n_vpages)
        self.hw_tlb = HardwareTLB()
        self.breakpoints = BreakpointUnit()
        self.dispatcher = TrapDispatcher()
        self.clock = ClockTimer(self.config.tick_cycles)
        self.cpu = CPU(self)
        #: trap sources the CPU scans on every chunk; Tapeworm enables the
        #: one backing its current simulation
        self.active_mechanisms: set[TrapMechanism] = set()
        #: hardware interrupt mask (kernel-controlled); masks ECC traps
        self.interrupts_masked = False
        self.page_fault_handler: PageFaultHandler | None = None
        self.tick_handler: TickHandler | None = None

    # -- kernel wiring

    def install_page_fault_handler(self, handler: PageFaultHandler) -> None:
        if self.page_fault_handler is not None:
            raise MachineError("a page-fault handler is already installed")
        self.page_fault_handler = handler

    def install_tick_handler(self, handler: TickHandler) -> None:
        if self.tick_handler is not None:
            raise MachineError("a tick handler is already installed")
        self.tick_handler = handler

    def deliver_page_fault(self, ctx: ExecContext, vpn: int) -> None:
        self.dispatcher.counts[TrapKind.PAGE_FAULT] += 1
        session = _telemetry()
        if session is not None:
            session.trace.page_fault(
                self.clock.now, ctx.component, ctx.tid, vpn
            )
        if self.page_fault_handler is None:
            raise MachineError(
                f"page fault on vpn {vpn} of task {ctx.tid} with no kernel "
                "fault handler installed"
            )
        self.page_fault_handler(ctx, vpn)

    # -- trap mechanism control (used by Tapeworm's machine-dependent layer)

    def enable_mechanism(self, mechanism: TrapMechanism) -> None:
        self.active_mechanisms.add(mechanism)

    def disable_mechanism(self, mechanism: TrapMechanism) -> None:
        self.active_mechanisms.discard(mechanism)

    def mask_interrupts(self) -> None:
        self.interrupts_masked = True

    def unmask_interrupts(self) -> None:
        self.interrupts_masked = False

    # -- observability

    def publish_metrics(self, metrics) -> None:
        """Publish every hardware unit's totals into a metrics registry
        under the ``machine.*`` namespace."""
        self.cpu.publish_metrics(metrics)
        self.dispatcher.publish_metrics(metrics)
        self.clock.publish_metrics(metrics)
