"""Physical memory geometry for the simulated machine.

The workloads in this reproduction are synthetic reference streams, so
physical memory does not store data bytes.  What matters to Tapeworm is the
*identity* of physical locations: frames for the VM system to allocate, and
ECC granules for the trap machinery to mark.  This module owns the
geometry; the ECC state itself lives in :mod:`repro.machine.ecc` and the
free-frame pool policy in :mod:`repro.kernel.vm`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import ECC_CHECK_GRANULE_WORDS, PAGE_SIZE, WORD_SIZE
from repro.errors import ConfigError, MemoryFault

#: Bytes covered by one ECC check granule (4 words on the DECstation).
GRANULE_BYTES = ECC_CHECK_GRANULE_WORDS * WORD_SIZE


@dataclass(frozen=True)
class PhysicalMemory:
    """Geometry of the simulated machine's physical memory.

    Parameters
    ----------
    size_bytes:
        Total installed physical memory.  Must be a whole number of pages.
    """

    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % PAGE_SIZE:
            raise ConfigError(
                f"physical memory must be a positive multiple of the "
                f"{PAGE_SIZE}-byte page size, got {self.size_bytes}"
            )

    @property
    def n_frames(self) -> int:
        """Number of physical page frames."""
        return self.size_bytes // PAGE_SIZE

    @property
    def n_granules(self) -> int:
        """Number of ECC check granules (4-word units)."""
        return self.size_bytes // GRANULE_BYTES

    @property
    def n_words(self) -> int:
        """Number of 32-bit words."""
        return self.size_bytes // WORD_SIZE

    def check_pa(self, pa: int, size: int = 1) -> None:
        """Raise :class:`MemoryFault` unless ``[pa, pa+size)`` is in range."""
        if pa < 0 or size < 1 or pa + size > self.size_bytes:
            raise MemoryFault(
                f"physical range [{pa:#x}, {pa + size:#x}) outside "
                f"{self.size_bytes:#x}-byte memory"
            )

    def frame_of(self, pa: int) -> int:
        """Frame number containing physical address ``pa``."""
        self.check_pa(pa)
        return pa // PAGE_SIZE

    def granule_of(self, pa: int) -> int:
        """ECC granule index containing physical address ``pa``."""
        self.check_pa(pa)
        return pa // GRANULE_BYTES
