"""Page tables, page valid bits, and vectorized address translation.

Tapeworm's second trap mechanism (used for TLB simulation, where the
required granularity is a whole page) is the *page valid bit*: clearing the
valid bit of a resident page makes the next reference trap to the kernel.
Because the page really is resident, Tapeworm keeps "an extra bit
maintained in software to indicate the true state of the page" (paper,
footnote 2) — that is the ``resident`` bit here.

Translation is chunk-vectorized: the execution engine hands whole numpy
arrays of virtual addresses to :meth:`PageTable.translate`, which is what
makes simulating tens of millions of references practical in Python.
"""

from __future__ import annotations

import numpy as np

from repro._types import PAGE_SIZE
from repro.errors import MachineError, MemoryFault

PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
OFFSET_MASK = PAGE_SIZE - 1


class PageTable:
    """One task's virtual-to-physical mapping.

    Arrays are indexed by virtual page number (VPN):

    ``v2p``
        physical frame number, or -1 when unmapped.
    ``valid``
        the hardware valid bit.  The MMU traps when it is clear.
    ``resident``
        Tapeworm's software copy of the true page state.  ``valid`` may be
        cleared while ``resident`` stays set — that is a Tapeworm page
        trap, not a page fault.
    """

    def __init__(self, tid: int, n_vpages: int) -> None:
        if n_vpages <= 0:
            raise MachineError(f"n_vpages must be positive, got {n_vpages}")
        self.tid = tid
        self.n_vpages = n_vpages
        self.v2p = np.full(n_vpages, -1, dtype=np.int64)
        self.valid = np.zeros(n_vpages, dtype=bool)
        self.resident = np.zeros(n_vpages, dtype=bool)
        self._recent_invalidations: list[int] = []

    # -- mapping management (called by the kernel VM system)

    def check_vpn(self, vpn: int) -> None:
        if not 0 <= vpn < self.n_vpages:
            raise MemoryFault(
                f"vpn {vpn} outside task {self.tid}'s "
                f"{self.n_vpages}-page address space"
            )

    def map(self, vpn: int, pfn: int) -> None:
        """Install a mapping and mark the page valid and resident."""
        self.check_vpn(vpn)
        if self.v2p[vpn] >= 0:
            raise MachineError(f"vpn {vpn} of task {self.tid} already mapped")
        self.v2p[vpn] = pfn
        self.valid[vpn] = True
        self.resident[vpn] = True

    def unmap(self, vpn: int) -> int:
        """Remove a mapping, returning the frame it occupied."""
        self.check_vpn(vpn)
        pfn = int(self.v2p[vpn])
        if pfn < 0:
            raise MachineError(f"vpn {vpn} of task {self.tid} not mapped")
        self.v2p[vpn] = -1
        self.valid[vpn] = False
        self.resident[vpn] = False
        return pfn

    def is_mapped(self, vpn: int) -> bool:
        self.check_vpn(vpn)
        return bool(self.v2p[vpn] >= 0)

    def frame_of(self, vpn: int) -> int:
        self.check_vpn(vpn)
        pfn = int(self.v2p[vpn])
        if pfn < 0:
            raise MemoryFault(f"vpn {vpn} of task {self.tid} not mapped")
        return pfn

    def mapped_vpns(self) -> np.ndarray:
        """All currently mapped VPNs, ascending."""
        return np.nonzero(self.v2p >= 0)[0]

    # -- Tapeworm page traps (valid bit games)

    def set_page_trap(self, vpn: int) -> None:
        """Clear the valid bit of a resident page so its next use traps."""
        self.check_vpn(vpn)
        if not self.resident[vpn]:
            raise MachineError(
                f"cannot set page trap on non-resident vpn {vpn} "
                f"of task {self.tid}"
            )
        self.valid[vpn] = False
        self._recent_invalidations.append(vpn)

    def clear_page_trap(self, vpn: int) -> None:
        """Restore the valid bit of a resident page."""
        self.check_vpn(vpn)
        if not self.resident[vpn]:
            raise MachineError(
                f"cannot clear page trap on non-resident vpn {vpn} "
                f"of task {self.tid}"
            )
        self.valid[vpn] = True

    def is_page_trapped(self, vpn: int) -> bool:
        self.check_vpn(vpn)
        return bool(self.resident[vpn] and not self.valid[vpn])

    def drain_recent_invalidations(self) -> list[int]:
        """VPNs whose valid bit was cleared since the last drain."""
        recent, self._recent_invalidations = self._recent_invalidations, []
        return recent

    # -- translation

    def translate(self, vas: np.ndarray) -> np.ndarray:
        """Translate a chunk of virtual addresses to physical addresses.

        Every page must already be mapped; the execution engine pre-faults
        unmapped pages through the kernel before calling this.
        """
        vpns = vas >> PAGE_SHIFT
        pfns = self.v2p[vpns]
        if pfns.min(initial=0) < 0:
            bad = int(vpns[np.nonzero(pfns < 0)[0][0]])
            raise MemoryFault(
                f"unmapped vpn {bad} reached translation in task {self.tid}"
            )
        return (pfns << PAGE_SHIFT) | (vas & OFFSET_MASK)


class MMU:
    """Holds the page table of every live task."""

    def __init__(self, n_vpages: int) -> None:
        self.n_vpages = n_vpages
        self._tables: dict[int, PageTable] = {}

    def create_table(self, tid: int) -> PageTable:
        if tid in self._tables:
            raise MachineError(f"task {tid} already has a page table")
        table = PageTable(tid, self.n_vpages)
        self._tables[tid] = table
        return table

    def destroy_table(self, tid: int) -> PageTable:
        try:
            return self._tables.pop(tid)
        except KeyError:
            raise MachineError(f"task {tid} has no page table") from None

    def table(self, tid: int) -> PageTable:
        try:
            return self._tables[tid]
        except KeyError:
            raise MachineError(f"task {tid} has no page table") from None

    def has_table(self, tid: int) -> bool:
        return tid in self._tables

    def tables(self) -> list[PageTable]:
        return list(self._tables.values())
