"""Table 12: privileged operations useful for trap-driven simulation.

The paper surveys which primitives each contemporary microprocessor
offers.  This module encodes that survey as data, plus the feasibility
rules of Section 4.3/4.4: which trap mechanisms a given machine can back,
and at what granularity.  ``None`` entries reproduce the paper's blank
cells ("insufficient data").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import TrapMechanism

#: Survey rows, verbatim from Table 12 of the paper.
PRIVILEGED_OPS: tuple[str, ...] = (
    "Memory Parity or ECC Traps",
    "Instruction Breakpoint",
    "Data Breakpoint",
    "Invalid Page Traps",
    "Variable Page Size",
    "Instruction Counters",
)

#: Survey columns (processors), verbatim from Table 12.
PROCESSORS: tuple[str, ...] = (
    "MIPS R3000",
    "MIPS R4000",
    "SPARC",
    "DEC Alpha",
    "Tera",
    "Intel i486",
    "Intel Pentium",
    "AMD 29050",
    "HP PA-RISC",
    "PowerPC",
)

#: The matrix itself: True=Yes, False=No, None=blank (insufficient data).
_T, _F, _N = True, False, None
SUPPORT_MATRIX: dict[str, tuple[bool | None, ...]] = {
    "Memory Parity or ECC Traps": (_T, _T, _T, _T, _T, _N, _T, _N, _N, _N),
    "Instruction Breakpoint":     (_T, _T, _T, _T, _T, _T, _T, _T, _T, _T),
    "Data Breakpoint":            (_F, _F, _F, _F, _T, _F, _F, _F, _F, _F),
    "Invalid Page Traps":         (_T, _T, _T, _T, _T, _T, _T, _T, _T, _T),
    "Variable Page Size":         (_F, _T, _F, _T, _N, _F, _T, _T, _T, _T),
    "Instruction Counters":       (_F, _F, _F, _T, _N, _F, _T, _F, _N, _F),
}


def supports(processor: str, operation: str) -> bool | None:
    """Table 12 lookup; None reproduces the paper's blank entries."""
    if operation not in SUPPORT_MATRIX:
        raise KeyError(f"unknown privileged operation: {operation!r}")
    if processor not in PROCESSORS:
        raise KeyError(f"unknown processor: {processor!r}")
    return SUPPORT_MATRIX[operation][PROCESSORS.index(processor)]


@dataclass(frozen=True)
class PortAssessment:
    """Which Tapeworm trap mechanisms a processor can back, and the finest
    trap granularity available (in bytes; None when no mechanism works)."""

    processor: str
    mechanisms: tuple[TrapMechanism, ...]
    finest_granularity_bytes: int | None
    can_simulate_caches: bool
    can_simulate_tlbs: bool


def assess_port(
    processor: str,
    line_bytes: int = 16,
    page_bytes: int = 4096,
) -> PortAssessment:
    """Apply the paper's feasibility reasoning to one survey column.

    Cache simulation needs line-granularity traps (ECC/parity, or data
    breakpoints); TLB simulation only needs page-granularity traps, which
    every processor's invalid-page mechanism provides.  Instruction
    breakpoints alone cover only the I-stream and a bank-limited footprint,
    so they do not qualify a machine for full cache simulation here.
    """
    mechanisms: list[TrapMechanism] = []
    finest: int | None = None
    if supports(processor, "Memory Parity or ECC Traps"):
        mechanisms.append(TrapMechanism.ECC)
        finest = line_bytes
    if supports(processor, "Data Breakpoint"):
        mechanisms.append(TrapMechanism.BREAKPOINT)
        finest = line_bytes if finest is None else min(finest, line_bytes)
    if supports(processor, "Invalid Page Traps"):
        mechanisms.append(TrapMechanism.PAGE_VALID)
        if finest is None:
            finest = page_bytes
    return PortAssessment(
        processor=processor,
        mechanisms=tuple(mechanisms),
        finest_granularity_bytes=finest,
        can_simulate_caches=finest is not None and finest <= line_bytes,
        can_simulate_tlbs=TrapMechanism.PAGE_VALID in mechanisms,
    )
