"""R3000-style software-managed hardware TLB.

The MIPS R3000 translates through a 64-entry fully-associative TLB.  A
miss traps to a software refill handler — which is exactly the hook the
first-generation Tapeworm used for TLB simulation: every hardware TLB miss
already enters the kernel, so intercepting the refill handler sees every
simulated-TLB event for free, provided the hardware TLB's contents are
kept a *subset* of the simulated TLB's contents (entries displaced from
the simulated TLB are also probed out of the hardware TLB).

Entries are tagged with an address-space id (ASID) so context switches do
not require a full flush, matching the R3000's PID field.  Replacement of
unwired entries uses the R3000's pseudo-random register, modeled here as a
deterministic counter cycling through the unwired range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, MachineError

#: R3000 geometry: 64 entries, the first 8 of which can be wired down for
#: kernel mappings and are never chosen by random replacement.
R3000_TLB_ENTRIES = 64
R3000_WIRED_ENTRIES = 8


@dataclass(frozen=True)
class TLBEntry:
    """One TLB entry: (ASID, VPN) -> PFN."""

    asid: int
    vpn: int
    pfn: int


class HardwareTLB:
    """A fully-associative, software-managed translation buffer."""

    def __init__(
        self,
        n_entries: int = R3000_TLB_ENTRIES,
        n_wired: int = R3000_WIRED_ENTRIES,
    ) -> None:
        if n_entries <= 0 or not 0 <= n_wired < n_entries:
            raise ConfigError(
                f"bad TLB geometry: {n_entries} entries, {n_wired} wired"
            )
        self.n_entries = n_entries
        self.n_wired = n_wired
        self._slots: list[TLBEntry | None] = [None] * n_entries
        self._index: dict[tuple[int, int], int] = {}
        self._random = n_wired  # the R3000 "random" register
        self.hits = 0
        self.misses = 0

    def probe(self, asid: int, vpn: int) -> int | None:
        """Look up a translation; returns the PFN or None on a miss."""
        slot = self._index.get((asid, vpn))
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        entry = self._slots[slot]
        assert entry is not None
        return entry.pfn

    def _advance_random(self) -> int:
        slot = self._random
        self._random += 1
        if self._random >= self.n_entries:
            self._random = self.n_wired
        return slot

    def insert(self, asid: int, vpn: int, pfn: int, wired: bool = False) -> None:
        """Refill an entry (what the software miss handler does).

        Wired insertions use the low slots and raise if all wired slots
        are occupied by other mappings; unwired insertions use the random
        register, evicting whatever that slot held.
        """
        key = (asid, vpn)
        if key in self._index:
            slot = self._index[key]
        elif wired:
            try:
                slot = next(
                    i for i in range(self.n_wired) if self._slots[i] is None
                )
            except StopIteration:
                raise MachineError("all wired TLB slots are occupied") from None
        else:
            slot = self._advance_random()
        old = self._slots[slot]
        if old is not None:
            del self._index[(old.asid, old.vpn)]
        self._slots[slot] = TLBEntry(asid, vpn, pfn)
        self._index[key] = slot

    def probe_out(self, asid: int, vpn: int) -> bool:
        """Invalidate one mapping if present; True when something was
        removed.  Tapeworm uses this to preserve the hardware-subset
        invariant when the simulated TLB displaces an entry, and when it
        sets a page trap (a valid-bit trap must not be shadowed by a
        stale hardware translation)."""
        slot = self._index.pop((asid, vpn), None)
        if slot is None:
            return False
        self._slots[slot] = None
        return True

    def flush_asid(self, asid: int) -> int:
        """Invalidate every mapping of one address space."""
        victims = [key for key in self._index if key[0] == asid]
        for key in victims:
            self._slots[self._index.pop(key)] = None
        return len(victims)

    def flush_all(self) -> None:
        self._slots = [None] * self.n_entries
        self._index.clear()

    def resident_keys(self) -> set[tuple[int, int]]:
        """The (asid, vpn) pairs currently translated by hardware."""
        return set(self._index)

    def __len__(self) -> int:
        return len(self._index)
