"""Trap kinds, trap frames, and the kernel trap dispatch table.

Every hardware event that enters the kernel is represented as a
:class:`TrapFrame`.  The kernel installs handlers on a
:class:`TrapDispatcher`; Tapeworm's miss handler is just one such handler
(for :data:`TrapKind.ECC_ERROR` or :data:`TrapKind.PAGE_INVALID`),
registered through the kernel exactly as the paper describes — "modified
kernel entry code" directing these traps to Tapeworm.

A handler returns the number of cycles it consumed, which the CPU adds to
the run's overhead.  This is how the paper's 246-cycle miss handler turns
into measured slowdown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro._types import Component
from repro.errors import MachineError
from repro.telemetry.session import active as _telemetry


class TrapKind(enum.Enum):
    """Hardware events that vector into the kernel."""

    ECC_ERROR = "ecc_error"
    PAGE_INVALID = "page_invalid"
    PAGE_FAULT = "page_fault"
    BREAKPOINT = "breakpoint"
    TLB_MISS = "tlb_miss"
    CLOCK_INTERRUPT = "clock_interrupt"
    DOUBLE_BIT_ERROR = "double_bit_error"


@dataclass(frozen=True)
class TrapFrame:
    """State pushed by the (simulated) hardware on a kernel entry."""

    kind: TrapKind
    tid: int
    component: Component
    va: int
    pa: int
    cycle: int


#: A trap handler consumes a frame and returns the cycles it spent.
TrapHandler = Callable[[TrapFrame], int]


class TrapDispatcher:
    """The kernel's trap vector table."""

    def __init__(self) -> None:
        self._handlers: dict[TrapKind, TrapHandler] = {}
        self.counts: dict[TrapKind, int] = {kind: 0 for kind in TrapKind}

    def install(self, kind: TrapKind, handler: TrapHandler) -> None:
        if kind in self._handlers:
            raise MachineError(f"a handler is already installed for {kind}")
        self._handlers[kind] = handler

    def replace(self, kind: TrapKind, handler: TrapHandler) -> TrapHandler | None:
        """Swap in a new handler, returning the old one (or None)."""
        old = self._handlers.get(kind)
        self._handlers[kind] = handler
        return old

    def uninstall(self, kind: TrapKind) -> None:
        if kind not in self._handlers:
            raise MachineError(f"no handler installed for {kind}")
        del self._handlers[kind]

    def installed(self, kind: TrapKind) -> bool:
        return kind in self._handlers

    def dispatch(self, frame: TrapFrame) -> int:
        """Deliver a trap; returns handler cycles (0 if unhandled)."""
        self.counts[frame.kind] += 1
        handler = self._handlers.get(frame.kind)
        cycles = 0 if handler is None else handler(frame)
        session = _telemetry()
        if session is not None:
            session.trace.trap(frame, cycles)
        return cycles

    def publish_metrics(self, metrics) -> None:
        """Copy dispatch totals into a metrics registry
        (``machine.traps.dispatched{kind=...}``)."""
        for kind, count in self.counts.items():
            if count:
                metrics.counter(
                    "machine.traps.dispatched", kind=kind.value
                ).inc(count)
