"""repro.sampling — interval sampling with statistical warmup.

Simulating every reference of every trial is the dominant cost of a
table sweep.  This subsystem cuts it the SimPoint way, on top of the
PR 5 stream store: profile the compiled stream into cheap per-interval
feature vectors, cluster intervals into phases, simulate only one or
two representatives per phase (fast-forwarding between them through
warm-state snapshots), and reassemble stratified estimates with
analytic and bootstrap confidence intervals.  Every sampled number is
stamped ``estimated`` with its CI in the run manifest — sampled and
exact results can never be confused downstream.
"""

from repro.sampling.cluster import PhaseClustering, cluster_intervals
from repro.sampling.estimator import (
    Estimate,
    bootstrap_estimate,
    estimate_run,
    exact_estimate,
    stratified_estimate,
)
from repro.sampling.plan import (
    DEFAULT_MAX_PHASES,
    DEFAULT_PER_PHASE,
    PhaseSample,
    SamplingPlan,
    build_plan,
)
from repro.sampling.profile import (
    FEATURE_NAMES,
    IntervalProfile,
    profile_addresses,
    profile_workload,
)
from repro.sampling.runner import (
    SampledRunResult,
    interval_measure,
    interval_trial_seed,
    measure_interval,
    run_sampled_trials,
)

__all__ = [
    "DEFAULT_MAX_PHASES",
    "DEFAULT_PER_PHASE",
    "Estimate",
    "FEATURE_NAMES",
    "IntervalProfile",
    "PhaseClustering",
    "PhaseSample",
    "SampledRunResult",
    "SamplingPlan",
    "bootstrap_estimate",
    "build_plan",
    "cluster_intervals",
    "estimate_run",
    "exact_estimate",
    "interval_measure",
    "interval_trial_seed",
    "measure_interval",
    "profile_addresses",
    "profile_workload",
    "run_sampled_trials",
    "stratified_estimate",
]
