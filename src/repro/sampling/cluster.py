"""Phase clustering: seeded k-means over interval features, BIC-picked k.

SimPoint's recipe, in pure numpy: standardize the feature matrix,
run k-means (k-means++ init from a seeded generator, Lloyd iterations to
convergence) for every k up to ``max_phases``, score each clustering
with the spherical-Gaussian BIC, and keep the smallest k whose BIC
reaches a fixed fraction of the best score.  Small k is a feature, not a
compromise: every extra phase costs at least one more simulated interval
per trial, so the selector deliberately prefers the coarsest clustering
that still explains the stream.

Everything is deterministic given ``seed`` — same features, same seed,
same phases — which is what lets sampled trials be content-addressed
farm jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: accept the smallest k whose BIC is at least this fraction of the best
#: (SimPoint uses 0.9)
BIC_THRESHOLD = 0.9

#: Lloyd iteration cap; convergence is typically much earlier
MAX_ITERATIONS = 64


@dataclass(frozen=True)
class PhaseClustering:
    """One accepted clustering: per-interval labels and its geometry."""

    k: int
    labels: np.ndarray        #: (n_intervals,) int64 phase ids, 0..k-1
    centroids: np.ndarray     #: (k, n_features) in standardized space
    inertia: float            #: sum of squared distances to centroids
    bic: float

    @property
    def phase_sizes(self) -> np.ndarray:
        """Interval count per phase (the stratum weights)."""
        return np.bincount(self.labels, minlength=self.k)


def standardize(features: np.ndarray) -> np.ndarray:
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std < 1e-12] = 1.0  # constant features carry no distance
    return (features - mean) / std


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 weighting."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # all remaining points coincide with a centroid already
            centroids[i:] = centroids[0]
            break
        probabilities = closest_sq / total
        centroids[i] = points[rng.choice(n, p=probabilities)]
        closest_sq = np.minimum(
            closest_sq, ((points - centroids[i]) ** 2).sum(axis=1)
        )
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return distances.argmin(axis=1)


def kmeans(
    points: np.ndarray, k: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, float]:
    """Seeded k-means; returns ``(centroids, labels, inertia)``."""
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    if k > len(points):
        raise ConfigError(f"cannot fit {k} clusters to {len(points)} points")
    rng = np.random.default_rng(seed)
    centroids = _kmeans_pp_init(points, k, rng)
    labels = _assign(points, centroids)
    for _ in range(MAX_ITERATIONS):
        for i in range(k):
            members = points[labels == i]
            if len(members):
                centroids[i] = members.mean(axis=0)
            else:
                # re-seat an empty cluster on the farthest point
                farthest = (
                    ((points - centroids[labels]) ** 2).sum(axis=1).argmax()
                )
                centroids[i] = points[farthest]
        new_labels = _assign(points, centroids)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    inertia = float(((points - centroids[labels]) ** 2).sum())
    return centroids, labels, inertia


def bic_score(points: np.ndarray, labels: np.ndarray, k: int, inertia: float) -> float:
    """Spherical-Gaussian BIC of one clustering (higher is better)."""
    n, d = points.shape
    if n <= k:
        return -np.inf
    variance = max(inertia / (d * (n - k)), 1e-12)
    sizes = np.bincount(labels, minlength=k).astype(np.float64)
    sizes = sizes[sizes > 0]
    log_likelihood = float(
        (sizes * np.log(sizes / n)).sum()
        - 0.5 * n * d * np.log(2.0 * np.pi * variance)
        - 0.5 * d * (n - k)
    )
    n_parameters = k * (d + 1)
    return log_likelihood - 0.5 * n_parameters * np.log(n)


def cluster_intervals(
    features: np.ndarray, max_phases: int, seed: int = 0
) -> PhaseClustering:
    """Cluster interval features into phases, selecting k by BIC.

    Fits k = 1..min(max_phases, n_intervals), scores each with the BIC,
    and returns the smallest k whose score reaches
    ``BIC_THRESHOLD`` x the best — SimPoint's "good enough, and small"
    rule.  One interval degenerates to a single phase.
    """
    if max_phases <= 0:
        raise ConfigError(f"max_phases must be positive, got {max_phases}")
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or not len(features):
        raise ConfigError("features must be a non-empty 2-D matrix")
    points = standardize(features)
    candidates: list[PhaseClustering] = []
    for k in range(1, min(max_phases, len(points)) + 1):
        centroids, labels, inertia = kmeans(points, k, seed=seed + k)
        candidates.append(
            PhaseClustering(
                k=k,
                labels=labels,
                centroids=centroids,
                inertia=inertia,
                bic=bic_score(points, labels, k, inertia),
            )
        )
    scores = np.array([c.bic for c in candidates])
    best = scores.max()
    if not np.isfinite(best):
        return candidates[0]
    # BIC is negative in practice; "within threshold of best" must work
    # on either sign, so compare distances from the best score instead
    span = best - scores.min()
    acceptable = (
        scores >= best - (1.0 - BIC_THRESHOLD) * span
        if span > 0
        else scores >= best
    )
    chosen = int(np.argmax(acceptable))  # smallest acceptable k
    return candidates[chosen]


def nearest_to_centroid(
    points: np.ndarray, labels: np.ndarray, centroid: np.ndarray, phase: int
) -> int:
    """Index (into ``points``) of the phase member nearest its centroid."""
    members = np.nonzero(labels == phase)[0]
    if not len(members):
        raise ConfigError(f"phase {phase} has no members")
    distances = ((points[members] - centroid) ** 2).sum(axis=1)
    return int(members[distances.argmin()])
