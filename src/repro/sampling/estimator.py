"""Reassemble sampled interval measurements into full-run estimates.

The plan's phases are sampling *strata*: phase ``p`` covers ``N_p`` of
the run's ``N`` intervals and contributes weight ``w_p = N_p / N``.
Each sampled interval yields a per-reference rate (misses per ref, traps
per ref, ...) — rates rather than raw counts, because the simulator
stops at chunk boundaries and measured intervals are never exactly
``interval_refs`` long.  The classical stratified estimator then gives

    value = total_refs x sum_p w_p mean_p(rate)
    var   = total_refs^2 x sum_p w_p^2 s_p^2 / n_p

with a Student-t confidence interval on pooled degrees of freedom, plus
a within-stratum bootstrap as the non-parametric cross-check.  Strata
sampled only once borrow the pooled variance of the others — wide and
honest beats narrow and wrong.

Every :class:`Estimate` carries ``exact=False`` and its CI into the run
manifest, so a sampled number can never masquerade as a measured one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigError

#: two-sided 95% Student-t critical values by degrees of freedom
#: (Abramowitz & Stegun table 26.10; >30 df uses the normal limit)
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_975 = 1.960

#: bootstrap replicates for the percentile CI
DEFAULT_BOOTSTRAP = 200

#: the per-interval counters the runner reports and this module estimates
METRIC_NAMES = ("misses", "traps", "overhead_cycles")


def t_critical(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom."""
    if df <= 0:
        return math.inf
    return _T_975.get(df, _Z_975)


@dataclass(frozen=True)
class Estimate:
    """One estimated full-run quantity with its confidence interval."""

    metric: str
    value: float
    ci_low: float
    ci_high: float
    method: str          #: "stratified-t", "bootstrap", or "exact"
    exact: bool = False
    n_samples: int = 0

    def __post_init__(self) -> None:
        if self.ci_low > self.ci_high:
            raise ConfigError(
                f"{self.metric}: ci_low {self.ci_low} > ci_high {self.ci_high}"
            )

    def brackets(self, truth: float) -> bool:
        """Does the interval contain ``truth``?"""
        return self.ci_low <= truth <= self.ci_high

    @property
    def ci_half_width_pct(self) -> float:
        """Half-width as a percent of the value (the reported error bar)."""
        if self.value == 0:
            return 0.0
        return 100.0 * (self.ci_high - self.ci_low) / 2.0 / abs(self.value)

    def scaled(self, factor: float, metric: str | None = None) -> "Estimate":
        """The estimate under a linear transform (e.g. cycles -> slowdown)."""
        lo, hi = sorted((self.ci_low * factor, self.ci_high * factor))
        return Estimate(
            metric=metric or self.metric,
            value=self.value * factor,
            ci_low=lo,
            ci_high=hi,
            method=self.method,
            exact=self.exact,
            n_samples=self.n_samples,
        )

    def to_manifest(self) -> dict:
        """The manifest ``estimates`` entry (schema v2)."""
        return {
            "value": float(self.value),
            "ci_low": float(self.ci_low),
            "ci_high": float(self.ci_high),
            "method": self.method,
            "exact": bool(self.exact),
        }


def exact_estimate(metric: str, value: float) -> Estimate:
    """Wrap a directly-measured quantity as a degenerate estimate."""
    return Estimate(
        metric=metric,
        value=float(value),
        ci_low=float(value),
        ci_high=float(value),
        method="exact",
        exact=True,
        n_samples=1,
    )


def _stratum_arrays(
    observations: Mapping[int, Sequence[float]],
    weights: Mapping[int, float],
) -> list[tuple[float, np.ndarray]]:
    strata = []
    for phase, values in sorted(observations.items()):
        if phase not in weights:
            raise ConfigError(f"phase {phase} has observations but no weight")
        values = np.asarray(values, dtype=np.float64)
        if not len(values):
            raise ConfigError(f"phase {phase} has no observations")
        strata.append((float(weights[phase]), values))
    if not strata:
        raise ConfigError("no observations to estimate from")
    return strata


def stratified_estimate(
    metric: str,
    observations: Mapping[int, Sequence[float]],
    weights: Mapping[int, float],
    scale: float,
) -> Estimate:
    """Analytic stratified estimate of ``scale x sum_p w_p mean_p``.

    ``observations`` maps phase -> per-reference rates; ``weights`` maps
    phase -> stratum weight (interval fraction); ``scale`` is the run's
    total reference count.
    """
    strata = _stratum_arrays(observations, weights)
    value = scale * sum(w * values.mean() for w, values in strata)

    # pooled variance backstops single-observation strata
    multi = [v for _, v in strata if len(v) >= 2]
    pooled = (
        sum(float(v.var(ddof=1)) * (len(v) - 1) for v in multi)
        / sum(len(v) - 1 for v in multi)
        if multi
        else 0.0
    )
    variance = 0.0
    for w, values in strata:
        s2 = float(values.var(ddof=1)) if len(values) >= 2 else pooled
        variance += w * w * s2 / len(values)
    df = sum(len(v) - 1 for _, v in strata)
    half = t_critical(max(df, 1)) * scale * math.sqrt(variance)
    n_samples = sum(len(v) for _, v in strata)
    return Estimate(
        metric=metric,
        value=value,
        ci_low=value - half,
        ci_high=value + half,
        method="stratified-t",
        exact=False,
        n_samples=n_samples,
    )


def bootstrap_estimate(
    metric: str,
    observations: Mapping[int, Sequence[float]],
    weights: Mapping[int, float],
    scale: float,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = 0,
) -> Estimate:
    """Percentile-bootstrap CI, resampling within each stratum."""
    if n_boot <= 0:
        raise ConfigError(f"n_boot must be positive, got {n_boot}")
    strata = _stratum_arrays(observations, weights)
    rng = np.random.default_rng(seed)
    replicates = np.zeros(n_boot, dtype=np.float64)
    for w, values in strata:
        resampled = values[rng.integers(len(values), size=(n_boot, len(values)))]
        replicates += w * resampled.mean(axis=1)
    replicates *= scale
    value = scale * sum(w * values.mean() for w, values in strata)
    lo, hi = np.percentile(replicates, [2.5, 97.5])
    # the point estimate always lies inside its own reported interval
    n_samples = sum(len(v) for _, v in strata)
    return Estimate(
        metric=metric,
        value=value,
        ci_low=float(min(lo, value)),
        ci_high=float(max(hi, value)),
        method="bootstrap",
        exact=False,
        n_samples=n_samples,
    )


def estimate_run(
    measurements: Sequence[Mapping[str, float]],
    weights: Mapping[int, float],
    total_refs: int,
    metrics: Sequence[str] = METRIC_NAMES,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = 0,
) -> dict[str, Estimate]:
    """Estimate every metric from raw interval measurements.

    Each measurement is one simulated interval of one trial:
    ``{"interval": i, "phase": p, "refs": r, "misses": m, ...}``.
    Returns ``metric`` (analytic) and ``metric.bootstrap`` entries for
    each requested metric.

    Observations are *clustered by interval* before estimation: every
    trial simulates the same selected intervals, so per-trial values of
    one interval are averaged first and the stratum variance is computed
    between interval means.  Pooling raw (trial, interval) values would
    shrink the CI with trial count while the dominant error — which
    intervals the plan happened to select — stayed fixed; the clustered
    CI stays honest about that.
    """
    if not measurements:
        raise ConfigError("no interval measurements to estimate from")
    estimates: dict[str, Estimate] = {}
    for metric in metrics:
        groups: dict[int, dict[int, list[float]]] = {}
        for m in measurements:
            refs = float(m["refs"])
            if refs <= 0:
                raise ConfigError("interval measurement with no references")
            groups.setdefault(int(m["phase"]), {}).setdefault(
                int(m["interval"]), []
            ).append(float(m[metric]) / refs)
        observations = {
            phase: [
                float(np.mean(rates))
                for _, rates in sorted(intervals.items())
            ]
            for phase, intervals in groups.items()
        }
        estimates[metric] = stratified_estimate(
            metric, observations, weights, float(total_refs)
        )
        estimates[f"{metric}.bootstrap"] = bootstrap_estimate(
            f"{metric}.bootstrap",
            observations,
            weights,
            float(total_refs),
            n_boot=n_boot,
            seed=seed,
        )
    return estimates
