"""Sampling plans: which intervals to simulate, and with what weights.

A :class:`SamplingPlan` is the frozen output of profile + cluster +
select: the interval geometry, the per-interval phase labels, and the
selected sample intervals.  Selection is stratified by phase:

* the interval nearest each phase centroid (SimPoint's representative)
  anchors the stratum, and
* ``per_phase - 1`` further intervals are drawn uniformly (seeded) from
  the remaining phase members, which is what gives the estimator an
  honest within-phase variance to build confidence intervals from.

Plans serialize to JSON (``repro sample plan --json``) so a plan can be
inspected, versioned, or handed to the farm; everything downstream —
warm boundaries, job keys, estimates — derives from the plan alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.sampling.cluster import (
    cluster_intervals,
    nearest_to_centroid,
    standardize,
)
from repro.sampling.profile import IntervalProfile

#: default samples per phase — three, so every stratum that can afford
#: it estimates its between-interval variance from more than one pair
#: (validated against exhaustive ground truth in
#: ``tests/property/test_sampling_estimates.py``; two is noticeably
#: flakier on heterogeneous phases)
DEFAULT_PER_PHASE = 3

#: default phase-count ceiling handed to the BIC selector
DEFAULT_MAX_PHASES = 6


@dataclass(frozen=True)
class PhaseSample:
    """One selected interval: its index, phase, and selection role."""

    interval: int
    phase: int
    role: str  #: "centroid" (nearest the phase centroid) or "random"


@dataclass(frozen=True)
class SamplingPlan:
    """The complete recipe for one workload's sampled trials."""

    workload: str
    task: str
    total_refs: int
    interval_refs: int
    n_intervals: int
    n_phases: int
    #: phase id of every interval, len == n_intervals
    labels: tuple[int, ...]
    samples: tuple[PhaseSample, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.labels) != self.n_intervals:
            raise ConfigError(
                f"{len(self.labels)} labels for {self.n_intervals} intervals"
            )
        if not self.samples:
            raise ConfigError("a sampling plan needs at least one sample")
        seen = {s.interval for s in self.samples}
        if len(seen) != len(self.samples):
            raise ConfigError("plan selects the same interval twice")
        for sample in self.samples:
            if not 0 <= sample.interval < self.n_intervals:
                raise ConfigError(
                    f"sample interval {sample.interval} outside "
                    f"[0, {self.n_intervals})"
                )

    # -- geometry helpers

    def phase_sizes(self) -> dict[int, int]:
        """Interval count per phase (stratum sizes N_p)."""
        sizes: dict[int, int] = {}
        for label in self.labels:
            sizes[label] = sizes.get(label, 0) + 1
        return sizes

    def samples_by_phase(self) -> dict[int, list[PhaseSample]]:
        by_phase: dict[int, list[PhaseSample]] = {}
        for sample in self.samples:
            by_phase.setdefault(sample.phase, []).append(sample)
        return by_phase

    def start_of(self, interval: int) -> int:
        return interval * self.interval_refs

    def boundaries(self) -> tuple[int, ...]:
        """Warm-snapshot offsets needed, ascending."""
        return tuple(
            sorted(self.start_of(s.interval) for s in self.samples)
        )

    @property
    def selected_refs(self) -> int:
        """References simulated per trial under this plan."""
        return len(self.samples) * self.interval_refs

    @property
    def selection_fraction(self) -> float:
        return len(self.samples) / self.n_intervals

    # -- serialization (the ``repro sample plan --json`` surface)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "task": self.task,
            "total_refs": self.total_refs,
            "interval_refs": self.interval_refs,
            "n_intervals": self.n_intervals,
            "n_phases": self.n_phases,
            "labels": list(self.labels),
            "samples": [
                {"interval": s.interval, "phase": s.phase, "role": s.role}
                for s in self.samples
            ],
            "seed": self.seed,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "SamplingPlan":
        try:
            return cls(
                workload=payload["workload"],
                task=payload["task"],
                total_refs=int(payload["total_refs"]),
                interval_refs=int(payload["interval_refs"]),
                n_intervals=int(payload["n_intervals"]),
                n_phases=int(payload["n_phases"]),
                labels=tuple(int(v) for v in payload["labels"]),
                samples=tuple(
                    PhaseSample(
                        interval=int(s["interval"]),
                        phase=int(s["phase"]),
                        role=str(s["role"]),
                    )
                    for s in payload["samples"]
                ),
                seed=int(payload.get("seed", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed sampling plan: {exc}") from exc


def build_plan(
    profile: IntervalProfile,
    max_phases: int = DEFAULT_MAX_PHASES,
    per_phase: int = DEFAULT_PER_PHASE,
    seed: int = 0,
) -> SamplingPlan:
    """Cluster a profile into phases and select sample intervals.

    ``per_phase`` caps samples per phase; phases smaller than that
    contribute every member (and are then measured exactly, with zero
    sampling variance).
    """
    if per_phase <= 0:
        raise ConfigError(f"per_phase must be positive, got {per_phase}")
    clustering = cluster_intervals(profile.features, max_phases, seed=seed)
    points = standardize(profile.features)
    rng = np.random.default_rng(seed)
    samples: list[PhaseSample] = []
    for phase in range(clustering.k):
        members = np.nonzero(clustering.labels == phase)[0]
        if not len(members):
            continue
        anchor = nearest_to_centroid(
            points, clustering.labels, clustering.centroids[phase], phase
        )
        chosen = [anchor]
        remaining = members[members != anchor]
        extra = min(per_phase - 1, len(remaining))
        if extra > 0:
            chosen.extend(
                int(i)
                for i in rng.choice(remaining, size=extra, replace=False)
            )
        samples.extend(
            PhaseSample(
                interval=int(interval),
                phase=phase,
                role="centroid" if interval == anchor else "random",
            )
            for interval in sorted(chosen)
        )
    samples.sort(key=lambda s: s.interval)
    return SamplingPlan(
        workload=profile.workload,
        task=profile.task,
        total_refs=profile.total_refs,
        interval_refs=profile.interval_refs,
        n_intervals=profile.n_intervals,
        n_phases=clustering.k,
        labels=tuple(int(label) for label in clustering.labels),
        samples=tuple(samples),
        seed=seed,
    )
