"""Interval profiling: cheap per-interval feature vectors, one pass.

A compiled reference stream (PR 5) is a flat ``int64`` address array.
The profiler slices it into fixed-size intervals and computes, for each,
a small feature vector that captures *what the memory system would see*
without simulating anything:

* **new-line rate** — first-ever touches of a cache line per reference
  (cold-miss pressure);
* **unique-line rate** — distinct lines touched inside the interval per
  reference (working-set size, normalized);
* **reuse-interval sketch** — a log-bucketed histogram of the distance
  (in references) back to each line's previous touch, the cheap stand-in
  for a reuse-distance profile: temporal locality at a glance;
* **stride mix** — mean log2 jump between successive references
  (spatial locality / streaming behavior).

Everything is computed in one vectorized pass over the whole stream:
previous-occurrence positions come from a stable argsort by line (the
same grouped-set idiom as :mod:`repro.caches.kernels`), and per-interval
aggregation is ``np.bincount`` over ``position // interval_refs``.
Profiling is therefore orders of magnitude cheaper than simulating the
stream, which is the entire point: phases are detected on features, and
only representatives are simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: upper edges (exclusive) of the log-bucketed reuse-interval histogram,
#: in references; the final bucket is open-ended
REUSE_BUCKET_EDGES = (8, 64, 512, 4096)

#: feature vector layout (order matters: it is the clustering space)
FEATURE_NAMES = (
    "new_line_rate",
    "unique_line_rate",
    "mean_log2_stride",
    *(f"reuse_le_{edge}" for edge in REUSE_BUCKET_EDGES),
    "reuse_far",
)


@dataclass(frozen=True)
class IntervalProfile:
    """Per-interval features of one stream, plus the slicing geometry."""

    workload: str
    task: str
    interval_refs: int
    n_intervals: int
    total_refs: int
    features: np.ndarray  #: (n_intervals, len(FEATURE_NAMES)) float64

    def __post_init__(self) -> None:
        if self.features.shape != (self.n_intervals, len(FEATURE_NAMES)):
            raise ConfigError(
                f"feature matrix shape {self.features.shape} does not match "
                f"{self.n_intervals} intervals x {len(FEATURE_NAMES)} features"
            )

    def rows(self) -> list[dict[str, float]]:
        """The feature matrix as one dict per interval (CLI/JSON view)."""
        return [
            dict(zip(FEATURE_NAMES, map(float, row)))
            for row in self.features
        ]


def _previous_occurrence(lines: np.ndarray) -> np.ndarray:
    """For each position, the position of the same line's previous
    occurrence, or -1 for a first-ever touch.  Stable argsort groups
    equal lines while preserving position order inside each group."""
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    same_as_predecessor = sorted_lines[1:] == sorted_lines[:-1]
    prev[order[1:][same_as_predecessor]] = order[:-1][same_as_predecessor]
    return prev


def profile_addresses(
    addresses: np.ndarray,
    interval_refs: int,
    line_bytes: int = 16,
    workload: str = "?",
    task: str = "?",
) -> IntervalProfile:
    """Profile a flat address array into per-interval feature vectors.

    ``addresses`` longer than a whole number of intervals keeps its tail
    in the last interval's statistics (intervals are equal-size except
    possibly the last); the estimator scales by true reference counts,
    so the geometry here only has to match the plan built from it.
    """
    if interval_refs <= 0:
        raise ConfigError(f"interval_refs must be positive, got {interval_refs}")
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ConfigError(f"line_bytes must be a power of two, got {line_bytes}")
    addresses = np.ascontiguousarray(addresses, dtype=np.int64)
    total_refs = len(addresses)
    if total_refs == 0:
        raise ConfigError("cannot profile an empty stream")
    n_intervals = max(1, total_refs // interval_refs)

    line_shift = line_bytes.bit_length() - 1
    lines = addresses >> line_shift
    positions = np.arange(total_refs, dtype=np.int64)
    interval_of = np.minimum(positions // interval_refs, n_intervals - 1)
    refs_per_interval = np.bincount(interval_of, minlength=n_intervals)

    prev = _previous_occurrence(lines)
    new_line = prev < 0
    reuse = positions - prev  # meaningful only where prev >= 0

    # first touch of a line *within its interval*: either first ever, or
    # the previous touch happened in an earlier interval
    interval_start = interval_of * interval_refs
    first_in_interval = new_line | (prev < interval_start)

    features = np.zeros((n_intervals, len(FEATURE_NAMES)), dtype=np.float64)
    denominator = np.maximum(refs_per_interval, 1).astype(np.float64)
    features[:, 0] = (
        np.bincount(interval_of[new_line], minlength=n_intervals) / denominator
    )
    features[:, 1] = (
        np.bincount(interval_of[first_in_interval], minlength=n_intervals)
        / denominator
    )
    strides = np.abs(np.diff(addresses, prepend=addresses[0]))
    features[:, 2] = (
        np.bincount(
            interval_of, weights=np.log2(1.0 + strides), minlength=n_intervals
        )
        / denominator
    )

    reused = ~new_line
    edges = np.array(REUSE_BUCKET_EDGES, dtype=np.int64)
    bucket = np.searchsorted(edges, reuse[reused], side="left")
    flat = interval_of[reused] * (len(edges) + 1) + bucket
    histogram = np.bincount(
        flat, minlength=n_intervals * (len(edges) + 1)
    ).reshape(n_intervals, len(edges) + 1)
    features[:, 3:] = histogram / denominator[:, None]

    return IntervalProfile(
        workload=workload,
        task=task,
        interval_refs=interval_refs,
        n_intervals=n_intervals,
        total_refs=total_refs,
        features=features,
    )


def profile_workload(
    spec,
    total_refs: int,
    interval_refs: int,
    task_name: str | None = None,
    include_data_refs: bool = False,
    line_bytes: int = 16,
) -> IntervalProfile:
    """Profile one workload's primary task stream over a run's budget.

    The trap-driven run interleaves several task streams under the
    scheduler, but its phase structure is driven by the underlying
    per-task streams; the primary user task's stream is the cheap,
    deterministic proxy the clusterer operates on.  With a stream
    session active the compiled blob is memory-mapped straight out of
    the store; otherwise the stream is compiled in memory for the
    profile pass only.
    """
    from repro.streams.compile import build_live_stream, compile_stream
    from repro.streams.session import active as _streams

    task = task_name or spec.primary_task
    session = _streams()
    if session is not None:
        stream = session.stream_for(spec, task, total_refs, include_data_refs)
        addresses = stream.backing[:total_refs]
    else:
        addresses = compile_stream(
            build_live_stream(spec.name, spec.task(task), include_data_refs),
            total_refs,
        )
    return profile_addresses(
        addresses,
        interval_refs,
        line_bytes=line_bytes,
        workload=spec.name,
        task=task,
    )
