"""Sampled trial runner: simulate only the plan's intervals.

The expensive part of a trap-driven trial is *executing references*.  A
sampled trial executes only the plan's selected intervals; everything in
between is fast-forwarded functionally through the PR 5 warm-state
snapshot machinery: the warmup prefix up to each interval boundary runs
once under a shared warm seed, its state is snapshotted, and every trial
forks the snapshot instead of re-simulating the prefix.  Boundary
snapshots are built incrementally — one pass over the stream creates
all of them — so the warm cost is paid once and amortized across every
trial and interval.

Per-trial variance is preserved the same way ``run_warm_trials`` does
it: each fork re-arms the scheduler jitter, system-tick jitter and
frame-allocation RNGs with a seed derived from ``(trial, interval)``,
so sampled trials vary against each other exactly as full trials do.

Fault-injection sessions bypass sampling entirely (and loudly):
injected faults mutate warmed state mid-run, and an estimate built from
shared snapshots would leak one trial's damage into every other — the
same reasoning that bypasses PR 5 snapshot reuse, except here there is
no correct slow path, so it is an error, not a fallback.

Intervals fan out through the farm as cached jobs (measure
``sampling.interval``); each job's result is a small JSON dict of raw
interval counters, and the estimator reassembles them master-side.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

from repro.core.tapeworm import TapewormConfig
from repro.errors import ConfigError
from repro.faults.session import active as _faults
from repro.harness.runner import (
    RunOptions,
    _boot_execution,
    _describe,
)
from repro.harness.slowdown import tapeworm_slowdown
from repro.sampling.estimator import (
    DEFAULT_BOOTSTRAP,
    Estimate,
    estimate_run,
)
from repro.sampling.plan import SamplingPlan
from repro.streams.keys import fingerprint_payload
from repro.streams.session import active as _streams
from repro.telemetry.profile import phase
from repro.telemetry.session import active as _telemetry
from repro.telemetry.spans import span as _span
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:
    from repro.farm.pool import Farm

#: seed stride between intervals of one trial — larger than any trial
#: ladder, so (trial, interval) seeds never collide across trials
_INTERVAL_SEED_STRIDE = 0x9E37


def interval_trial_seed(trial_seed: int, interval: int) -> int:
    """The measurement seed for one interval of one trial."""
    return trial_seed + _INTERVAL_SEED_STRIDE * (interval + 1)


def _plan_warm_base(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    warm_options: RunOptions,
    plan: SamplingPlan,
) -> str:
    """Identity of this plan's warmed prefix family.

    Mirrors ``_warm_snapshot_key``: everything that shaped the prefix is
    folded in — workload, Tapeworm config (including its sampling seed),
    the warm run options (which carry the shared warm seed as their
    ``trial_seed``) and the interval geometry.  Offsets are appended per
    boundary, so one base covers the whole snapshot family.
    """
    return fingerprint_payload(
        {
            "kind": "interval-snapshot",
            "workload": spec.name,
            "tapeworm": tw_config,
            "options": warm_options,
            "interval_refs": plan.interval_refs,
        }
    )


def _warm_to(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    options: RunOptions,
    plan: SamplingPlan,
    start: int,
    warm_seed: int,
) -> tuple[object, int]:
    """An execution warmed to reference offset ``start``.

    Returns ``(execution, warm_refs_run)`` where the second element
    counts references actually simulated for warming (zero on a full
    snapshot hit).  With a stream session active, every plan boundary
    passed through on the way is snapshotted, so later intervals (and
    later trials) fork instead of replaying; without one, the prefix is
    replayed fresh — correct, merely unamortized.
    """
    warm_options = replace(options, trial_seed=warm_seed)
    if start == 0:
        execution = _boot_execution(spec, tw_config, warm_options)
        execution.apply_attributes()
        return execution, 0
    with phase("sampling.boundary_warm"):
        session = _streams()
        if session is None:
            execution = _boot_execution(spec, tw_config, warm_options)
            execution.apply_attributes()
            execution.run(stop_after_refs=start)
            return execution, execution.executed_refs
        base = _plan_warm_base(spec, tw_config, warm_options, plan)
        execution = session.snapshots.fork(f"{base}:{start}")
        if execution is not None:
            return execution, 0
        # resume from the nearest earlier interval-start snapshot, if
        # any (any interval start is a family member, not just plan
        # boundaries — exhaustive validation sweeps measure every
        # interval)
        starts = [
            i * plan.interval_refs for i in range(1, plan.n_intervals)
        ]
        position = 0
        earlier = [
            b for b in starts
            if 0 < b < start and f"{base}:{b}" in session.snapshots
        ]
        if earlier:
            position = max(earlier)
            execution = session.snapshots.fork(f"{base}:{position}")
        if execution is None:
            execution = _boot_execution(spec, tw_config, warm_options)
            execution.apply_attributes()
            position = 0
        resumed_at = execution.executed_refs
        # advance to start, snapshotting every plan boundary passed
        # through and the destination itself, so later intervals and
        # trials fork
        stops = sorted(
            {b for b in plan.boundaries() if position < b <= start} | {start}
        )
        for boundary in stops:
            execution.run(stop_after_refs=boundary)
            key = f"{base}:{boundary}"
            if key not in session.snapshots:
                session.snapshots.put(key, copy.deepcopy(execution))
        return execution, execution.executed_refs - resumed_at


def measure_interval(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    options: RunOptions,
    plan: SamplingPlan,
    interval: int,
    trial_seed: int,
    warm_seed: int = 0,
) -> dict[str, float]:
    """Simulate one selected interval of one trial; raw counters only.

    The returned dict is JSON-encodable by construction — it is also the
    farm job payload — and reports *deltas* over the interval: reference
    count, estimated misses, traps taken, and Tapeworm overhead cycles.
    ``refs`` is the measured count (chunk boundaries overshoot), which
    is why the estimator works in per-reference rates.
    """
    if not 0 <= interval < plan.n_intervals:
        raise ConfigError(
            f"interval {interval} outside [0, {plan.n_intervals})"
        )
    start = plan.start_of(interval)
    end = start + plan.interval_refs
    if interval == plan.n_intervals - 1:
        end = max(end, plan.total_refs)  # the last interval owns the tail
    execution, warm_refs = _warm_to(
        spec, tw_config, options, plan, start, warm_seed
    )
    execution.reseed_for_measurement(interval_trial_seed(trial_seed, interval))
    tapeworm = execution.kernel.tapeworm
    refs_before = execution.executed_refs
    misses_before = tapeworm.estimated_total_misses()
    traps_before = execution.totals.traps
    overhead_before = tapeworm.overhead_cycles
    with _span(
        "sampling.measure_interval", interval=interval, start=start, end=end
    ):
        execution.run(stop_after_refs=end)
    refs = execution.executed_refs - refs_before
    if refs <= 0:
        raise ConfigError(
            f"interval {interval} measured no references — interval_refs "
            f"({plan.interval_refs}) must exceed chunk_refs "
            f"({options.chunk_refs})"
        )
    return {
        "interval": interval,
        "phase": int(plan.labels[interval]),
        "refs": int(refs),
        "misses": float(tapeworm.estimated_total_misses() - misses_before),
        "traps": int(execution.totals.traps - traps_before),
        "overhead_cycles": int(tapeworm.overhead_cycles - overhead_before),
        "warm_refs": int(warm_refs),
    }


def interval_measure(
    seed: int,
    workload: str,
    tapeworm: TapewormConfig,
    options: RunOptions,
    plan: SamplingPlan | Mapping,
    interval: int,
    warm_seed: int = 0,
) -> dict[str, float]:
    """Farm measure (``sampling.interval``): one interval of one trial.

    ``seed`` is the trial seed; ``options.trial_seed`` is ignored so two
    trials' jobs differ only by seed and the cache keys stay honest.
    """
    from repro.workloads.registry import get_workload

    if isinstance(plan, Mapping):
        plan = SamplingPlan.from_dict(dict(plan))
    spec = get_workload(workload)
    return measure_interval(
        spec,
        tapeworm,
        replace(options, trial_seed=seed),
        plan,
        interval,
        trial_seed=seed,
        warm_seed=warm_seed,
    )


@dataclass(frozen=True)
class SampledRunResult:
    """One workload's sampled experiment: estimates plus provenance."""

    workload: str
    configuration: str
    plan: SamplingPlan
    n_trials: int
    estimates: dict[str, Estimate]
    #: raw per-(trial, interval) measurements, in job order
    measurements: tuple[dict, ...]
    #: references actually simulated inside measured intervals
    refs_simulated: int
    #: references simulated to build warm boundary state (amortized)
    warm_refs: int

    @property
    def exact_refs(self) -> int:
        """What the same experiment costs without sampling."""
        return self.n_trials * self.plan.total_refs

    @property
    def total_refs_run(self) -> int:
        return self.refs_simulated + self.warm_refs

    @property
    def refs_reduction(self) -> float:
        """The headline: exact refs over sampled refs (>= 1 is a win)."""
        if self.total_refs_run == 0:
            return 0.0
        return self.exact_refs / self.total_refs_run

    def estimates_manifest(self) -> dict[str, dict]:
        """The run manifest's ``estimates`` block (schema v2)."""
        return {
            name: estimate.to_manifest()
            for name, estimate in sorted(self.estimates.items())
        }


def _validate_sampled_args(
    spec: WorkloadSpec, options: RunOptions, plan: SamplingPlan
) -> None:
    if _faults() is not None:
        raise ConfigError(
            "sampled trials cannot run under a fault-injection session: "
            "injected faults mutate shared warm state (run exact trials "
            "for fault experiments)"
        )
    if plan.workload != spec.name:
        raise ConfigError(
            f"plan is for workload {plan.workload!r}, not {spec.name!r}"
        )
    if plan.total_refs != options.total_refs:
        raise ConfigError(
            f"plan covers {plan.total_refs} refs but options request "
            f"{options.total_refs}"
        )
    if plan.interval_refs < options.chunk_refs:
        raise ConfigError(
            f"interval_refs ({plan.interval_refs}) must be at least "
            f"chunk_refs ({options.chunk_refs})"
        )


def run_sampled_trials(
    spec: WorkloadSpec,
    tw_config: TapewormConfig,
    options: RunOptions,
    plan: SamplingPlan,
    n_trials: int,
    base_seed: int = 0,
    warm_seed: int = 0,
    farm: "Farm | None" = None,
    n_boot: int = DEFAULT_BOOTSTRAP,
) -> SampledRunResult:
    """N sampled trials of one configuration, reassembled into estimates.

    Serially, intervals run in (trial, interval) order against the
    in-process snapshot store; with a ``farm``, each (trial, interval)
    pair is one cached job and workers amortize warm state per process.
    Either way the estimator sees the same measurement multiset.
    """
    if n_trials <= 0:
        raise ConfigError(f"n_trials must be positive, got {n_trials}")
    _validate_sampled_args(spec, options, plan)
    intervals = [s.interval for s in plan.samples]
    if farm is not None:
        from repro.farm.jobs import Job

        session = _streams()
        if session is not None:
            session.precompile(
                spec, options.total_refs, options.include_data_refs
            )
        jobs = [
            Job(
                measure="sampling.interval",
                params={
                    "workload": spec.name,
                    "tapeworm": tw_config,
                    "options": replace(options, trial_seed=0),
                    "plan": plan.to_dict(),
                    "interval": interval,
                    "warm_seed": warm_seed,
                },
                seed=base_seed + trial,
            )
            for trial in range(n_trials)
            for interval in intervals
        ]
        measurements = tuple(farm.run_jobs(jobs))
    else:
        measurements = tuple(
            measure_interval(
                spec,
                tw_config,
                replace(options, trial_seed=base_seed + trial),
                plan,
                interval,
                trial_seed=base_seed + trial,
                warm_seed=warm_seed,
            )
            for trial in range(n_trials)
            for interval in intervals
        )
    sizes = plan.phase_sizes()
    weights = {
        phase: count / plan.n_intervals for phase, count in sizes.items()
    }
    estimates = estimate_run(
        measurements,
        weights,
        options.total_refs,
        n_boot=n_boot,
        seed=base_seed,
    )
    # slowdown is a linear rescale of overhead cycles, CI included
    per_cycle = tapeworm_slowdown(1.0, spec, options.total_refs)
    estimates["slowdown"] = estimates["overhead_cycles"].scaled(
        per_cycle, "slowdown"
    )
    result = SampledRunResult(
        workload=spec.name,
        configuration=_describe(tw_config) + ", interval-sampled",
        plan=plan,
        n_trials=n_trials,
        estimates=estimates,
        measurements=measurements,
        refs_simulated=sum(int(m["refs"]) for m in measurements),
        warm_refs=sum(int(m["warm_refs"]) for m in measurements),
    )
    _publish_metrics(result)
    return result


def _publish_metrics(result: SampledRunResult) -> None:
    """Fold one sampled run into the telemetry registry (``sampling.*``)."""
    session = _telemetry()
    if session is None:
        return
    metrics = session.metrics
    labels = {"workload": result.workload}
    metrics.counter("sampling.runs", **labels).inc()
    metrics.counter("sampling.trials", **labels).inc(result.n_trials)
    metrics.counter("sampling.intervals_simulated", **labels).inc(
        len(result.measurements)
    )
    metrics.counter("sampling.refs_simulated", **labels).inc(
        result.refs_simulated
    )
    metrics.counter("sampling.warm_refs", **labels).inc(result.warm_refs)
    metrics.counter("sampling.refs_skipped", **labels).inc(
        max(0, result.exact_refs - result.total_refs_run)
    )
    metrics.gauge("sampling.phases", **labels).set(result.plan.n_phases)
    metrics.gauge("sampling.refs_reduction", **labels).set(
        round(result.refs_reduction, 3)
    )
