"""Compiled reference streams: content-addressed store, zero-copy farm
transport, and warm-state snapshots.

The trap-driven harness spends much of a trial regenerating reference
streams that are *identical across trials* — stream content depends
only on ``(workload, task)``, never the trial seed.  This package
materializes each stream once as an ``int64`` ``.npy`` blob under
``.stream-cache/``, keyed by a SHA-256 of its generating spec, and
replays it via read-only memory maps everywhere else: later runs, farm
workers (which receive store keys, not pickled arrays), and warm-state
snapshot forks that skip a declared warmup prefix entirely.

Everything is gated on a process-wide session
(:func:`repro.streams.session.active`); with no session the simulator
behaves exactly as before, and with one the results are bit-identical —
only faster.
"""

from repro.streams.compile import (
    CompiledStream,
    build_live_stream,
    compile_stream,
)
from repro.streams.keys import (
    MIX_GEOMETRY,
    STREAM_CODE_VERSION,
    STREAM_MARGIN,
    compile_refs_for,
    stream_descriptor,
    stream_fingerprint,
)
from repro.streams.session import (
    StreamSession,
    activate,
    active,
    deactivate,
    enabled,
)
from repro.streams.snapshots import SnapshotStore, WarmupPlan
from repro.streams.store import StreamStore
from repro.streams.transport import (
    ShmArena,
    ShmSegment,
    StreamTransport,
    transported_execute,
)

__all__ = [
    "CompiledStream",
    "MIX_GEOMETRY",
    "STREAM_CODE_VERSION",
    "STREAM_MARGIN",
    "ShmArena",
    "ShmSegment",
    "SnapshotStore",
    "StreamSession",
    "StreamStore",
    "StreamTransport",
    "WarmupPlan",
    "activate",
    "active",
    "build_live_stream",
    "compile_refs_for",
    "compile_stream",
    "deactivate",
    "enabled",
    "stream_descriptor",
    "stream_fingerprint",
    "transported_execute",
]
