"""Compiling live generator streams into flat address arrays.

The generators in :mod:`repro.workloads.locality` have the *prefix
property*: their output sequence is independent of how it is chunked —
``BlockLoopStream`` draws a new template exactly when its pending queue
runs dry, and ``MixedStream`` interleaves on a fixed period with a
leftover buffer — so draining the first N references once and replaying
them by slicing is bit-identical to generating them chunk by chunk.
``tests/streams/test_bit_equality.py`` pins that property for every
registered workload.

:class:`CompiledStream` is the replay wrapper: a cursor over a backing
array (typically a read-only memory map from the store).  If a run asks
for more references than were compiled — possible only if the caller's
budget estimate was wrong, since the store compiles ``total_refs +
STREAM_MARGIN`` — it falls back to a live generator fast-forwarded to
the cursor, which is unconditionally correct, just slower.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.workloads.base import TaskSpec
from repro.workloads.locality import BlockLoopStream, MixedStream

#: chunk size used when draining a generator into a compiled array —
#: large enough to amortize per-call overhead, small enough to keep the
#: working buffer cache-friendly
COMPILE_CHUNK_REFS = 65_536


def build_live_stream(
    spec_name: str, task: TaskSpec, include_data_refs: bool
) -> BlockLoopStream | MixedStream:
    """The generator the trap-driven harness would build natively."""
    stream = task.build_stream(spec_name)
    if include_data_refs:
        data = task.build_data_stream(spec_name)
        if data is not None:
            return MixedStream(stream, data)
    return stream


def compile_stream(
    stream: BlockLoopStream | MixedStream, refs: int
) -> np.ndarray:
    """Drain ``refs`` references from ``stream`` into one int64 array."""
    if refs <= 0:
        raise ConfigError(f"refs must be positive, got {refs}")
    pieces = []
    remaining = refs
    while remaining > 0:
        n = min(COMPILE_CHUNK_REFS, remaining)
        pieces.append(np.asarray(stream.next_chunk(n), dtype=np.int64))
        remaining -= n
    compiled = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]
    return np.ascontiguousarray(compiled, dtype=np.int64)


class CompiledStream:
    """Replay cursor over a precompiled address array.

    Duck-types the one method the harness and tracer use
    (``next_chunk``).  Slices of a memory-mapped backing array are
    views — no copy, no page touched until the simulator reads it.

    Deep copies (taken when a warm-state snapshot captures an
    execution) share the backing array and copy only the cursor: the
    array is immutable replay data, identical across forks by
    construction.
    """

    def __init__(
        self,
        backing: np.ndarray,
        fallback_factory: Callable[[], BlockLoopStream | MixedStream]
        | None = None,
    ) -> None:
        if backing.ndim != 1:
            raise ConfigError("compiled streams must be 1-D")
        self.backing = backing
        self.cursor = 0
        self._fallback_factory = fallback_factory
        self._fallback: BlockLoopStream | MixedStream | None = None

    def next_chunk(self, n_refs: int) -> np.ndarray:
        if n_refs < 0:
            raise ConfigError(f"n_refs must be non-negative, got {n_refs}")
        if self._fallback is not None:
            return self._fallback.next_chunk(n_refs)
        end = self.cursor + n_refs
        if end <= len(self.backing):
            chunk = self.backing[self.cursor:end]
            self.cursor = end
            return chunk
        # Overflow: the run outlasted the compiled prefix.  Rebuild the
        # live generator, fast-forward it past everything already
        # replayed, and delegate from here on — bit-identical to having
        # generated live all along (the prefix property again).
        if self._fallback_factory is None:
            raise ConfigError(
                f"compiled stream exhausted at ref {self.cursor} "
                f"(+{n_refs} requested, {len(self.backing)} compiled) "
                "and no fallback generator is available"
            )
        fallback = self._fallback_factory()
        skip = self.cursor
        while skip > 0:
            step = min(COMPILE_CHUNK_REFS, skip)
            fallback.next_chunk(step)
            skip -= step
        self._fallback = fallback
        return self._fallback.next_chunk(n_refs)

    def __deepcopy__(self, memo: dict) -> "CompiledStream":
        if self._fallback is not None:
            # Once live, the stream carries generator state; fall back
            # to a true deep copy of everything.
            import copy

            clone = CompiledStream(self.backing, self._fallback_factory)
            clone.cursor = self.cursor
            clone._fallback = copy.deepcopy(self._fallback, memo)
            memo[id(self)] = clone
            return clone
        clone = CompiledStream(self.backing, self._fallback_factory)
        clone.cursor = self.cursor
        memo[id(self)] = clone
        return clone
