"""Content-addressed identities for compiled reference streams.

A compiled stream is fully determined by the *generating spec*: the
workload name, the task name, the task's CRC-derived stream seed, the
exact procedure tables (instruction and — when data references are
interleaved — data), the deterministic mix geometry, and the number of
references materialized.  :func:`stream_fingerprint` reduces all of that
to a SHA-256 hex digest over a canonical JSON encoding (reusing the
farm's :func:`~repro.farm.jobs.canonical`), salted with a code-version
string so every blob in the store is invalidated wholesale whenever
stream-generation semantics change.

Keys are pure content addresses: two processes (or two machines) that
agree on the spec compute the same key and can share one on-disk blob.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.farm.jobs import canonical
from repro.workloads.base import WorkloadSpec

#: Salt mixed into every stream key.  Bump the version suffix whenever a
#: change alters what ``BlockLoopStream``/``MixedStream`` generate for a
#: given spec — stale blobs then stop matching and are recompiled
#: instead of silently replayed.
STREAM_CODE_VERSION = "repro-streams-v1"

#: MixedStream's deterministic interleave geometry (instr_run, data_run).
#: Part of the key: changing the mix changes the compiled sequence.
MIX_GEOMETRY = (48, 16)

#: Extra references compiled beyond a run's ``total_refs`` so per-phase
#: rounding can never exhaust a blob mid-run (the replay wrapper falls
#: back to live generation if it somehow does).
STREAM_MARGIN = 8192


def compile_refs_for(total_refs: int) -> int:
    """Blob length used for a trap-driven run of ``total_refs``."""
    return int(total_refs) + STREAM_MARGIN


def stream_descriptor(
    spec: WorkloadSpec, task_name: str, include_data_refs: bool
) -> dict[str, Any]:
    """The canonical generating spec of one task's reference stream."""
    task = spec.task(task_name)
    descriptor: dict[str, Any] = {
        "workload": spec.name,
        "task": task_name,
        "seed": task.stream_seed(spec.name),
        "procedures": canonical(list(task.procedures())),
    }
    if include_data_refs and task.data_shapes:
        descriptor["data_procedures"] = canonical(list(task.data_procedures()))
        descriptor["data_seed"] = task.stream_seed(spec.name) ^ 0xDA7A
        descriptor["mix"] = list(MIX_GEOMETRY)
    return descriptor


def fingerprint_payload(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest over a canonical JSON encoding of ``payload``."""
    blob = json.dumps(canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def stream_fingerprint(
    spec: WorkloadSpec,
    task_name: str,
    refs: int,
    include_data_refs: bool = False,
    salt: str = STREAM_CODE_VERSION,
) -> str:
    """The store key of one ``(workload, task, refs, data?)`` stream."""
    return fingerprint_payload(
        {
            "stream": stream_descriptor(spec, task_name, include_data_refs),
            "refs": int(refs),
            "include_data_refs": bool(include_data_refs),
            "salt": salt,
        }
    )
