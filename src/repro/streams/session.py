"""The process-wide stream session — compiled-stream reuse as a gate.

Mirrors :mod:`repro.telemetry.session` and :mod:`repro.faults.session`:
one module-level slot, read with a ``None`` check at every integration
point (the harness's stream construction, the Pixie tracer, the farm
worker entry).  With no session active, every consumer builds its
streams live exactly as before — the store cannot change results when
it is off, and ``tests/streams/test_bit_equality.py`` pins that it does
not change them when it is *on* either.

Resolution order for a requested stream:

1. the in-process memo (this session already compiled or mapped it);
2. a shared memory attachment (farm worker, store disabled on master);
3. the on-disk store (memory-mapped, verified once);
4. compile it live — and persist it, so the next process maps instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import StreamStoreError
from repro.streams.compile import (
    CompiledStream,
    build_live_stream,
    compile_stream,
)
from repro.streams.keys import (
    STREAM_CODE_VERSION,
    compile_refs_for,
    stream_descriptor,
    stream_fingerprint,
)
from repro.streams.snapshots import SnapshotStore
from repro.streams.store import StreamStore
from repro.streams.transport import ShmArena, ShmSegment, StreamTransport
from repro.workloads.base import WorkloadSpec


class StreamSession:
    """One process's compiled-stream state: store, memo, snapshots."""

    def __init__(
        self,
        store: StreamStore | None = None,
        attachments: dict[str, np.ndarray] | None = None,
        salt: str = STREAM_CODE_VERSION,
    ) -> None:
        self.store = store if store is not None else StreamStore()
        self.salt = salt
        #: arrays attached from the farm master's shared memory segments
        self.attachments: dict[str, np.ndarray] = dict(attachments or {})
        #: arrays this process already holds (compiled or mapped)
        self._memo: dict[str, np.ndarray] = {}
        self.snapshots = SnapshotStore()
        self.memo_hits = 0
        self.shm_hits = 0
        self.compiles = 0
        self.compiled_refs = 0
        self._arena: ShmArena | None = None
        self._published: dict[tuple[str, ...], int] = {}

    # -- the lookup path

    def stream_for(
        self,
        spec: WorkloadSpec,
        task_name: str,
        total_refs: int,
        include_data_refs: bool = False,
    ) -> CompiledStream:
        """A replay cursor over the compiled stream for one task.

        ``total_refs`` is the run's budget; the compiled blob carries a
        safety margin beyond it (see :func:`compile_refs_for`), and the
        returned :class:`CompiledStream` falls back to live generation
        in the (never expected) case the margin is exceeded.
        """
        refs = compile_refs_for(total_refs)
        key = stream_fingerprint(
            spec, task_name, refs, include_data_refs, salt=self.salt
        )
        task = spec.task(task_name)

        def fallback():
            return build_live_stream(spec.name, task, include_data_refs)

        array = self._memo.get(key)
        if array is not None:
            self.memo_hits += 1
            return CompiledStream(array, fallback)
        array = self.attachments.get(key)
        if array is not None:
            self.shm_hits += 1
            self._memo[key] = array
            return CompiledStream(array, fallback)
        array = self.store.get(key)
        if array is not None:
            self._memo[key] = array
            return CompiledStream(array, fallback)
        compiled = compile_stream(fallback(), refs)
        compiled.setflags(write=False)
        self.compiles += 1
        self.compiled_refs += refs
        mapped = self.store.put(
            key, compiled,
            descriptor=stream_descriptor(spec, task_name, include_data_refs),
        )
        self._memo[key] = mapped if mapped is not None else compiled
        return CompiledStream(self._memo[key], fallback)

    def precompile(
        self,
        spec: WorkloadSpec,
        total_refs: int,
        include_data_refs: bool = False,
    ) -> int:
        """Materialize every task stream of ``spec`` before fan-out.

        Returns the number of streams compiled fresh (misses); streams
        already stored are just mapped into the memo.
        """
        before = self.compiles
        for task_name in spec.tasks:
            self.stream_for(spec, task_name, total_refs, include_data_refs)
        return self.compiles - before

    # -- farm transport

    def transport(self) -> StreamTransport:
        """A picklable handle workers use to map this session's streams.

        With the store enabled the blobs travel through the filesystem
        and the transport is just the directory.  With it disabled
        (``--no-stream-cache``), in-memory streams are published as
        shared memory segments owned by this session until
        :meth:`close_transport` (or deactivation) unlinks them.
        """
        segments: tuple[ShmSegment, ...] = ()
        if not self.store.enabled and self._memo:
            if self._arena is None:
                self._arena = ShmArena()
            already = {s.key for s in self._arena.published}
            for key, array in self._memo.items():
                if key not in already:
                    self._arena.publish(key, array)
            segments = tuple(self._arena.published)
        return StreamTransport(
            store_dir=str(self.store.directory),
            store_enabled=self.store.enabled,
            salt=self.salt,
            shm_segments=segments,
        )

    def close_transport(self) -> None:
        """Unlink any shared memory segments this session published."""
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    # -- observability

    def publish_metrics(self, metrics) -> None:
        """Fold session counters into a telemetry registry (delta-based,
        so repeated publishes never double-count)."""

        def delta(value: int, *name_and_labels: str) -> None:
            previous = self._published.get(name_and_labels, 0)
            if value > previous:
                name = name_and_labels[0]
                labels = dict(
                    zip(name_and_labels[1::2], name_and_labels[2::2])
                )
                metrics.counter(name, **labels).inc(value - previous)
                self._published[name_and_labels] = value

        delta(self.memo_hits, "streams.hits", "source", "memo")
        delta(self.store.hits, "streams.hits", "source", "store")
        delta(self.shm_hits, "streams.hits", "source", "shm")
        delta(self.compiles, "streams.misses")
        delta(self.compiled_refs, "streams.compiled_refs")
        delta(self.store.bytes_mapped, "streams.bytes_mapped")
        delta(self.store.bytes_written, "streams.bytes_written")
        delta(self.store.corrupt, "streams.corrupt")
        delta(self.snapshots.creates, "streams.snapshot_creates")
        delta(self.snapshots.forks, "streams.snapshot_forks")
        delta(self.snapshots.bypassed, "streams.snapshot_bypass")


_active: StreamSession | None = None


def active() -> StreamSession | None:
    """The activated session, or None (streams disabled — live path)."""
    return _active


def activate(session: StreamSession | None = None) -> StreamSession:
    """Install ``session`` (or a fresh one) as the process-wide session."""
    global _active
    if _active is not None:
        raise StreamStoreError("a stream session is already active")
    _active = session or StreamSession()
    return _active


def drop_inherited() -> None:
    """Discard a fork-inherited session without tearing it down.

    A forked farm worker inherits the master's active session object.
    Its store handles and shared-memory arena belong to the *parent*;
    deactivating here would unlink segments the master still serves to
    sibling workers.  Workers therefore just drop the reference before
    activating their own session.
    """
    global _active
    _active = None


def deactivate() -> StreamSession:
    """Remove and return the active session, unlinking its transport."""
    global _active
    if _active is None:
        raise StreamStoreError("no stream session is active")
    session, _active = _active, None
    session.close_transport()
    return session


@contextmanager
def enabled(
    session: StreamSession | None = None,
) -> Iterator[StreamSession]:
    """Scope a stream session over a block of simulation work."""
    session = activate(session)
    try:
        yield session
    finally:
        deactivate()
