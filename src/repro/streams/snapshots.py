"""Warm-state snapshots: run the warmup prefix once, fork the rest.

Tapeworm experiments that discard a warmup window re-simulate the same
prefix for every trial of a config.  A :class:`WarmupPlan` declares the
prefix explicitly (its length and the seed the prefix runs under); the
harness executes it once per ``(config, stream)``, deep-copies the
entire warmed execution — kernel, caches, TLB, Tapeworm state, stream
cursors — into a :class:`SnapshotStore`, and each measurement trial
forks from the copy instead of replaying the prefix.

Correctness contract (pinned by ``tests/streams/test_snapshots.py``):
forking a snapshot and finishing the run is bit-identical to replaying
the warmup prefix from scratch with the same seeds.  The per-trial
variance sources (scheduler jitter, system-tick jitter, frame-allocation
order) are re-seeded at the fork point, so trials still differ from each
other exactly as the paper's variance structure requires.

When a fault-injection session is active the harness bypasses snapshot
reuse entirely — injected faults mutate warmed state mid-run, so a
shared snapshot would leak one trial's damage into another.  The bypass
is counted (``streams.snapshot_bypass``) so it is visible, not silent.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.telemetry.profile import phase


@dataclass(frozen=True)
class WarmupPlan:
    """A declared warmup prefix: length in references, and the seed the
    prefix executes under (shared by every trial that forks from it)."""

    warmup_refs: int
    warmup_seed: int = 0

    def __post_init__(self) -> None:
        if self.warmup_refs <= 0:
            raise ConfigError(
                f"warmup_refs must be positive, got {self.warmup_refs}"
            )


class SnapshotStore:
    """In-process store of warmed execution states, keyed by config.

    Snapshots hold live simulator objects (not serialized state), so the
    store is per-process; farm workers each warm their own copy, which
    still amortizes across the trials a worker runs.
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, Any] = {}
        self.creates = 0
        self.forks = 0
        self.bypassed = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    def __contains__(self, key: str) -> bool:
        return key in self._snapshots

    def put(self, key: str, state: Any) -> None:
        self._snapshots[key] = state
        self.creates += 1

    def fork(self, key: str) -> Any | None:
        """An independent deep copy of the snapshot, or None."""
        state = self._snapshots.get(key)
        if state is None:
            return None
        self.forks += 1
        with phase("streams.snapshot_fork"):
            return copy.deepcopy(state)

    def clear(self) -> None:
        self._snapshots.clear()
