"""The on-disk compiled-stream store: ``.npy`` blobs, memory-mapped.

Layout under the store directory (default ``.stream-cache/``):

``<key>.npy``
    One compiled reference stream — a 1-D ``int64`` array of virtual
    addresses — written crash-consistently (temp file + fsync +
    ``os.replace`` via :mod:`repro.atomicio`).
``<key>.json``
    The blob's sidecar: the generating descriptor, the reference count,
    the blob's byte size and a CRC32 of its contents.  The sidecar is
    the *commit point*: it is written only after the blob, so a blob
    without a sidecar is simply a miss (an interrupted write), never a
    half-trusted artifact.
``quarantine/``
    Blobs (and their sidecars) that failed verification — wrong size,
    CRC mismatch, unreadable header — moved aside for post-mortems,
    mirroring the farm result cache's quarantine discipline.

Reads are ``np.load(..., mmap_mode="r")``: the kernel pages the blob in
on demand and shares the pages across every process mapping the same
file, which is what makes farm fan-out zero-copy.  Blobs are verified
(size + CRC) at most once per key per process — on first open — and the
mapping is memoized, so steady-state lookups are a dict hit.
"""

from __future__ import annotations

import io
import json
import logging
import zlib
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.atomicio import atomic_write_bytes, atomic_write_text
from repro.errors import StreamStoreError
from repro.telemetry.profile import phase

DEFAULT_STORE_DIR = ".stream-cache"
QUARANTINE_DIR = "quarantine"

logger = logging.getLogger(__name__)


def blob_crc(data: bytes) -> str:
    """CRC32 (hex) over a blob's raw bytes."""
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


class StreamStore:
    """Content-addressed get/put store for compiled streams.

    With ``enabled=False`` (the ``--no-stream-cache`` bypass) every
    lookup misses and puts are dropped, but counters still advance so
    the ``streams.*`` metrics stay meaningful.
    """

    def __init__(
        self,
        directory: str | Path = DEFAULT_STORE_DIR,
        enabled: bool = True,
        sharded: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.enabled = enabled
        #: write new blobs into two-level shard dirs (``ab/cd/<key>``)
        #: instead of the flat directory; reads always check both
        #: layouts, so flipping this (or a GC migration) never hides
        #: an existing entry
        self.sharded = sharded
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self.bytes_mapped = 0
        self.bytes_written = 0
        #: entries a clear left in place under a live journal pin
        self.pinned_skips = 0
        self._mapped: dict[str, np.ndarray] = {}
        self._corruption_logged = False

    # -- paths

    def _shard_dir(self, key: str) -> Path:
        return self.directory / key[:2] / key[2:4]

    def _entry_path(self, key: str, suffix: str) -> Path:
        """Where ``key``'s blob/sidecar lives: whichever of the flat
        and sharded locations exists, else the layout ``put`` targets."""
        flat = self.directory / f"{key}{suffix}"
        if flat.exists():
            return flat
        sharded = self._shard_dir(key) / f"{key}{suffix}"
        if sharded.exists():
            return sharded
        return sharded if self.sharded else flat

    def _blob_path(self, key: str) -> Path:
        return self._entry_path(key, ".npy")

    def _sidecar_path(self, key: str) -> Path:
        return self._entry_path(key, ".json")

    @property
    def _quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIR

    # -- corruption handling

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a damaged blob + sidecar aside and count the casualty."""
        self.corrupt += 1
        if not self._corruption_logged:
            self._corruption_logged = True
            logger.warning(
                "stream store %s holds corrupt blob(s) (%s); moving to %s "
                "and recompiling — further corruptions this run are counted "
                "silently",
                self.directory, reason, self._quarantine_dir,
            )
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            for path in (self._blob_path(key), self._sidecar_path(key)):
                if path.exists():
                    path.replace(self._quarantine_dir / path.name)
        except OSError:
            pass  # quarantine is best-effort; the miss is what matters

    # -- the get/put surface

    def get(self, key: str) -> np.ndarray | None:
        """The memory-mapped blob for ``key``, or None on a miss.

        The first open of each key verifies the sidecar's size and CRC
        against the blob; damaged entries are quarantined and reported
        as misses so the caller recompiles.
        """
        if not self.enabled:
            self.misses += 1
            return None
        cached = self._mapped.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        with phase("streams.blob_map"):
            blob_path = self._blob_path(key)
            sidecar_path = self._sidecar_path(key)
            if not sidecar_path.exists() or not blob_path.exists():
                self.misses += 1
                return None
            try:
                sidecar = json.loads(sidecar_path.read_text())
            except (json.JSONDecodeError, OSError):
                self._quarantine(key, "sidecar not valid JSON")
                self.misses += 1
                return None
            try:
                data = blob_path.read_bytes()
            except OSError:
                self.misses += 1
                return None
            if len(data) != sidecar.get("blob_bytes"):
                self._quarantine(key, "blob size mismatch")
                self.misses += 1
                return None
            if blob_crc(data) != sidecar.get("crc"):
                self._quarantine(key, "blob CRC mismatch")
                self.misses += 1
                return None
            try:
                array = np.load(blob_path, mmap_mode="r")
            except (ValueError, OSError):
                self._quarantine(key, "unreadable npy header")
                self.misses += 1
                return None
            if array.ndim != 1 or array.dtype != np.int64:
                self._quarantine(key, "wrong shape or dtype")
                self.misses += 1
                return None
            self._mapped[key] = array
            self.hits += 1
            self.bytes_mapped += array.nbytes
            return array

    def contains(self, key: str) -> bool:
        """Whether a committed (sidecar-present) blob exists for ``key``."""
        return (
            self.enabled
            and self._sidecar_path(key).exists()
            and self._blob_path(key).exists()
        )

    def put(
        self,
        key: str,
        array: np.ndarray,
        descriptor: Mapping[str, Any] | None = None,
    ) -> np.ndarray | None:
        """Persist ``array`` under ``key``; returns the mmap'd copy.

        The blob is written first, the sidecar second — each atomically —
        so a crash between the two leaves an uncommitted blob that reads
        as a miss and is overwritten by the next put.
        """
        if not self.enabled:
            return None
        if array.ndim != 1 or array.dtype != np.int64:
            raise StreamStoreError(
                f"stream blobs must be 1-D int64, got {array.dtype} "
                f"ndim={array.ndim}"
            )
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array))
        data = buffer.getvalue()
        atomic_write_bytes(self._blob_path(key), data)
        sidecar = {
            "key": key,
            "refs": int(array.shape[0]),
            "blob_bytes": len(data),
            "crc": blob_crc(data),
        }
        if descriptor is not None:
            sidecar["descriptor"] = dict(descriptor)
        atomic_write_text(
            self._sidecar_path(key), json.dumps(sidecar, sort_keys=True) + "\n"
        )
        self.puts += 1
        self.bytes_written += len(data)
        mapped = np.load(self._blob_path(key), mmap_mode="r")
        self._mapped[key] = mapped
        return mapped

    # -- maintenance (the ``repro streams`` CLI surface)

    def _contained(self, path: Path) -> bool:
        """Whether ``path`` resolves to inside the store directory."""
        root = self.directory.resolve()
        try:
            path.resolve().relative_to(root)
        except ValueError:
            return False
        return True

    def stats(self) -> dict[str, Any]:
        """On-disk inventory plus this instance's counters."""
        blobs = 0
        total_bytes = 0
        total_refs = 0
        if self.directory.is_dir():
            sidecars = sorted(self.directory.glob("*.json")) + sorted(
                self.directory.glob(
                    "[0-9a-f][0-9a-f]/[0-9a-f][0-9a-f]/*.json"
                )
            )
            for sidecar_path in sidecars:
                try:
                    sidecar = json.loads(sidecar_path.read_text())
                except (json.JSONDecodeError, OSError):
                    continue
                blob_path = self._blob_path(str(sidecar.get("key", "")))
                if not blob_path.exists():
                    continue
                blobs += 1
                total_bytes += int(sidecar.get("blob_bytes", 0))
                total_refs += int(sidecar.get("refs", 0))
        quarantined = 0
        if self._quarantine_dir.is_dir():
            quarantined = sum(
                1 for p in self._quarantine_dir.glob("*.npy")
            )
        return {
            "directory": str(self.directory),
            "blobs": blobs,
            "blob_bytes": total_bytes,
            "compiled_refs": total_refs,
            "quarantined": quarantined,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt": self.corrupt,
                "bytes_mapped": self.bytes_mapped,
                "bytes_written": self.bytes_written,
            },
        }

    def clear(self, pinned: frozenset[str] | set[str] = frozenset()) -> int:
        """Delete every blob, sidecar and quarantined file; returns the
        number of blobs dropped.

        Refuses (raising :class:`StreamStoreError`) to delete anything
        that does not resolve to inside the store directory — a symlink
        planted in the cache cannot steer the unlink elsewhere, and a
        mis-set ``--dir`` cannot silently eat an unrelated tree.

        Entries whose key appears in ``pinned`` — a live journal lease
        still references them — survive the clear, counted in
        :attr:`pinned_skips`.
        """
        if not self.directory.is_dir():
            self._mapped.clear()
            return 0
        victims: list[Path] = []
        shard_glob = "[0-9a-f][0-9a-f]/[0-9a-f][0-9a-f]"
        for pattern in ("*.npy", "*.json", "*.tmp"):
            victims.extend(self.directory.glob(pattern))
            victims.extend(self.directory.glob(f"{shard_glob}/{pattern}"))
        if self._quarantine_dir.is_dir():
            victims.extend(self._quarantine_dir.iterdir())
        for path in victims:
            if path.is_symlink() or not self._contained(path):
                raise StreamStoreError(
                    f"refusing to clear {path}: it escapes the stream store "
                    f"directory {self.directory}"
                )
        if pinned:
            spared = {
                path
                for path in victims
                if path.suffix in (".npy", ".json") and path.stem in pinned
            }
            self.pinned_skips += sum(
                1 for p in spared if p.suffix == ".npy"
            )
            victims = [p for p in victims if p not in spared]
        dropped = sum(1 for p in victims if p.suffix == ".npy")
        for path in victims:
            try:
                path.unlink()
            except OSError:
                pass
        if self._quarantine_dir.is_dir():
            try:
                self._quarantine_dir.rmdir()
            except OSError:
                pass
        self._mapped = {
            key: array
            for key, array in self._mapped.items()
            if key in pinned
        }
        return dropped
