"""Zero-copy stream delivery to farm workers.

Without this module, a farm job that needs a compiled stream either
re-generates it in the worker (CPU time per job) or receives the array
pickled through the job payload (memory copies per job).  With it, the
master sends workers a tiny picklable :class:`StreamTransport` — the
store directory plus, for streams that exist only in memory (store
disabled), the names of ``multiprocessing.shared_memory`` segments —
and each worker maps the blobs locally.  Pages of a store blob are
shared by the OS page cache across every worker; pages of a shared
memory segment are literally the same physical memory.

Attach failures are never fatal: a worker that cannot reach a segment
(or a store directory that vanished) simply compiles the stream
locally, which is bit-identical — the transport is purely an
optimization layer.
"""

from __future__ import annotations

import inspect
import logging
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.streams.keys import STREAM_CODE_VERSION
from repro.streams.store import DEFAULT_STORE_DIR

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ShmSegment:
    """One in-memory stream published as a shared memory segment."""

    key: str
    shm_name: str
    refs: int


@dataclass(frozen=True)
class StreamTransport:
    """Everything a worker needs to map the master's compiled streams."""

    store_dir: str = DEFAULT_STORE_DIR
    store_enabled: bool = True
    salt: str = STREAM_CODE_VERSION
    shm_segments: tuple[ShmSegment, ...] = field(default_factory=tuple)


def _attach_segment(name: str):
    """Attach to a named segment without registering it for cleanup.

    Python < 3.13 registers *attaching* processes with the resource
    tracker, which then unlinks the segment when the first worker exits
    — yanking it out from under its siblings.  3.13 added
    ``track=False`` for exactly this; on older interpreters we attach
    normally and rely on workers outliving the batch.
    """
    from multiprocessing import shared_memory

    if "track" in inspect.signature(
        shared_memory.SharedMemory.__init__
    ).parameters:
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


class ShmArena:
    """Master-side owner of shared memory segments for in-memory streams.

    Created only when the store is disabled (otherwise blobs travel via
    the filesystem).  The arena owns the segments' lifetime: ``close``
    unlinks everything, so a batch leaves no segments behind.
    """

    def __init__(self) -> None:
        self._segments: list[Any] = []
        self.published: list[ShmSegment] = []

    def publish(self, key: str, array: np.ndarray) -> ShmSegment | None:
        from multiprocessing import shared_memory

        data = np.ascontiguousarray(array, dtype=np.int64)
        try:
            shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
        except OSError as error:
            logger.warning(
                "could not publish stream %s via shared memory (%s); "
                "workers will compile locally", key[:12], error,
            )
            return None
        view = np.ndarray(data.shape, dtype=np.int64, buffer=shm.buf)
        view[:] = data
        self._segments.append(shm)
        segment = ShmSegment(key=key, shm_name=shm.name, refs=data.shape[0])
        self.published.append(segment)
        return segment

    def close(self) -> None:
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        self._segments.clear()
        self.published.clear()


def attach_segments(
    segments: tuple[ShmSegment, ...],
) -> tuple[dict[str, np.ndarray], list[Any]]:
    """Worker-side attach: ``(key -> array views, live shm handles)``.

    The handles must stay referenced as long as the arrays are in use;
    the caller closes them when the session ends.  Segments that fail to
    attach are skipped — the session falls back to local compilation.
    """
    attachments: dict[str, np.ndarray] = {}
    handles: list[Any] = []
    for segment in segments:
        try:
            shm = _attach_segment(segment.shm_name)
        except (OSError, ValueError) as error:
            logger.warning(
                "could not attach stream segment %s (%s); compiling locally",
                segment.shm_name, error,
            )
            continue
        array = np.ndarray(
            (segment.refs,), dtype=np.int64, buffer=shm.buf
        )
        array.setflags(write=False)
        attachments[segment.key] = array
        handles.append(shm)
    return attachments, handles


#: this worker's cached session: ``(transport, session, shm_handles)``.
#: Sessions hold in-memory state worth keeping across the jobs one
#: worker executes — the stream memo and, critically, warm-state
#: snapshots, which the interval-sampling runner builds incrementally
#: (a fresh session per job would replay every warm prefix from zero).
_worker_cache: tuple[StreamTransport, Any, list] | None = None


def _worker_session(transport: StreamTransport):
    """The cached per-process session for ``transport``, built on first
    use and rebuilt (old segment handles closed) when a new batch ships
    a different transport."""
    global _worker_cache
    from repro.streams import session as stream_session
    from repro.streams.store import StreamStore

    if _worker_cache is not None and _worker_cache[0] == transport:
        return _worker_cache[1]
    if _worker_cache is not None:
        for shm in _worker_cache[2]:
            try:
                shm.close()
            except OSError:
                pass
    attachments, handles = attach_segments(transport.shm_segments)
    session = stream_session.StreamSession(
        store=StreamStore(
            transport.store_dir, enabled=transport.store_enabled
        ),
        attachments=attachments,
        salt=transport.salt,
    )
    _worker_cache = (transport, session, handles)
    return session


def transported_execute(
    transport: StreamTransport, measure: str, params: dict, seed: int
):
    """Worker entry point: run a job inside a transported stream session.

    Activates a :class:`~repro.streams.session.StreamSession` backed by
    the master's store directory (and any shared memory segments), runs
    the measure exactly as :func:`repro.farm.registry.timed_execute`
    would, then deactivates it.  The session object itself is cached per
    worker process and reactivated for the next job with the same
    transport, so in-memory state — the stream memo, warm boundary
    snapshots — amortizes across a batch.  Results are bit-identical to
    the untransported path — only where the addresses come from differs.
    """
    from repro.farm.registry import timed_execute
    from repro.streams import session as stream_session
    from repro.telemetry.spans import span as telemetry_span

    with telemetry_span(
        "streams.attach", segments=len(transport.shm_segments)
    ):
        session = _worker_session(transport)
    if stream_session.active() is not None:
        # a forked worker inherited the master's session; the parent
        # owns its resources, so drop the reference rather than
        # deactivating it
        stream_session.drop_inherited()
    stream_session.activate(session)
    try:
        return timed_execute(measure, params, seed)
    finally:
        stream_session.deactivate()
