"""repro.telemetry — the observability layer (metrics, traces, manifests).

The paper validated Tapeworm with *Monster*, a DAS 9200 hardware monitor
that counted instructions and attributed cycles unobtrusively; this
package is the software analogue for the whole reproduction stack:

* :mod:`~repro.telemetry.registry` — a metrics registry (``Counter``,
  ``Gauge``, fixed-bucket ``Histogram``) that the machine, kernel,
  Tapeworm and farm publish into under stable dotted names;
* :mod:`~repro.telemetry.events` — a bounded ring buffer of trap-level
  events, exportable as Chrome ``trace_event`` JSON for Perfetto;
* :mod:`~repro.telemetry.spans` — causally linked timed regions with
  parent/child ids and run-id correlation, mergeable across the farm's
  process boundary into one Chrome trace with per-worker lanes;
* :mod:`~repro.telemetry.aggregate` — the mergeable metrics snapshot
  format (counters sum, gauges last-write-wins, histograms bucket-wise
  exact add) that carries worker registries home per job;
* :mod:`~repro.telemetry.profile` — opt-in phase timers around kernel
  and stream hot paths, publishing ``profile.*`` histograms;
* :mod:`~repro.telemetry.manifest` — append-only JSONL run manifests
  (config hash, seed, git version, metrics snapshot, wall clock);
* :mod:`~repro.telemetry.session` — the process-wide on/off switch.

The hard guarantee, pinned by tier-1 tests: simulation results are
bit-identical with telemetry enabled or disabled.  Instrumentation
observes; it never participates.
"""

from repro.telemetry.events import (
    DEFAULT_TRACE_CAPACITY,
    FARM_PID,
    MACHINE_PID,
    EventTracer,
    TraceEvent,
)
from repro.telemetry.manifest import (
    DEFAULT_MANIFEST_PATH,
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    git_version,
    read_manifests,
    validate_record,
    write_manifest,
)
from repro.telemetry.aggregate import (
    MAX_WORKER_SERIES,
    SNAPSHOT_VERSION,
    export_metrics,
    fold_into,
    merge_snapshots,
    split_key,
)
from repro.telemetry.profile import (
    KNOWN_PHASES,
    PROFILE_BUCKET_SECS,
    phase,
    profiling_enabled,
)
from repro.telemetry.registry import (
    CYCLE_BUCKETS,
    TIME_BUCKET_SECS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from repro.telemetry.session import (
    TelemetrySession,
    activate,
    active,
    deactivate,
    drop_inherited,
    enabled,
)
from repro.telemetry.spans import (
    DEFAULT_SPAN_CAPACITY,
    WORKER_PID,
    Span,
    SpanRecorder,
    chrome_span_events,
    merge_chrome_traces,
    merged_chrome_trace,
    new_run_id,
    span,
    span_from_dict,
    spans_from_dicts,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "TIME_BUCKET_SECS",
    "CYCLE_BUCKETS",
    "EventTracer",
    "TraceEvent",
    "DEFAULT_TRACE_CAPACITY",
    "MACHINE_PID",
    "FARM_PID",
    "RunManifest",
    "config_hash",
    "git_version",
    "read_manifests",
    "validate_record",
    "write_manifest",
    "DEFAULT_MANIFEST_PATH",
    "MANIFEST_SCHEMA_VERSION",
    "TelemetrySession",
    "activate",
    "active",
    "deactivate",
    "drop_inherited",
    "enabled",
    "Span",
    "SpanRecorder",
    "DEFAULT_SPAN_CAPACITY",
    "WORKER_PID",
    "chrome_span_events",
    "merge_chrome_traces",
    "merged_chrome_trace",
    "new_run_id",
    "span",
    "span_from_dict",
    "spans_from_dicts",
    "MAX_WORKER_SERIES",
    "SNAPSHOT_VERSION",
    "export_metrics",
    "fold_into",
    "merge_snapshots",
    "split_key",
    "KNOWN_PHASES",
    "PROFILE_BUCKET_SECS",
    "phase",
    "profiling_enabled",
]
