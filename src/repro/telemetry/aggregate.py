"""Mergeable metrics snapshots: worker registries folded into one.

A farm worker's :class:`~repro.telemetry.registry.MetricsRegistry` dies
with the worker unless its contents travel home.  This module defines
the wire format and the merge algebra:

* **counters sum** — exact, associative, commutative;
* **gauges are last-write-wins** by the ``updated_unix`` timestamp the
  registry stamps on every ``set``;
* **histograms add bucket-wise** — bucket layouts are fixed per metric
  name (the registry enforces it), so the merge is *exact*: count, sum,
  min, max and every bucket are what a single shared histogram would
  have held.

:func:`export_metrics` snapshots a registry into a JSON-encodable
envelope; :func:`merge_snapshots` folds two envelopes (the property
tests pin associativity/commutativity); :func:`fold_into` replays an
envelope into a live registry under a prefix (``farm.worker.*``), with
a per-envelope series cap so one misbehaving worker cannot blow up the
master's registry cardinality.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import TelemetryError
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: bump when the envelope layout changes incompatibly
SNAPSHOT_VERSION = 1

#: ceiling on distinct series accepted from one worker envelope; the
#: overflow is counted, not silently ignored
MAX_WORKER_SERIES = 512


def split_key(key: str) -> tuple[str, dict[str, str]]:
    """``name{label=value,...}`` back into ``(name, labels)``."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    if not rest.endswith("}"):
        raise TelemetryError(f"malformed metric key {key!r}")
    labels: dict[str, str] = {}
    for part in rest[:-1].split(","):
        label, sep, value = part.partition("=")
        if not sep:
            raise TelemetryError(f"malformed label {part!r} in key {key!r}")
        labels[label] = value
    return name, labels


def _export_one(metric: Counter | Gauge | Histogram) -> dict[str, Any]:
    if metric.kind == "counter":
        return {"kind": "counter", "value": metric.value}
    if metric.kind == "gauge":
        return {
            "kind": "gauge",
            "value": metric.value,
            "updated_unix": metric.updated_unix,
        }
    return {
        "kind": "histogram",
        "bounds": list(metric.bounds),
        "counts": list(metric.counts),
        "count": metric.count,
        "sum": metric.total,
        "min": metric.minimum,
        "max": metric.maximum,
    }


def export_metrics(registry: MetricsRegistry) -> dict[str, Any]:
    """A registry as a mergeable, JSON-encodable envelope."""
    return {
        "v": SNAPSHOT_VERSION,
        "series": {key: _export_one(metric) for key, metric in registry.items()},
    }


def _check_envelope(snapshot: Mapping[str, Any]) -> Mapping[str, Any]:
    if not isinstance(snapshot, Mapping):
        raise TelemetryError(f"metrics envelope is not a mapping: {snapshot!r}")
    if snapshot.get("v") != SNAPSHOT_VERSION:
        raise TelemetryError(
            f"metrics envelope version {snapshot.get('v')!r} != "
            f"{SNAPSHOT_VERSION}"
        )
    series = snapshot.get("series")
    if not isinstance(series, Mapping):
        raise TelemetryError("metrics envelope has no series mapping")
    return series


def _merge_entry(
    merged: dict[str, Any], entry: Mapping[str, Any], key: str
) -> dict[str, Any]:
    kind = entry.get("kind")
    if kind != merged.get("kind"):
        raise TelemetryError(
            f"series {key!r} is a {merged.get('kind')} on one side and a "
            f"{kind} on the other"
        )
    if kind == "counter":
        return {"kind": "counter", "value": merged["value"] + entry["value"]}
    if kind == "gauge":
        newer = entry if entry["updated_unix"] >= merged["updated_unix"] else merged
        return dict(newer)
    if kind == "histogram":
        if list(entry["bounds"]) != list(merged["bounds"]):
            raise TelemetryError(
                f"series {key!r} has mismatched histogram bounds"
            )
        count = merged["count"] + entry["count"]
        if merged["count"] == 0:
            minimum, maximum = entry["min"], entry["max"]
        elif entry["count"] == 0:
            minimum, maximum = merged["min"], merged["max"]
        else:
            minimum = min(merged["min"], entry["min"])
            maximum = max(merged["max"], entry["max"])
        return {
            "kind": "histogram",
            "bounds": list(merged["bounds"]),
            "counts": [a + b for a, b in zip(merged["counts"], entry["counts"])],
            "count": count,
            "sum": merged["sum"] + entry["sum"],
            "min": minimum,
            "max": maximum,
        }
    raise TelemetryError(f"series {key!r} has unknown kind {kind!r}")


def merge_snapshots(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> dict[str, Any]:
    """Fold two envelopes into one (counters sum, gauges LWW,
    histograms bucket-wise add).  Pure; inputs are not mutated."""
    series_a, series_b = _check_envelope(a), _check_envelope(b)
    merged = {key: dict(entry) for key, entry in series_a.items()}
    for key, entry in series_b.items():
        if key in merged:
            merged[key] = _merge_entry(merged[key], entry, key)
        else:
            merged[key] = dict(entry)
    return {"v": SNAPSHOT_VERSION, "series": merged}


def fold_into(
    registry: MetricsRegistry,
    snapshot: Mapping[str, Any],
    prefix: str = "farm.worker",
    max_series: int = MAX_WORKER_SERIES,
) -> tuple[int, int]:
    """Replay an envelope into a live registry under ``prefix``.

    Returns ``(merged, dropped)`` series counts; series beyond
    ``max_series`` (in sorted key order, so the cut is deterministic)
    are dropped and counted rather than silently lost.  Raises
    :class:`~repro.errors.TelemetryError` on envelopes this code cannot
    merge — the caller decides how loudly to fail.
    """
    series = _check_envelope(snapshot)
    keys = sorted(series)
    kept, overflow = keys[:max_series], len(keys[max_series:])
    merged = 0
    for key in kept:
        entry = series[key]
        name, labels = split_key(key)
        target = f"{prefix}.{name}"
        kind = entry.get("kind")
        if kind == "counter":
            registry.counter(target, **labels).inc(entry["value"])
        elif kind == "gauge":
            gauge = registry.gauge(target, **labels)
            if entry["updated_unix"] >= gauge.updated_unix:
                gauge.value = entry["value"]
                gauge.updated_unix = entry["updated_unix"]
        elif kind == "histogram":
            incoming = Histogram(tuple(entry["bounds"]))
            incoming.counts = list(entry["counts"])
            incoming.count = entry["count"]
            incoming.total = entry["sum"]
            incoming.minimum = entry["min"]
            incoming.maximum = entry["max"]
            registry.histogram(
                target, bounds=tuple(entry["bounds"]), **labels
            ).merge(incoming)
        else:
            raise TelemetryError(
                f"series {key!r} has unknown kind {kind!r}"
            )
        merged += 1
    return merged, overflow


__all__ = [
    "MAX_WORKER_SERIES",
    "SNAPSHOT_VERSION",
    "export_metrics",
    "fold_into",
    "merge_snapshots",
    "split_key",
]
