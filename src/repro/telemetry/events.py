"""The trap-level event tracer: a bounded ring buffer of run events.

Every trap delivery, page fault, clock tick and farm job records one
:class:`TraceEvent`.  Machine events are timestamped in *simulated*
cycles (converted to simulated microseconds of the 25 MHz DECstation);
farm events use master wall-clock time.  The buffer is a fixed-capacity
ring — when a run out-produces it, the oldest events are dropped and
counted, never grown — so tracing costs bounded memory on arbitrarily
long runs.

:meth:`EventTracer.chrome_trace` exports the Chrome ``trace_event``
JSON format (the "JSON Array Format" with ``traceEvents``), so a whole
run opens in Perfetto / ``chrome://tracing`` with one process per
execution domain (simulated machine vs. farm master) and one lane per
component.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro._types import HOST_CLOCK_HZ
from repro.errors import TelemetryError

#: trace process ids: simulated-machine lanes vs. farm (wall-clock) lanes
MACHINE_PID = 1
FARM_PID = 2

#: simulated cycles per simulated microsecond (25 MHz host)
CYCLES_PER_US = HOST_CLOCK_HZ / 1_000_000

#: default ring capacity; at ~250 cycles per trap this covers runs of
#: tens of millions of references before wrapping
DEFAULT_TRACE_CAPACITY = 65_536


@dataclass(frozen=True)
class TraceEvent:
    """One recorded run event."""

    kind: str       #: event name ("ecc_error", "clock_tick", "job", ...)
    category: str   #: trace category ("trap", "fault", "clock", "farm")
    lane: str       #: display lane ("user", "kernel", "clock", "jobs", ...)
    pid: int        #: MACHINE_PID or FARM_PID
    ts_us: float    #: start time, simulated or wall microseconds
    dur_us: float = 0.0
    args: Mapping[str, Any] | None = None


class EventTracer:
    """Fixed-capacity ring buffer of :class:`TraceEvent`\\ s."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity <= 0:
            raise TelemetryError(f"trace capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.recorded = 0
        self._ring: list[TraceEvent] = []
        self._next = 0

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (oldest-first)."""
        return max(0, self.recorded - self.capacity)

    def record(self, event: TraceEvent) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.recorded += 1

    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        if self.recorded <= self.capacity:
            return list(self._ring)
        return self._ring[self._next :] + self._ring[: self._next]

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    # emitters for the standard instrumentation points
    # ------------------------------------------------------------------

    def trap(self, frame, handler_cycles: int) -> None:
        """One kernel trap delivery (called by the trap dispatcher)."""
        self.record(
            TraceEvent(
                kind=frame.kind.value,
                category="trap",
                lane=frame.component.value,
                pid=MACHINE_PID,
                ts_us=frame.cycle / CYCLES_PER_US,
                dur_us=handler_cycles / CYCLES_PER_US,
                args={
                    "tid": frame.tid,
                    "va": frame.va,
                    "pa": frame.pa,
                    "cycle": frame.cycle,
                    "handler_cycles": handler_cycles,
                },
            )
        )

    def page_fault(self, cycle: int, component, tid: int, vpn: int) -> None:
        self.record(
            TraceEvent(
                kind="page_fault",
                category="fault",
                lane=component.value,
                pid=MACHINE_PID,
                ts_us=cycle / CYCLES_PER_US,
                args={"tid": tid, "vpn": vpn, "cycle": cycle},
            )
        )

    def clock_ticks(self, cycle: int, ticks: int) -> None:
        self.record(
            TraceEvent(
                kind="clock_tick",
                category="clock",
                lane="clock",
                pid=MACHINE_PID,
                ts_us=cycle / CYCLES_PER_US,
                args={"ticks": ticks, "cycle": cycle},
            )
        )

    def farm_job(
        self,
        kind: str,
        ts_secs: float,
        dur_secs: float = 0.0,
        **args: Any,
    ) -> None:
        """Farm job lifecycle ("job", "cache_hit", "retry"); wall clock,
        relative to the batch start."""
        self.record(
            TraceEvent(
                kind=kind,
                category="farm",
                lane="jobs",
                pid=FARM_PID,
                ts_us=ts_secs * 1e6,
                dur_us=dur_secs * 1e6,
                args=dict(args) or None,
            )
        )

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The run as a Chrome ``trace_event`` JSON object."""
        trace_events: list[dict[str, Any]] = []
        lanes: dict[tuple[int, str], int] = {}

        for pid, name in (
            (MACHINE_PID, "simulated machine"),
            (FARM_PID, "execution farm"),
        ):
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )

        for event in self.events():
            lane_key = (event.pid, event.lane)
            tid = lanes.get(lane_key)
            if tid is None:
                tid = lanes[lane_key] = len(lanes) + 1
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": event.pid,
                        "tid": tid,
                        "args": {"name": event.lane},
                    }
                )
            record: dict[str, Any] = {
                "name": event.kind,
                "cat": event.category,
                "pid": event.pid,
                "tid": tid,
                "ts": event.ts_us,
            }
            if event.dur_us > 0:
                record["ph"] = "X"
                record["dur"] = event.dur_us
            else:
                record["ph"] = "i"
                record["s"] = "t"
            if event.args:
                record["args"] = dict(event.args)
            trace_events.append(record)

        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorded": self.recorded,
                "dropped": self.dropped,
                # explicit alias so truncated traces are self-describing
                # to consumers that only know the trace_event convention
                "dropped_events": self.dropped,
                "capacity": self.capacity,
            },
        }

    def write_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace()) + "\n")
        return path
