"""Run manifests: one JSONL record per experiment/trial, forever.

Reproducibility claims live or die on machine-readable, comparable run
artifacts (the gem5 standardization and Ramulator 2.0 re-evaluation
arguments).  A manifest record captures *what ran* (name, configuration
and its content hash, seed), *which code ran it* (package code version,
git revision), *what it cost* (wall clock) and *what it measured* (a
metrics-registry snapshot plus a small results dict) — enough to plot a
durable performance trajectory across months of commits.

Records append to ``manifests.jsonl`` next to the farm result cache
(both are append-only JSONL stores owned by the master process), or to
any path the CLI's ``--manifest-out`` names.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.atomicio import atomic_append_line
from repro.errors import TelemetryError

#: bump when the record layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1

#: default location — deliberately next to the farm's result cache
DEFAULT_MANIFEST_PATH = Path(".farm-cache") / "manifests.jsonl"

#: required record fields and their JSON types, the schema contract
#: checked by :func:`validate_record` (tests and CI both call it)
_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "schema": int,
    "kind": str,
    "name": str,
    "configuration": str,
    "config_hash": str,
    "seed": int,
    "code_version": str,
    "git_version": str,
    "created_unix": (int, float),
    "wall_clock_secs": (int, float),
    "metrics": dict,
    "results": dict,
}

_git_version_cache: str | None = None


def config_hash(config: Any) -> str:
    """Short content hash of any fingerprintable configuration value.

    Accepts everything :func:`repro.farm.jobs.canonical` does —
    dataclasses (``TapewormConfig``, ``CacheConfig``), enums, mappings,
    sequences and JSON scalars — so semantically equal configs hash
    equal regardless of spelling.
    """
    from repro.farm.jobs import canonical

    blob = json.dumps(canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def git_version() -> str:
    """The repository's short revision, or ``"unknown"`` outside git."""
    global _git_version_cache
    if _git_version_cache is None:
        try:
            result = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=Path(__file__).resolve().parent,
            )
            _git_version_cache = (
                result.stdout.strip() if result.returncode == 0 else "unknown"
            )
        except (OSError, subprocess.SubprocessError):
            _git_version_cache = "unknown"
    return _git_version_cache or "unknown"


@dataclass(frozen=True)
class RunManifest:
    """One run's manifest, ready to serialize."""

    kind: str                 #: "run", "experiment", "trial", ...
    name: str                 #: workload or experiment name
    configuration: str        #: human-readable configuration description
    config_hash: str          #: content hash from :func:`config_hash`
    seed: int = 0
    wall_clock_secs: float = 0.0
    metrics: Mapping[str, Any] = field(default_factory=dict)
    results: Mapping[str, Any] = field(default_factory=dict)

    def record(self) -> dict[str, Any]:
        """The JSONL record, stamped with schema and provenance."""
        from repro.farm.jobs import CODE_VERSION

        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "kind": self.kind,
            "name": self.name,
            "configuration": self.configuration,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "code_version": CODE_VERSION,
            "git_version": git_version(),
            "created_unix": round(time.time(), 3),
            "wall_clock_secs": round(self.wall_clock_secs, 6),
            "metrics": dict(self.metrics),
            "results": dict(self.results),
        }


def write_manifest(
    manifest: RunManifest | Mapping[str, Any],
    path: str | Path | None = None,
) -> Path:
    """Append one record to the manifest log; returns the path written."""
    record = manifest.record() if isinstance(manifest, RunManifest) else dict(manifest)
    problems = validate_record(record)
    if problems:
        raise TelemetryError(
            f"refusing to write an invalid manifest record: {'; '.join(problems)}"
        )
    path = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    # crash-consistent append: a kill mid-write can never tear a record
    atomic_append_line(path, json.dumps(record, sort_keys=True))
    return path


def read_manifests(path: str | Path | None = None) -> list[dict[str, Any]]:
    """All records in the log, oldest first; torn lines are skipped."""
    path = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn write loses one record, not the log
        if isinstance(record, dict):
            records.append(record)
    return records


def validate_record(record: Mapping[str, Any]) -> list[str]:
    """Schema-check one record; returns a list of problems (empty = ok)."""
    problems = []
    for name, expected in _SCHEMA.items():
        if name not in record:
            problems.append(f"missing field {name!r}")
        elif isinstance(record[name], bool) or not isinstance(
            record[name], expected
        ):
            problems.append(
                f"field {name!r} should be {expected}, "
                f"got {type(record[name]).__name__}"
            )
    if not problems and record["schema"] > MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"schema {record['schema']} is newer than supported "
            f"{MANIFEST_SCHEMA_VERSION}"
        )
    return problems
