"""Run manifests: one JSONL record per experiment/trial, forever.

Reproducibility claims live or die on machine-readable, comparable run
artifacts (the gem5 standardization and Ramulator 2.0 re-evaluation
arguments).  A manifest record captures *what ran* (name, configuration
and its content hash, seed), *which code ran it* (package code version,
git revision), *what it cost* (wall clock) and *what it measured* (a
metrics-registry snapshot plus a small results dict) — enough to plot a
durable performance trajectory across months of commits.

Records append to ``manifests.jsonl`` next to the farm result cache
(both are append-only JSONL stores owned by the master process), or to
any path the CLI's ``--manifest-out`` names.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.atomicio import atomic_append_line
from repro.errors import TelemetryError

#: bump when the record layout changes incompatibly
#: v2: optional ``estimates`` block — sampled results carry their value,
#: 95% CI, method and an ``exact`` flag, so estimated numbers can never
#: be mistaken for measured ones downstream
MANIFEST_SCHEMA_VERSION = 2

#: default location — deliberately next to the farm's result cache
DEFAULT_MANIFEST_PATH = Path(".farm-cache") / "manifests.jsonl"

#: required record fields and their JSON types, the schema contract
#: checked by :func:`validate_record` (tests and CI both call it)
_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "schema": int,
    "kind": str,
    "name": str,
    "configuration": str,
    "config_hash": str,
    "seed": int,
    "code_version": str,
    "git_version": str,
    "created_unix": (int, float),
    "wall_clock_secs": (int, float),
    "metrics": dict,
    "results": dict,
}

#: optional fields (schema v2+) and their JSON types; absent is valid
#: (every v1 record stays valid under v2)
_OPTIONAL_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "estimates": dict,
}

#: required shape of one ``estimates`` entry: metric name ->
#: ``{value, ci_low, ci_high, method, exact}``
_ESTIMATE_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "value": (int, float),
    "ci_low": (int, float),
    "ci_high": (int, float),
    "method": str,
    "exact": bool,
}

_git_version_cache: str | None = None


def config_hash(config: Any) -> str:
    """Short content hash of any fingerprintable configuration value.

    Accepts everything :func:`repro.farm.jobs.canonical` does —
    dataclasses (``TapewormConfig``, ``CacheConfig``), enums, mappings,
    sequences and JSON scalars — so semantically equal configs hash
    equal regardless of spelling.
    """
    from repro.farm.jobs import canonical

    blob = json.dumps(canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def git_version() -> str:
    """The repository's short revision, or ``"unknown"`` outside git."""
    global _git_version_cache
    if _git_version_cache is None:
        try:
            result = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=Path(__file__).resolve().parent,
            )
            _git_version_cache = (
                result.stdout.strip() if result.returncode == 0 else "unknown"
            )
        except (OSError, subprocess.SubprocessError):
            _git_version_cache = "unknown"
    return _git_version_cache or "unknown"


@dataclass(frozen=True)
class RunManifest:
    """One run's manifest, ready to serialize."""

    kind: str                 #: "run", "experiment", "trial", ...
    name: str                 #: workload or experiment name
    configuration: str        #: human-readable configuration description
    config_hash: str          #: content hash from :func:`config_hash`
    seed: int = 0
    wall_clock_secs: float = 0.0
    metrics: Mapping[str, Any] = field(default_factory=dict)
    results: Mapping[str, Any] = field(default_factory=dict)
    #: sampled-run estimates: metric name -> {value, ci_low, ci_high,
    #: method, exact}; None for runs that measured everything directly
    estimates: Mapping[str, Mapping[str, Any]] | None = None

    def record(self) -> dict[str, Any]:
        """The JSONL record, stamped with schema and provenance."""
        from repro.farm.jobs import CODE_VERSION

        record = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "kind": self.kind,
            "name": self.name,
            "configuration": self.configuration,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "code_version": CODE_VERSION,
            "git_version": git_version(),
            "created_unix": round(time.time(), 3),
            "wall_clock_secs": round(self.wall_clock_secs, 6),
            "metrics": dict(self.metrics),
            "results": dict(self.results),
        }
        if self.estimates is not None:
            record["estimates"] = {
                name: dict(entry) for name, entry in self.estimates.items()
            }
        return record


def write_manifest(
    manifest: RunManifest | Mapping[str, Any],
    path: str | Path | None = None,
) -> Path:
    """Append one record to the manifest log; returns the path written."""
    record = manifest.record() if isinstance(manifest, RunManifest) else dict(manifest)
    problems = validate_record(record)
    if problems:
        raise TelemetryError(
            f"refusing to write an invalid manifest record: {'; '.join(problems)}"
        )
    path = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    # crash-consistent append: a kill mid-write can never tear a record
    atomic_append_line(path, json.dumps(record, sort_keys=True))
    return path


def read_manifests(path: str | Path | None = None) -> list[dict[str, Any]]:
    """All records in the log, oldest first; torn lines are skipped."""
    path = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn write loses one record, not the log
        if isinstance(record, dict):
            records.append(record)
    return records


def validate_record(record: Mapping[str, Any]) -> list[str]:
    """Schema-check one record; returns a list of problems (empty = ok)."""
    problems = []
    for name, expected in _SCHEMA.items():
        if name not in record:
            problems.append(f"missing field {name!r}")
        elif isinstance(record[name], bool) or not isinstance(
            record[name], expected
        ):
            problems.append(
                f"field {name!r} should be {expected}, "
                f"got {type(record[name]).__name__}"
            )
    for name, expected in _OPTIONAL_SCHEMA.items():
        if name not in record:
            continue
        if isinstance(record[name], bool) or not isinstance(
            record[name], expected
        ):
            problems.append(
                f"field {name!r} should be {expected}, "
                f"got {type(record[name]).__name__}"
            )
    if isinstance(record.get("estimates"), dict):
        problems.extend(_validate_estimates(record["estimates"]))
    if not problems and record["schema"] > MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"schema {record['schema']} is newer than supported "
            f"{MANIFEST_SCHEMA_VERSION}"
        )
    return problems


def _validate_estimates(estimates: Mapping[str, Any]) -> list[str]:
    """Shape-check every ``estimates`` entry against the v2 contract."""
    problems = []
    for metric, entry in estimates.items():
        if not isinstance(entry, dict):
            problems.append(f"estimate {metric!r} should be a dict")
            continue
        for name, expected in _ESTIMATE_SCHEMA.items():
            if name not in entry:
                problems.append(f"estimate {metric!r} missing {name!r}")
            elif expected is not bool and (
                isinstance(entry[name], bool)
                or not isinstance(entry[name], expected)
            ):
                problems.append(
                    f"estimate {metric!r} field {name!r} should be "
                    f"{expected}, got {type(entry[name]).__name__}"
                )
            elif expected is bool and not isinstance(entry[name], bool):
                problems.append(
                    f"estimate {metric!r} field {name!r} should be bool, "
                    f"got {type(entry[name]).__name__}"
                )
    return problems
