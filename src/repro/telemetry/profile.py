"""Opt-in phase timers for the simulator's hot paths.

:func:`phase` wraps a named region — grouped-set replay, a dm pass, a
TLB chunk, a trap-rescan index build, a blob map, a snapshot fork, a
boundary warm — and, when profiling is enabled on the active telemetry
session, publishes the wall-clock duration into a ``profile.<name>``
histogram *and* records a span, so the same instant shows up in both
the metrics report and the merged Chrome trace.

Off is the default, and off means *off*: with no active session, or a
session whose ``profile`` flag is false, :func:`phase` returns a shared
null context manager — no timer read, no allocation beyond the dict
lookup for the flag.  Simulated state is never touched either way, so
reports are bit-identical with profiling on or off (pinned by
``tests/telemetry/test_profile.py``).

Phases sit at chunk/structure granularity, never per-reference: the
PR 3 kernels process thousands of references per ``simulate_chunk``
call, so the timer overhead amortizes to noise even when enabled.
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager
from typing import Any

#: histogram bounds for phase wall-clock seconds — finer than the
#: farm's job-latency buckets because phases run micro- to milliseconds
PROFILE_BUCKET_SECS = (
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005,
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

#: the canonical phase names wired through the codebase, for docs and
#: the CLI's ``telemetry top`` view
KNOWN_PHASES = (
    "kernels.grouped_set",
    "kernels.dm_pass",
    "kernels.tlb_chunk",
    "kernels.pipeline.compose",
    "machine.rescan_index",
    "streams.blob_map",
    "streams.snapshot_fork",
    "sampling.boundary_warm",
)


class _NullPhase(AbstractContextManager):
    """Shared do-nothing context for the profiling-off path."""

    __slots__ = ()

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _PhaseTimer(AbstractContextManager):
    """One live phase: times the region, publishes on exit."""

    __slots__ = ("_session", "_name", "_labels", "_span_cm", "_start")

    def __init__(self, session, name: str, labels: dict[str, str]) -> None:
        self._session = session
        self._name = name
        self._labels = labels
        self._span_cm = session.spans.span(f"profile.{name}", **labels)
        self._span_cm.__enter__()
        self._start = time.perf_counter()

    def __exit__(self, *exc: Any) -> None:
        elapsed = time.perf_counter() - self._start
        self._span_cm.__exit__(*exc)
        self._session.metrics.histogram(
            f"profile.{self._name}", bounds=PROFILE_BUCKET_SECS, **self._labels
        ).observe(elapsed)
        return None


def profiling_enabled() -> bool:
    """True when an active telemetry session has profiling switched on."""
    from repro.telemetry.session import active

    session = active()
    return session is not None and session.profile


def phase(name: str, **labels: str) -> AbstractContextManager:
    """Time a named region if profiling is on; otherwise do nothing.

    Usage on a hot path::

        with phase("kernels.tlb_chunk"):
            ...chunk work...

    The off path costs one session lookup and returns a shared null
    context — cheap enough to leave in chunk-granularity code
    unconditionally.
    """
    from repro.telemetry.session import active

    session = active()
    if session is None or not session.profile:
        return _NULL_PHASE
    return _PhaseTimer(session, name, dict(labels))


__all__ = [
    "KNOWN_PHASES",
    "PROFILE_BUCKET_SECS",
    "phase",
    "profiling_enabled",
]
