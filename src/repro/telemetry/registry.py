"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Every execution layer publishes into one :class:`MetricsRegistry` under
stable dotted names with optional labels, e.g.::

    machine.cpu.refs{component=user}
    machine.traps.dispatched{kind=ecc_error}
    tapeworm.misses{component=kernel}
    farm.jobs.latency

Publication is *pull-shaped*: layers keep their own plain-int counters
on the hot path (exactly as before this module existed) and copy the
totals into the registry once, at end of run, via their
``publish_metrics`` methods.  Nothing in the simulation ever reads a
metric, so instrumentation cannot perturb results — the Monster
property, "unobtrusive by construction".  The only inline metric is the
farm's latency histogram, which observes wall-clock (not simulated)
time.

:class:`Histogram` keeps fixed buckets plus exact count/sum/min/max, so
means and maxima are bit-exact while percentiles cost O(n_buckets)
memory no matter how many values are observed.
"""

from __future__ import annotations

import re
import time
from typing import Any, Iterator, Mapping

from repro.errors import TelemetryError

#: dotted, lowercase metric names: ``machine.cpu.refs``
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: default histogram bounds for wall-clock seconds (farm job latency)
TIME_BUCKET_SECS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)

#: default histogram bounds for simulated handler cycles
CYCLE_BUCKETS = (50, 100, 250, 500, 1_000, 5_000, 10_000, 100_000)


def metric_key(name: str, labels: Mapping[str, str]) -> str:
    """The registry key: ``name{label=value,...}`` with sorted labels."""
    if not _NAME_RE.match(name):
        raise TelemetryError(
            f"bad metric name {name!r}; use dotted lowercase like "
            "'machine.cpu.refs'"
        )
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise TelemetryError(f"counters only go up; cannot inc by {n}")
        self.value += n

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """A point-in-time value (last write wins).

    ``updated_unix`` stamps each write with wall-clock time, so when
    gauges from several processes are merged (see
    :mod:`repro.telemetry.aggregate`) "last write" is well defined
    across registries, not just within one.
    """

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0
        self.updated_unix: float = 0.0

    def set(self, value: int | float) -> None:
        self.value = value
        self.updated_unix = time.time()

    def snapshot(self) -> Any:
        return self.value


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max.

    ``bounds`` are ascending bucket upper edges; one overflow bucket
    catches everything above the last edge.  Memory is O(len(bounds))
    regardless of how many values are observed — this is what bounds
    the farm's per-job latency record.  ``percentile`` interpolates
    linearly inside the winning bucket and clamps to the exact observed
    minimum/maximum, so small samples still report sane numbers.
    """

    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = TIME_BUCKET_SECS) -> None:
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise TelemetryError(
                f"histogram bounds must be ascending and non-empty: {bounds!r}"
            )
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0

    def observe(self, value: int | float) -> None:
        value = float(value)
        if self.count == 0:
            self.minimum = self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100]) from the buckets."""
        if not 0 <= p <= 100:
            raise TelemetryError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self.maximum
                )
                fraction = (rank - cumulative) / bucket_count
                value = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self.minimum, min(self.maximum, value))
            cumulative += bucket_count
        return self.maximum

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise TelemetryError(
                "cannot merge histograms with different bucket bounds"
            )
        if other.count == 0:
            return
        if self.count == 0:
            self.minimum, self.maximum = other.minimum, other.maximum
        else:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        self.count += other.count
        self.total += other.total
        for i, n in enumerate(other.counts):
            self.counts[i] += n

    def snapshot(self) -> Any:
        buckets = {f"le_{bound:g}": n for bound, n in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Asking for an existing name with a different metric type (or
    different histogram bounds) is an error — names are a stable,
    machine-comparable contract, not a namespace free-for-all.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, key: str, factory, expected_kind: str):
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif metric.kind != expected_kind:
            raise TelemetryError(
                f"metric {key!r} is a {metric.kind}, not a {expected_kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(metric_key(name, labels), Counter, "counter")

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(metric_key(name, labels), Gauge, "gauge")

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = TIME_BUCKET_SECS,
        **labels: str,
    ) -> Histogram:
        histogram = self._get_or_create(
            metric_key(name, labels), lambda: Histogram(bounds), "histogram"
        )
        if histogram.bounds != tuple(float(b) for b in bounds):
            raise TelemetryError(
                f"metric {metric_key(name, labels)!r} already exists with "
                "different bucket bounds"
            )
        return histogram

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def items(self) -> Iterator[tuple[str, Counter | Gauge | Histogram]]:
        yield from sorted(self._metrics.items())

    def snapshot(self) -> dict[str, Any]:
        """JSON-encodable view: key -> number (counter/gauge) or dict
        (histogram), sorted by key for stable diffs."""
        return {key: metric.snapshot() for key, metric in self.items()}
