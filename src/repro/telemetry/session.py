"""The process-wide telemetry session — the zero-cost-when-disabled gate.

Instrumentation points throughout the machine, kernel, Tapeworm and
farm all read one module-level slot::

    session = active()
    if session is not None:
        session.trace.trap(frame, cycles)

With no session activated (the default, and the state every test and
benchmark runs in unless it opts in) that is a single global load and a
``None`` check — and crucially, *nothing* in the simulation ever reads
telemetry state, so results are bit-identical with telemetry on or off.
``tests/telemetry/test_unobtrusive.py`` pins that property.

Sessions are per-process; farm worker processes run without one, and
the farm master records job lifecycle on their behalf.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.errors import TelemetryError
from repro.telemetry.events import DEFAULT_TRACE_CAPACITY, EventTracer
from repro.telemetry.registry import MetricsRegistry


class TelemetrySession:
    """One run's worth of observability state: metrics + event trace."""

    def __init__(self, trace_capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.metrics = MetricsRegistry()
        self.trace = EventTracer(trace_capacity)


_active: TelemetrySession | None = None


def active() -> TelemetrySession | None:
    """The currently activated session, or None (telemetry disabled)."""
    return _active


def activate(session: TelemetrySession | None = None) -> TelemetrySession:
    """Install ``session`` (or a fresh one) as the process-wide session."""
    global _active
    if _active is not None:
        raise TelemetryError("a telemetry session is already active")
    _active = session or TelemetrySession()
    return _active


def deactivate() -> TelemetrySession:
    """Remove and return the active session."""
    global _active
    if _active is None:
        raise TelemetryError("no telemetry session is active")
    session, _active = _active, None
    return session


@contextmanager
def enabled(
    trace_capacity: int = DEFAULT_TRACE_CAPACITY,
) -> Iterator[TelemetrySession]:
    """Scope a telemetry session over a block of simulation work."""
    session = activate(TelemetrySession(trace_capacity))
    try:
        yield session
    finally:
        deactivate()
