"""The process-wide telemetry session — the zero-cost-when-disabled gate.

Instrumentation points throughout the machine, kernel, Tapeworm and
farm all read one module-level slot::

    session = active()
    if session is not None:
        session.trace.trap(frame, cycles)

With no session activated (the default, and the state every test and
benchmark runs in unless it opts in) that is a single global load and a
``None`` check — and crucially, *nothing* in the simulation ever reads
telemetry state, so results are bit-identical with telemetry on or off.
``tests/telemetry/test_unobtrusive.py`` pins that property.

Sessions are per-process.  Farm *workers* now get a short-lived private
session per job (see :func:`repro.farm.registry.instrumented_execute`)
whose spans and metrics travel home in the job-result envelope; the
master absorbs them via :meth:`TelemetrySession.absorb_worker_envelope`
so one session ends a batch holding the whole distributed run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.errors import TelemetryError
from repro.telemetry.events import DEFAULT_TRACE_CAPACITY, EventTracer
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import (
    DEFAULT_SPAN_CAPACITY,
    Span,
    SpanRecorder,
    new_run_id,
    spans_from_dicts,
)


class TelemetrySession:
    """One run's worth of observability state: metrics + events + spans.

    ``profile`` switches the opt-in phase timers on
    (:mod:`repro.telemetry.profile`); it defaults to off so enabling
    telemetry alone never adds timers to kernel hot paths.
    ``worker_spans`` maps worker pid → list of ``(shift_us, spans)``
    lanes absorbed from job-result envelopes.
    """

    def __init__(
        self,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        profile: bool = False,
        run_id: str | None = None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.trace = EventTracer(trace_capacity)
        self.spans = SpanRecorder(span_capacity)
        self.profile = profile
        self.run_id = run_id or new_run_id()
        self.worker_spans: dict[int, list[tuple[float, list[Span]]]] = {}
        self._finalized = False

    def absorb_worker_envelope(
        self, envelope: Mapping[str, Any], shift_us: float = 0.0
    ) -> None:
        """Fold one worker's job-result telemetry into this session.

        Metrics land under ``farm.worker.*`` (cardinality-capped, drops
        counted); spans are filed as a lane for the worker's pid,
        shifted by ``shift_us`` onto this session's timeline.  Raises
        :class:`~repro.errors.TelemetryError` on envelopes this code
        cannot merge — the farm decides how loudly to fail.
        """
        from repro.telemetry.aggregate import fold_into

        if not isinstance(envelope, Mapping) or envelope.get("v") != 1:
            raise TelemetryError(
                f"unrecognized worker telemetry envelope: {envelope!r}"
            )
        started = time.perf_counter()
        worker = int(envelope.get("worker_pid", 0))
        merged, overflow = fold_into(self.metrics, envelope["metrics"])
        if overflow:
            self.metrics.counter("farm.telemetry.series_dropped").inc(overflow)
        spans = spans_from_dicts(envelope.get("spans", ()))
        if spans:
            self.worker_spans.setdefault(worker, []).append((shift_us, spans))
        dropped_spans = int(envelope.get("spans_dropped", 0))
        if dropped_spans:
            self.metrics.counter("farm.telemetry.spans_dropped").inc(
                dropped_spans
            )
        # the aggregation layer observes itself: how many envelopes,
        # how much wall-clock the folding cost the master
        self.metrics.counter("farm.telemetry.envelopes").inc()
        self.metrics.counter("farm.telemetry.series_merged").inc(merged)
        self.metrics.counter("farm.telemetry.aggregation_secs").inc(
            time.perf_counter() - started
        )

    def finalize(self) -> None:
        """Stamp self-describing loss counters before export (idempotent).

        A truncated trace or span set should say so in the report, not
        just in the export metadata.
        """
        if self._finalized:
            return
        self._finalized = True
        if self.trace.dropped:
            self.metrics.counter("telemetry.trace.dropped").inc(
                self.trace.dropped
            )
        if self.spans.dropped:
            self.metrics.counter("telemetry.spans.dropped").inc(
                self.spans.dropped
            )


_active: TelemetrySession | None = None


def active() -> TelemetrySession | None:
    """The currently activated session, or None (telemetry disabled)."""
    return _active


def activate(session: TelemetrySession | None = None) -> TelemetrySession:
    """Install ``session`` (or a fresh one) as the process-wide session."""
    global _active
    if _active is not None:
        raise TelemetryError("a telemetry session is already active")
    _active = session or TelemetrySession()
    return _active


def deactivate() -> TelemetrySession:
    """Remove and return the active session."""
    global _active
    if _active is None:
        raise TelemetryError("no telemetry session is active")
    session, _active = _active, None
    return session


def drop_inherited() -> None:
    """Forget a session inherited across ``fork`` without touching it.

    A forked farm worker starts with a copy of the master's active
    session; recording into it would be silently lost (the copy never
    travels home) and deactivating it would be a lie (the master owns
    the original).  Workers call this before activating their own
    per-job session.
    """
    global _active
    _active = None


@contextmanager
def enabled(
    trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    profile: bool = False,
) -> Iterator[TelemetrySession]:
    """Scope a telemetry session over a block of simulation work."""
    session = activate(TelemetrySession(trace_capacity, profile=profile))
    try:
        yield session
    finally:
        deactivate()
