"""Span tracing: causally linked timed regions, across process lines.

The event tracer (:mod:`repro.telemetry.events`) answers "what happened
when"; spans answer "what contained what, and where did the time go" —
the scheduler→submit→worker→measure→result→cache-write chain of one
farmed run becomes a tree of :class:`Span` records, each carrying a
monotonic-clock start/duration, a parent id, and the run-id/job-key
correlation args that let the master's lanes line up with each worker's.

Workers serialize their spans (:meth:`SpanRecorder.to_dicts`) into the
job-result envelope; the master re-hydrates them
(:func:`spans_from_dicts`), shifts them onto its own batch timeline and
files them per worker pid, so :func:`merged_chrome_trace` renders one
Chrome ``trace_event`` file in which every worker appears as its own
lane (tid) under a "farm workers" process — a whole distributed run in
one Perfetto view.

Like every telemetry layer here, spans are observational: the recorder
is bounded (opening a span past capacity records nothing and counts the
drop), and nothing in the simulation ever reads a span.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import TelemetryError
from repro.telemetry.events import FARM_PID, MACHINE_PID

#: Chrome-trace process id for the merged per-worker lanes
WORKER_PID = 3

#: default recorder capacity; spans are per-region (chunks, jobs,
#: phases), not per-reference, so this covers very large batches
DEFAULT_SPAN_CAPACITY = 8_192

#: tid of the master's own span lane under the farm process
_MASTER_SPAN_TID = 1_000


def new_run_id() -> str:
    """A fresh correlation id for one run (master + all its workers)."""
    return uuid.uuid4().hex[:12]


@dataclass
class Span:
    """One timed region.  ``dur_us`` is filled when the region closes."""

    name: str
    span_id: int
    parent_id: int | None
    start_us: float
    dur_us: float = 0.0
    args: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_us": round(self.start_us, 3),
            "dur_us": round(self.dur_us, 3),
        }
        if self.args:
            record["args"] = dict(self.args)
        return record


def span_from_dict(record: Mapping[str, Any]) -> Span:
    """Re-hydrate one serialized span; raises on malformed records."""
    try:
        return Span(
            name=str(record["name"]),
            span_id=int(record["id"]),
            parent_id=None if record["parent"] is None else int(record["parent"]),
            start_us=float(record["start_us"]),
            dur_us=float(record["dur_us"]),
            args=dict(record["args"]) if record.get("args") else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TelemetryError(f"malformed span record {record!r}: {exc}") from exc


def spans_from_dicts(records: Sequence[Mapping[str, Any]]) -> list[Span]:
    return [span_from_dict(record) for record in records]


class SpanRecorder:
    """Bounded in-order store of spans with an implicit parent stack.

    Spans nest lexically: :meth:`span` pushes itself as the parent of
    anything opened inside it.  Slots are claimed on *entry*, so when
    the bound is hit it is the latest, deepest spans that drop — the
    roots of the tree (batch, job) always survive.
    """

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        if capacity <= 0:
            raise TelemetryError(
                f"span capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[int] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    def __len__(self) -> int:
        return len(self.spans)

    def now_us(self) -> float:
        """Microseconds since this recorder was created (monotonic)."""
        return (time.perf_counter() - self._epoch) * 1e6

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Span | None]:
        """Open a timed region; yields the span (None past capacity)."""
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            yield None
            return
        record = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            start_us=self.now_us(),
            args=dict(args) if args else None,
        )
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record.span_id)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.dur_us = (time.perf_counter() - start) * 1e6
            self._stack.pop()

    def to_dicts(self) -> list[dict[str, Any]]:
        """Serialized spans, ready for the worker result envelope."""
        return [record.to_dict() for record in self.spans]


@contextmanager
def span(name: str, **args: Any) -> Iterator[Span | None]:
    """Record a span on the active telemetry session (no-op without one)."""
    from repro.telemetry.session import active

    session = active()
    if session is None:
        yield None
        return
    with session.spans.span(name, **args) as record:
        yield record


# ---------------------------------------------------------------------------
# Chrome trace_event rendering and merging
# ---------------------------------------------------------------------------


def chrome_span_events(
    spans: Sequence[Span],
    pid: int,
    tid: int,
    shift_us: float = 0.0,
    **extra_args: Any,
) -> list[dict[str, Any]]:
    """Spans as complete ("X") Chrome events on one pid/tid lane."""
    events = []
    for record in spans:
        args: dict[str, Any] = {
            "span_id": record.span_id,
            "parent_id": record.parent_id,
        }
        if extra_args:
            args.update(extra_args)
        if record.args:
            args.update(record.args)
        events.append(
            {
                "name": record.name,
                "cat": "span",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": record.start_us + shift_us,
                "dur": max(record.dur_us, 0.001),
                "args": args,
            }
        )
    return events


def merged_chrome_trace(session) -> dict[str, Any]:
    """One Chrome trace for a whole distributed run.

    Starts from the event tracer's export (machine + farm lanes), then
    appends the master's own span lane and one lane (tid) per worker
    that shipped spans back — so ``reproduce --jobs N --trace-out``
    shows scheduler, workers and simulated machine side by side.
    """
    trace = session.trace.chrome_trace()
    events: list[dict[str, Any]] = trace["traceEvents"]

    if session.spans.spans:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": FARM_PID,
                "tid": _MASTER_SPAN_TID,
                "args": {"name": "master spans"},
            }
        )
        events.extend(
            chrome_span_events(
                session.spans.spans,
                pid=FARM_PID,
                tid=_MASTER_SPAN_TID,
                run_id=session.run_id,
            )
        )

    if session.worker_spans:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": WORKER_PID,
                "tid": 0,
                "args": {"name": "farm workers"},
            }
        )
        for tid, (worker, lanes) in enumerate(
            sorted(session.worker_spans.items()), start=1
        ):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": WORKER_PID,
                    "tid": tid,
                    "args": {"name": f"worker {worker}"},
                }
            )
            for shift_us, spans_ in lanes:
                events.extend(
                    chrome_span_events(
                        spans_,
                        pid=WORKER_PID,
                        tid=tid,
                        shift_us=shift_us,
                        run_id=session.run_id,
                        worker=worker,
                    )
                )

    other = trace["otherData"]
    other["run_id"] = session.run_id
    other["spans"] = len(session.spans)
    other["spans_dropped"] = session.spans.dropped
    other["worker_lanes"] = len(session.worker_spans)
    return trace


def merge_chrome_traces(
    payloads: Sequence[Mapping[str, Any]],
) -> dict[str, Any]:
    """Merge several Chrome trace files into one, lanes kept apart.

    Every input's pids are remapped into a disjoint block (input ``i``
    gets ``i * 100 + original_pid``), so two runs' "simulated machine"
    processes appear side by side instead of interleaved.  ``otherData``
    keeps each input's metadata under ``merged[i]``.
    """
    merged_events: list[dict[str, Any]] = []
    merged_other: list[Any] = []
    for i, payload in enumerate(payloads):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise TelemetryError(
                f"input {i} is not a Chrome trace (no traceEvents array)"
            )
        for event in events:
            if not isinstance(event, Mapping) or "pid" not in event:
                raise TelemetryError(
                    f"input {i} has a malformed trace event: {event!r}"
                )
            shifted = dict(event)
            shifted["pid"] = i * 100 + int(event["pid"])
            merged_events.append(shifted)
        merged_other.append(payload.get("otherData", {}))
    return {
        "traceEvents": merged_events,
        "displayTimeUnit": "ms",
        "otherData": {"merged": merged_other, "inputs": len(payloads)},
    }


__all__ = [
    "DEFAULT_SPAN_CAPACITY",
    "MACHINE_PID",
    "WORKER_PID",
    "Span",
    "SpanRecorder",
    "chrome_span_events",
    "merge_chrome_traces",
    "merged_chrome_trace",
    "new_run_id",
    "span",
    "span_from_dict",
    "spans_from_dicts",
]
