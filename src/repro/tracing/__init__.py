"""The trace-driven baseline: a Pixie + Cache2000 analogue.

The paper compares Tapeworm against "the Cache2000 memory simulator
[MIPS88] driven by Pixie-generated traces [Smith91]", noting that "Pixie
only generates user-level address traces for a single task" — the
completeness gap trap-driven simulation closes.  This package reproduces
that baseline: an annotator that turns a workload's primary user task
into an address trace (at a per-reference generation cost), and a
trace-driven simulator executing the classic search-then-replace loop of
Figure 1 (left).
"""

from repro.tracing.trace import TraceChunk, TraceBuffer
from repro.tracing.pixie import PixieTracer, PIXIE_GENERATION_CYCLES_PER_REF
from repro.tracing.cache2000 import (
    Cache2000,
    CACHE2000_CYCLES_PER_HIT,
    CACHE2000_MISS_PREMIUM_CYCLES,
)
from repro.tracing.sampling import TraceSetSampler
from repro.tracing.stackdriver import StackDriver
from repro.tracing.systrace import SystemTracer
from repro.tracing.multisize import MultiSizeDMSweep, run_multisize_sweep

__all__ = [
    "TraceChunk",
    "TraceBuffer",
    "PixieTracer",
    "PIXIE_GENERATION_CYCLES_PER_REF",
    "Cache2000",
    "CACHE2000_CYCLES_PER_HIT",
    "CACHE2000_MISS_PREMIUM_CYCLES",
    "TraceSetSampler",
    "StackDriver",
    "SystemTracer",
    "MultiSizeDMSweep",
    "run_multisize_sweep",
]
