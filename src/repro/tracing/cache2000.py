"""The Cache2000-style trace-driven simulator.

The trace-driven core loop (Figure 1, left)::

    while (address = next_address(trace)){
        if (search(address))
            hit++;
        else {
            miss++;
            replace(address);
        }
    }

Every address is searched, hit or miss — the cost structure that keeps
trace-driven slowdowns at ~20x even for caches that never miss (Figure
2).  Costs are calibrated so that hits cost ~53 cycles of processing
(Table 5's per-address average at mpeg_play's 4 KB miss ratio, net of
Pixie's generation share) and misses add a replacement premium; the
premium makes Cache2000's slowdown fall from ~30 at a 0.118 miss ratio
toward ~22 at zero, as in Figure 2's table.

Two execution paths produce identical miss counts:

* the vectorized :class:`~repro.caches.kernels.GroupedSetKernel` fast
  path — a stable sort-by-set grouped stack pass, exact for *any*
  associativity under LRU or FIFO replacement (direct-mapped chunks
  reduce to pure numpy);
* a general per-address path over the shared
  :class:`~repro.caches.cache.SetAssociativeCache` for everything else
  (seeded-random replacement consumes its RNG in global miss order,
  which grouping would permute).

Per-chunk dispatch counts are kept in ``fastpath_chunks`` /
``general_chunks`` and published as
``tracing.cache2000.fastpath{taken=...}`` by :meth:`publish_metrics`.
"""

from __future__ import annotations

import numpy as np

from repro._types import Component, Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.kernels import GroupedSetKernel, supports_policy
from repro.caches.replacement import LRUPolicy, ReplacementPolicy
from repro.caches.stats import CacheStats
from repro.errors import ConfigError

#: processing cycles per address when the reference hits (search only)
CACHE2000_CYCLES_PER_HIT = 53

#: extra cycles when it misses (replacement-policy work)
CACHE2000_MISS_PREMIUM_CYCLES = 280

#: space id used to mix tids into the fast path's key encoding
_MAX_SPACES = 4096


class Cache2000:
    """Trace-driven cache simulation with Table 5 cost accounting."""

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy | None = None,
        force_general_path: bool = False,
    ) -> None:
        self.config = config
        self.policy = policy or LRUPolicy()
        self.stats = CacheStats()
        self.processing_cycles = 0
        #: per-chunk dispatch counts (telemetry: tracing.cache2000.fastpath)
        self.fastpath_chunks = 0
        self.general_chunks = 0
        # The grouped kernel is exact for LRU/FIFO at any associativity.
        # Direct-mapped caches never consult the policy (the victim is
        # forced), so they always take the fast path.
        self._vectorized = not force_general_path and (
            config.associativity == 1 or supports_policy(self.policy)
        )
        if self._vectorized:
            policy_name = getattr(self.policy, "name", "lru")
            if config.associativity == 1:
                policy_name = "lru"  # irrelevant for DM; keep kernel happy
            self._kernel = GroupedSetKernel(config, policy_name)
            self._cache = None
        else:
            self._kernel = None
            self._cache = SetAssociativeCache(config, self.policy)

    # ------------------------------------------------------------------

    def _space_of(self, tid: int) -> int:
        if not 0 <= tid < _MAX_SPACES:
            raise ConfigError(f"tid {tid} outside the fast path's space range")
        return tid if self.config.indexing is Indexing.VIRTUAL else 0

    def simulate_chunk(
        self,
        addresses: np.ndarray,
        tid: int = 0,
        component: Component = Component.USER,
    ) -> int:
        """Simulate one chunk of addresses; returns its miss count."""
        n = len(addresses)
        if n == 0:
            return 0
        if self._vectorized:
            misses = self._kernel.simulate_chunk(
                addresses, space=self._space_of(tid)
            )
            self.fastpath_chunks += 1
        else:
            misses = self._simulate_general(addresses, tid)
            self.general_chunks += 1
        self.stats.count_refs(component, n)
        self.stats.count_miss(component, misses)
        self.processing_cycles += (
            n * CACHE2000_CYCLES_PER_HIT
            + misses * CACHE2000_MISS_PREMIUM_CYCLES
        )
        return misses

    def _simulate_general(self, addresses: np.ndarray, tid: int) -> int:
        cache = self._cache
        misses = 0
        for addr in np.asarray(addresses, dtype=np.int64).tolist():
            hit, _ = cache.access(tid, addr)
            if not hit:
                misses += 1
        return misses

    # ------------------------------------------------------------------

    def resident_lines(self) -> int:
        """Occupancy, for cross-path consistency checks."""
        if self._vectorized:
            return self._kernel.occupancy()
        return self._cache.occupancy()

    def resident_keys(self) -> set[tuple[int, int]]:
        """Every resident ``(space, line_addr)``, whichever path ran."""
        if self._vectorized:
            return self._kernel.resident_keys()
        return self._cache.resident_keys()

    def average_cycles_per_address(self) -> float:
        total = self.stats.total_refs
        if total == 0:
            return 0.0
        return self.processing_cycles / total

    def publish_metrics(self, metrics) -> None:
        """Copy the dispatch counts into a metrics registry
        (``tracing.cache2000.fastpath{taken=true|false}``)."""
        if self.fastpath_chunks:
            metrics.counter(
                "tracing.cache2000.fastpath", taken="true"
            ).inc(self.fastpath_chunks)
        if self.general_chunks:
            metrics.counter(
                "tracing.cache2000.fastpath", taken="false"
            ).inc(self.general_chunks)
