"""The Cache2000-style trace-driven simulator.

The trace-driven core loop (Figure 1, left)::

    while (address = next_address(trace)){
        if (search(address))
            hit++;
        else {
            miss++;
            replace(address);
        }
    }

Every address is searched, hit or miss — the cost structure that keeps
trace-driven slowdowns at ~20x even for caches that never miss (Figure
2).  Costs are calibrated so that hits cost ~53 cycles of processing
(Table 5's per-address average at mpeg_play's 4 KB miss ratio, net of
Pixie's generation share) and misses add a replacement premium; the
premium makes Cache2000's slowdown fall from ~30 at a 0.118 miss ratio
toward ~22 at zero, as in Figure 2's table.

Two execution paths produce identical miss counts:

* a vectorized exact path for direct-mapped caches (a stable
  sort-by-set scan — a direct-mapped set always holds the last tag that
  touched it, so a reference misses iff it differs from its set's
  previous tag);
* a general per-address path over the shared
  :class:`~repro.caches.cache.SetAssociativeCache` for any associativity
  and policy.
"""

from __future__ import annotations

import numpy as np

from repro._types import Component, Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.replacement import LRUPolicy, ReplacementPolicy
from repro.caches.stats import CacheStats
from repro.errors import ConfigError

#: processing cycles per address when the reference hits (search only)
CACHE2000_CYCLES_PER_HIT = 53

#: extra cycles when it misses (replacement-policy work)
CACHE2000_MISS_PREMIUM_CYCLES = 280

#: space id used to mix tids into the fast path's tag encoding
_MAX_SPACES = 4096


class Cache2000:
    """Trace-driven cache simulation with Table 5 cost accounting."""

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy | None = None,
        force_general_path: bool = False,
    ) -> None:
        self.config = config
        self.policy = policy or LRUPolicy()
        self.stats = CacheStats()
        self.processing_cycles = 0
        # the fast path is only valid for direct-mapped caches (where
        # replacement policy is irrelevant)
        self._vectorized = (
            config.associativity == 1 and not force_general_path
        )
        if self._vectorized:
            self._state = np.full(config.n_sets, -1, dtype=np.int64)
            self._cache = None
        else:
            self._cache = SetAssociativeCache(config, self.policy)

    # ------------------------------------------------------------------

    def _space_of(self, tid: int) -> int:
        if not 0 <= tid < _MAX_SPACES:
            raise ConfigError(f"tid {tid} outside the fast path's space range")
        return tid if self.config.indexing is Indexing.VIRTUAL else 0

    def simulate_chunk(
        self,
        addresses: np.ndarray,
        tid: int = 0,
        component: Component = Component.USER,
    ) -> int:
        """Simulate one chunk of addresses; returns its miss count."""
        n = len(addresses)
        if n == 0:
            return 0
        if self._vectorized:
            misses = self._simulate_vectorized(addresses, tid)
        else:
            misses = self._simulate_general(addresses, tid)
        self.stats.count_refs(component, n)
        self.stats.count_miss(component, misses)
        self.processing_cycles += (
            n * CACHE2000_CYCLES_PER_HIT
            + misses * CACHE2000_MISS_PREMIUM_CYCLES
        )
        return misses

    def _simulate_vectorized(self, addresses: np.ndarray, tid: int) -> int:
        config = self.config
        lines = np.asarray(addresses, dtype=np.int64) >> config.line_shift
        sets = lines % config.n_sets
        tags = (lines // config.n_sets) * _MAX_SPACES + self._space_of(tid)
        order = np.argsort(sets, kind="stable")
        sets_sorted = sets[order]
        tags_sorted = tags[order]
        first = np.empty(len(sets_sorted), dtype=bool)
        first[0] = True
        np.not_equal(sets_sorted[1:], sets_sorted[:-1], out=first[1:])
        previous = np.empty_like(tags_sorted)
        previous[1:] = tags_sorted[:-1]
        previous[first] = self._state[sets_sorted[first]]
        misses = int(np.count_nonzero(tags_sorted != previous))
        last = np.empty(len(sets_sorted), dtype=bool)
        last[-1] = True
        np.not_equal(sets_sorted[1:], sets_sorted[:-1], out=last[:-1])
        self._state[sets_sorted[last]] = tags_sorted[last]
        return misses

    def _simulate_general(self, addresses: np.ndarray, tid: int) -> int:
        cache = self._cache
        misses = 0
        for addr in np.asarray(addresses, dtype=np.int64).tolist():
            hit, _ = cache.access(tid, addr)
            if not hit:
                misses += 1
        return misses

    # ------------------------------------------------------------------

    def resident_lines(self) -> int:
        """Occupancy, for cross-path consistency checks."""
        if self._vectorized:
            return int(np.count_nonzero(self._state >= 0))
        return self._cache.occupancy()

    def average_cycles_per_address(self) -> float:
        total = self.stats.total_refs
        if total == 0:
            return 0.0
        return self.processing_cycles / total
