"""The Cache2000-style trace-driven simulator.

The trace-driven core loop (Figure 1, left)::

    while (address = next_address(trace)){
        if (search(address))
            hit++;
        else {
            miss++;
            replace(address);
        }
    }

Every address is searched, hit or miss — the cost structure that keeps
trace-driven slowdowns at ~20x even for caches that never miss (Figure
2).  Costs are calibrated so that hits cost ~53 cycles of processing
(Table 5's per-address average at mpeg_play's 4 KB miss ratio, net of
Pixie's generation share) and misses add a replacement premium; the
premium makes Cache2000's slowdown fall from ~30 at a 0.118 miss ratio
toward ~22 at zero, as in Figure 2's table.

Which execution path serves a configuration is decided *once*, by the
kernel pass pipeline (:mod:`repro.caches.pipeline`): direct-mapped and
LRU/FIFO configs get a vectorized grouped-set kernel, everything else
(seeded-random replacement consumes its RNG in global miss order, which
grouping would permute) gets the exact per-address path over the shared
:class:`~repro.caches.cache.SetAssociativeCache`.  The compiled program
is fetched from the keyed registry at construction and invoked with
zero per-chunk dispatch; ``capabilities`` reports the decision and its
reasons.  ``force_general_path=True`` pins the reference path for
differential testing — forwarded into the request, never branched on
here.

Per-chunk dispatch counts remain visible as ``fastpath_chunks`` /
``general_chunks`` and are published as
``tracing.cache2000.fastpath{taken=...}`` by :meth:`publish_metrics`.
"""

from __future__ import annotations

import numpy as np

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.caches.pipeline import cache_request, compile_kernel
from repro.caches.replacement import LRUPolicy, ReplacementPolicy
from repro.caches.stats import CacheStats

#: processing cycles per address when the reference hits (search only)
CACHE2000_CYCLES_PER_HIT = 53

#: extra cycles when it misses (replacement-policy work)
CACHE2000_MISS_PREMIUM_CYCLES = 280


class Cache2000:
    """Trace-driven cache simulation with Table 5 cost accounting."""

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy | None = None,
        force_general_path: bool = False,
    ) -> None:
        self.config = config
        self.policy = policy or LRUPolicy()
        self.stats = CacheStats()
        self.processing_cycles = 0
        program = compile_kernel(
            cache_request(
                config, self.policy, force_general=force_general_path
            )
        )
        self._program = program
        #: the pipeline's capability report: which path, and why
        self.capabilities = program.capabilities
        self._run = program.run
        self._state = program.make_state(self.policy)
        self._fastpath = program.is_fast
        self._chunks = 0

    # ------------------------------------------------------------------

    @property
    def fastpath_chunks(self) -> int:
        """Chunks served by the vectorized kernel (telemetry compat)."""
        return self._chunks if self._fastpath else 0

    @property
    def general_chunks(self) -> int:
        """Chunks served by the exact per-address path."""
        return 0 if self._fastpath else self._chunks

    def simulate_chunk(
        self,
        addresses: np.ndarray,
        tid: int = 0,
        component: Component = Component.USER,
    ) -> int:
        """Simulate one chunk of addresses; returns its miss count."""
        n = len(addresses)
        if n == 0:
            return 0
        misses = self._run(self._state, addresses, tid)
        self._chunks += 1
        self.stats.count_refs(component, n)
        self.stats.count_miss(component, misses)
        self.processing_cycles += (
            n * CACHE2000_CYCLES_PER_HIT
            + misses * CACHE2000_MISS_PREMIUM_CYCLES
        )
        return misses

    # ------------------------------------------------------------------

    def resident_lines(self) -> int:
        """Occupancy, for cross-path consistency checks."""
        return self._program.occupancy(self._state)

    def resident_keys(self) -> set[tuple[int, int]]:
        """Every resident ``(space, line_addr)``, whichever path ran."""
        return self._program.resident_keys(self._state)

    def average_cycles_per_address(self) -> float:
        total = self.stats.total_refs
        if total == 0:
            return 0.0
        return self.processing_cycles / total

    def publish_metrics(self, metrics) -> None:
        """Copy the dispatch counts into a metrics registry
        (``tracing.cache2000.fastpath{taken=true|false}``)."""
        if self.fastpath_chunks:
            metrics.counter(
                "tracing.cache2000.fastpath", taken="true"
            ).inc(self.fastpath_chunks)
        if self.general_chunks:
            metrics.counter(
                "tracing.cache2000.fastpath", taken="false"
            ).inc(self.general_chunks)
