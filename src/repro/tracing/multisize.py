"""Multi-configuration trace-driven simulation in one trace pass.

Figure 1's caption cites Sugumar's multi-configuration algorithms
[Sugumar93] alongside the stack approach.  For *direct-mapped* caches
the family of power-of-two sizes nests: a cache with 2^(k+1) sets
refines the set classes of one with 2^k sets, which gives the
monotonicity that makes a one-pass sweep exact —

    hit at 2^k sets  =>  hit at 2^(k+1) sets

(the most recent reference in the finer set class cannot be older than
the most recent in the coarser class, and when the coarser one is the
same line, that same-line reference also belongs to the finer class).

Economically this matters because trace *generation* dominates
trace-driven cost: one annotated execution feeds every size, where
plain Cache2000 re-runs the workload per configuration.  Per-address
processing still pays once per size, modeled accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caches.config import CacheConfig
from repro.caches.pipeline import compile_kernel, sweep_request
from repro.errors import ConfigError
from repro.tracing.cache2000 import CACHE2000_CYCLES_PER_HIT
from repro.tracing.pixie import PixieTracer
from repro.workloads.base import WorkloadSpec

#: per-size, per-address processing share of the sweep's inner loops
#: (cheaper than a full Cache2000 visit: one table probe, no replace
#: bookkeeping beyond the overwrite)
SWEEP_CYCLES_PER_ADDRESS_PER_SIZE = 14


class MultiSizeDMSweep:
    """Exact one-pass simulation of every power-of-two DM size.

    Since PR 10 this is the ``ways=(1,)`` column of the all-
    associativity grid engine: ``sweep_request`` adapts the size list
    into a :class:`~repro.caches.config.GridConfig` and the compiled
    grid kernel's direct-mapped specialization runs one pure-numpy
    :func:`~repro.caches.kernels.dm_grouped_pass` per set count — the
    same exact kernel Cache2000's DM fast path uses.
    """

    def __init__(
        self,
        sizes_bytes: tuple[int, ...],
        line_bytes: int = 16,
    ) -> None:
        self.configs = tuple(
            CacheConfig(size_bytes=size, line_bytes=line_bytes)
            for size in sorted(sizes_bytes)
        )
        if len({c.size_bytes for c in self.configs}) != len(self.configs):
            raise ConfigError("duplicate sizes in sweep")
        self.line_shift = self.configs[0].line_shift
        program = compile_kernel(sweep_request(self.configs))
        #: the pipeline's capability report (always the grid kernel)
        self.capabilities = program.capabilities
        self._run = program.run
        self._extract = program.extract
        self._state = program.make_state()
        self.refs = 0
        self.processing_cycles = 0
        self._cycles_per_ref = (
            SWEEP_CYCLES_PER_ADDRESS_PER_SIZE * len(self.configs)
        )

    def simulate_chunk(self, addresses: np.ndarray) -> None:
        """Fold one chunk into every size's miss count."""
        n = len(addresses)
        if n == 0:
            return
        self._run(self._state, addresses)
        self.refs += n
        self.processing_cycles += n * self._cycles_per_ref

    @property
    def misses(self) -> list[int]:
        """Per-size miss counts, in ascending-size config order."""
        counts = self._extract(self._state)["miss_counts"]
        return [counts[(config.n_sets, 1)] for config in self.configs]

    def miss_counts(self) -> dict[int, int]:
        return {
            config.size_bytes: misses
            for config, misses in zip(self.configs, self.misses)
        }

    def check_monotonicity(self) -> bool:
        """Larger DM caches never miss more (the nesting property)."""
        return all(a >= b for a, b in zip(self.misses, self.misses[1:]))


@dataclass(frozen=True)
class SweepReport:
    miss_counts: dict[int, int]
    refs: int
    generation_cycles: int
    processing_cycles: int

    @property
    def overhead_cycles(self) -> int:
        return self.generation_cycles + self.processing_cycles


def run_multisize_sweep(
    spec: WorkloadSpec,
    user_refs: int,
    sizes_bytes: tuple[int, ...],
    line_bytes: int = 16,
) -> SweepReport:
    """One annotated execution, every size's exact DM miss count."""
    tracer = PixieTracer(spec)
    sweep = MultiSizeDMSweep(sizes_bytes, line_bytes=line_bytes)
    for chunk in tracer.trace_chunks(user_refs):
        sweep.simulate_chunk(chunk.addresses)
    return SweepReport(
        miss_counts=sweep.miss_counts(),
        refs=user_refs,
        generation_cycles=tracer.generation_cycles,
        processing_cycles=sweep.processing_cycles,
    )
