"""The Pixie-style trace annotator.

Pixie rewrites a binary so that running it emits its own address trace
"on the fly".  Two properties of the real tool shape this model, both
from the paper:

* it traces **one user-level task only** — no servers, no kernel, no
  children — which is why Table 6's *From Traces* column is blank for
  the multi-task workloads;
* generating and processing a trace address costs roughly 40–60 cycles;
  the generation share modeled here, plus Cache2000's processing cost,
  reproduces the flat ~20–30x slowdowns of Figure 2.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro._types import Component
from repro.errors import TraceError
from repro.streams.session import active as _streams
from repro.tracing.trace import TraceChunk
from repro.workloads.base import WorkloadSpec

#: cycles the annotated workload spends producing each trace address
#: (the generation share of Table 5's per-address cost)
PIXIE_GENERATION_CYCLES_PER_REF = 36


class PixieTracer:
    """Generates the primary user task's instruction-address trace."""

    def __init__(self, spec: WorkloadSpec, chunk_refs: int = 65536) -> None:
        if chunk_refs <= 0:
            raise TraceError(f"chunk_refs must be positive, got {chunk_refs}")
        task_spec = spec.task(spec.primary_task)
        if task_spec.component is not Component.USER:
            raise TraceError(
                "Pixie only traces user-level tasks; "
                f"{spec.primary_task!r} is {task_spec.component.value}"
            )
        self.spec = spec
        self.task_spec = task_spec
        self.chunk_refs = chunk_refs
        self._stream = None
        self.generation_cycles = 0
        self.refs_traced = 0

    def _ensure_stream(self, total_refs: int):
        """Build the stream on first use: a compiled replay when a
        stream session is active (sized to this trace request), the
        plain generator otherwise — bit-identical either way."""
        if self._stream is None:
            session = _streams()
            if session is not None:
                self._stream = session.stream_for(
                    self.spec, self.spec.primary_task, total_refs, False
                )
            else:
                self._stream = self.task_spec.build_stream(self.spec.name)
        return self._stream

    def trace_chunks(self, total_refs: int) -> Iterator[TraceChunk]:
        """Yield the first ``total_refs`` references of the task.

        The stream is identical to what the same task executes under a
        trap-driven run (same seed, same generator) — the property behind
        the paper's validation that Tapeworm's user-component miss counts
        are "nearly identical" to Pixie+Cache2000's.
        """
        stream = self._ensure_stream(total_refs)
        remaining = total_refs
        while remaining > 0:
            n = min(self.chunk_refs, remaining)
            addresses = stream.next_chunk(n)
            self.generation_cycles += n * PIXIE_GENERATION_CYCLES_PER_REF
            self.refs_traced += n
            remaining -= n
            yield TraceChunk(
                addresses=addresses, tid=1, component=Component.USER
            )

    def full_trace(self, total_refs: int) -> np.ndarray:
        """Materialize a flat address array (for offline simulation)."""
        return np.concatenate(
            [c.addresses for c in self.trace_chunks(total_refs)]
        )
