"""Software set sampling for trace-driven simulation.

Trace-driven set sampling "uses a filtered trace containing exactly the
addresses that map to a certain subset of cache sets" [Kessler91,
Puzak85].  Unlike Tapeworm's free hardware filtering, the filter itself
is a software pass over *every* address — the pre-processing overhead the
paper contrasts against — and obtaining a different sample requires
re-processing the full trace.
"""

from __future__ import annotations

import numpy as np

from repro.caches.config import CacheConfig
from repro.core.sampling import SetSampler

#: cycles to classify one trace address during filtering
FILTER_CYCLES_PER_REF = 6


class TraceSetSampler:
    """Filters trace chunks down to a sampled subset of cache sets."""

    def __init__(
        self,
        config: CacheConfig,
        fraction_denominator: int,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.sampler = SetSampler(
            config.n_sets, fraction_denominator, seed=seed
        )
        self.preprocessing_cycles = 0
        self.refs_in = 0
        self.refs_out = 0

    @property
    def expansion_factor(self) -> int:
        return self.sampler.expansion_factor

    def filter_chunk(self, addresses: np.ndarray) -> np.ndarray:
        """Keep only the addresses mapping to sampled sets.

        Every input address pays the classification cost, whether or not
        it survives — that is the software-filtering overhead.
        """
        n = len(addresses)
        self.refs_in += n
        self.preprocessing_cycles += n * FILTER_CYCLES_PER_REF
        lines = np.asarray(addresses, dtype=np.int64) >> self.config.line_shift
        sets = lines % self.config.n_sets
        kept = addresses[self.sampler.mask_for_sets(sets)]
        self.refs_out += len(kept)
        return kept
